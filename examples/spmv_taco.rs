//! Taco integration (Sec. IV-D): a tensor-index expression goes through
//! taco-mini's sparse lowering, then through Phloem's static pipeline
//! compilation — reproducing the paper's "add Phloem as a pass to an
//! existing domain-specific compiler" flow.
//!
//! Run with: `cargo run --release --example spmv_taco`

use phloem_benchsuite::taco::{self, TacoApp};
use phloem_benchsuite::Variant;
use phloem_ir::pretty;
use phloem_workloads::matrix;
use pipette_sim::MachineConfig;
use taco_mini::{compile, Format};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Taco expression.
    let expr = "y(i) = A(i,j) * x(j)";
    println!("tensor expression: {expr}");
    let kernel = compile(
        expr,
        &[
            ("A", Format::Csr),
            ("x", Format::DenseVec),
            ("y", Format::DenseVec),
        ],
    )?;
    println!("\n=== taco-mini output (serial loop nest) ===");
    for ph in &kernel.phases {
        println!("{}", pretty::function_to_string(ph));
    }

    // 2. Phloem pipelines it.
    let cfg = MachineConfig::paper_1core();
    let pipes = taco::pipelines_for(TacoApp::Spmv, &Variant::phloem(), &cfg)?;
    println!("=== after Phloem (static flow) ===");
    for p in &pipes {
        println!("{}", pretty::pipeline_to_string(p));
    }

    // 3. Measure all Fig. 12 variants on one input.
    let a = matrix::random_square(1500, 6.0, 42);
    println!("input: {}x{} matrix, {} nnz", a.rows, a.cols, a.nnz());
    let serial = taco::run(TacoApp::Spmv, &Variant::Serial, &a, &cfg, "rnd")?;
    println!("{:<16} {:>10} cycles  1.00x", "serial", serial.cycles);
    for v in [Variant::DataParallel(4), Variant::phloem()] {
        let m = taco::run(TacoApp::Spmv, &v, &a, &cfg, "rnd")?;
        println!(
            "{:<16} {:>10} cycles  {:.2}x",
            m.variant,
            m.cycles,
            serial.cycles as f64 / m.cycles as f64
        );
    }
    Ok(())
}
