//! Pipeline replication (Sec. IV-C / Fig. 7 / Fig. 14): composing data
//! and pipeline parallelism across 4 cores.
//!
//! Shows both the generic `replicate()` transformation (on a small
//! producer/consumer pipeline, with a value-distributing boundary) and
//! the full replicated BFS of Fig. 14, compared against serial and
//! 16-thread data-parallel baselines.
//!
//! Run with: `cargo run --release --example replicated_bfs`

use phloem_benchsuite::fig14::{run_bfs_replicated, RepVariant};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::replicate::{replicate, ReplicateSpec};
use phloem_ir::{pretty, QueueId};
use phloem_workloads::graph;
use pipette_sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generic replication of an auto-compiled pipeline (no RAs so the
    // distribute boundary sits on a compute stage).
    let kernel = bfs::kernel();
    let loads = bfs::kernel_loads();
    let opts = phloem_compiler::CompileOptions {
        passes: phloem_compiler::PassConfig::with_handlers(), // no RA
        ..Default::default()
    };
    let single =
        phloem_compiler::decouple_with_cuts(&kernel, &[loads[2], loads[4], loads[5]], &opts)?;
    println!(
        "single pipeline: {} compute stages, {} queues",
        single.compute_stages(),
        single.num_queues
    );
    let spec = ReplicateSpec {
        replicas: 4,
        // Distribute the neighbor stream feeding the update stage.
        distribute: vec![QueueId(single.num_queues - 1)],
        partition_input: true,
    };
    let replicated = replicate(&single, &spec)?;
    println!(
        "replicated x4:   {} stages over {} cores, {} queues\n",
        replicated.total_stages(),
        replicated.cores_used(),
        replicated.num_queues
    );
    println!(
        "replica 0 fetch stage:\n{}",
        pretty::function_to_string(&replicated.stages[0].program.func)
    );

    // Fig. 14-style measurement.
    let g = graph::road_network(120, 3);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices,
        g.num_edges()
    );
    let cfg1 = MachineConfig::paper_1core();
    let cfg4 = MachineConfig::paper_multicore(4);
    let serial = bfs::run(&Variant::Serial, &g, 0, &cfg1, "road")?;
    let dp = bfs::run(&Variant::DataParallel(16), &g, 0, &cfg4, "road")?;
    let rep = run_bfs_replicated(RepVariant::Phloem, &g, 0, &cfg4, "road")?;
    println!(
        "serial (1 core, 1 thread): {:>10} cycles  1.00x",
        serial.cycles
    );
    println!(
        "data-parallel (16 threads): {:>9} cycles  {:.2}x",
        dp.cycles,
        serial.cycles as f64 / dp.cycles as f64
    );
    println!(
        "phloem replicated x4:       {:>9} cycles  {:.2}x",
        rep.cycles,
        serial.cycles as f64 / rep.cycles as f64
    );
    Ok(())
}
