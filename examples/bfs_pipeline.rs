//! The Fig. 5 walk-through: how each of Phloem's passes transforms BFS.
//!
//! Compiles the BFS kernel under each pass configuration of Fig. 6,
//! prints the resulting stage programs for the most interesting steps,
//! and measures each on the simulator.
//!
//! Run with: `cargo run --release --example bfs_pipeline`

use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::{decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::pretty;
use phloem_workloads::graph;
use pipette_sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = bfs::kernel();
    let loads = bfs::kernel_loads();
    let cuts = vec![loads[2], loads[4], loads[5]]; // nodes, edges, dist

    println!("=== serial kernel ===");
    println!("{}", pretty::function_to_string(&kernel));

    for (what, passes) in [
        ("pass 1 only: add queues", PassConfig::queues_only()),
        (
            "passes 1-2 + CV + DCE + handlers",
            PassConfig::with_handlers(),
        ),
        (
            "all passes (with reference accelerators)",
            PassConfig::all(),
        ),
    ] {
        let opts = CompileOptions {
            passes,
            ..Default::default()
        };
        let p = decouple_with_cuts(&kernel, &cuts, &opts)?;
        println!("=== {what} ===");
        println!("{}", pretty::pipeline_to_string(&p));
    }

    // Measure the ablation (mini Fig. 6).
    let g = graph::road_network(70, 11);
    let cfg = MachineConfig::paper_1core();
    let serial = bfs::run(&Variant::Serial, &g, 0, &cfg, "road")?;
    println!("=== cycles (road network, {} edges) ===", g.num_edges());
    println!("{:<24} {:>10}  1.00x", "serial", serial.cycles);
    for passes in [
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
    ] {
        let v = Variant::Phloem {
            passes,
            stages: 4,
            cuts: cuts.clone(),
        };
        let m = bfs::run(&v, &g, 0, &cfg, "road")?;
        println!(
            "{:<24} {:>10}  {:.2}x",
            passes.label(),
            m.cycles,
            serial.cycles as f64 / m.cycles as f64
        );
    }
    Ok(())
}
