//! Quickstart: serial C in, pipeline-parallel program out.
//!
//! Parses the paper's BFS kernel from PhloemC source, lets Phloem pick
//! decoupling points with its static cost model, prints the generated
//! pipeline (fetch -> chained reference accelerators -> update), and
//! runs both versions on the cycle-level Pipette simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use phloem_benchsuite::bfs;
use phloem_compiler::{compile_static, CompileOptions};
use phloem_frontend::compile_c;
use phloem_ir::{pretty, Value};
use phloem_workloads::graph;
use pipette_sim::{MachineConfig, Session};

const BFS_C: &str = r#"
    #pragma phloem
    void bfs_round(long cur_dist,
                   int* restrict fringe, int* restrict nodes,
                   int* restrict edges, int* restrict dist,
                   int* restrict next_fringe, int* restrict fringe_len,
                   int* restrict out_len) {
        long nl = fringe_len[0];
        long len = 0;
        for (long i = 0; i < nl; i++) {
            long v = fringe[i];
            long s = nodes[v];
            long e = nodes[v + 1];
            for (long j = s; j < e; j++) {
                long ngh = edges[j];
                long od = dist[ngh];
                if (od > cur_dist) {
                    dist[ngh] = cur_dist;
                    next_fringe[len] = ngh;
                    len++;
                }
            }
        }
        out_len[0] = len;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse serial C.
    let funcs = compile_c(BFS_C)?;
    let kernel = &funcs[0].func;
    println!(
        "parsed `{}` (#pragma phloem: {})\n",
        kernel.name, funcs[0].pragmas.phloem
    );

    // 2. Compile to a 4-stage pipeline with the static cost model.
    let pipeline = compile_static(kernel, 4, &CompileOptions::default())?;
    println!("{}", pretty::pipeline_to_string(&pipeline));

    // 3. Run serial vs. pipelined on the simulated Pipette machine.
    let g = graph::road_network(60, 7);
    let cfg = MachineConfig::paper_1core();
    let mut cycles = Vec::new();
    for (label, pipe) in [
        ("serial", {
            let mut p = phloem_ir::Pipeline::new("serial");
            p.add_stage(phloem_ir::StageProgram::plain(kernel.clone()), 0);
            p
        }),
        ("phloem", pipeline),
    ] {
        let (mem, arrays) = bfs::build_mem(&g, 0, 1);
        let mut session = Session::new(cfg.clone(), mem);
        let mut len = 1i64;
        let mut d = 1i64;
        while len > 0 {
            session
                .mem_mut()
                .store(arrays.fringe_len, 0, Value::I64(len))?;
            session.run(&pipe, &[("cur_dist", Value::I64(d))])?;
            len = session.mem().load(arrays.out_len, 0)?.as_i64()?;
            for k in 0..len {
                let v = session.mem().load(arrays.next_fringe, k)?;
                session.mem_mut().store(arrays.fringe, k, v)?;
            }
            d += 1;
        }
        let (mem, stats) = session.finish();
        assert_eq!(mem.i64_vec(arrays.dist), g.bfs_distances(0));
        println!("{label:>8}: {:>10} cycles", stats.cycles);
        cycles.push(stats.cycles);
    }
    println!(
        "\nspeedup: {:.2}x (paper reports 4.6-4.7x on a much larger, \
         DRAM-resident road network)",
        cycles[0] as f64 / cycles[1] as f64
    );
    Ok(())
}
