//! Robustness pins: the watchdog, fault injection, and PGO degradation
//! behave identically across the {event-driven, polling} × {tree, flat}
//! scheduler/engine grid, and never false-positive on healthy runs.

use phloem_benchsuite::fault_targets::targets;
use phloem_benchsuite::{bfs, spmm, Variant};
use phloem_compiler::search::{enumerate_pipelines, search, ProfileOutcome, SearchOptions};
use phloem_ir::{
    ArrayDecl, BinOp, Expr, FunctionBuilder, MemState, Pipeline, QueueId, StageProgram, Trap, Value,
};
use phloem_workloads::{graph, matrix};
use pipette_sim::{
    ExecEngine, Fault, FaultPlan, MachineConfig, SchedulerKind, Session, WatchdogConfig,
};

const GRID: [(SchedulerKind, ExecEngine); 4] = [
    (SchedulerKind::EventDriven, ExecEngine::Tree),
    (SchedulerKind::EventDriven, ExecEngine::Flat),
    (SchedulerKind::Polling, ExecEngine::Tree),
    (SchedulerKind::Polling, ExecEngine::Flat),
];

/// A two-stage pipeline whose producer spins on a memory flag that is
/// never set (the classic CV-polling livelock): it keeps executing —so
/// deadlock detection can never fire — but it stops touching queues.
fn livelock_pipeline() -> (Pipeline, MemState) {
    let q = QueueId(0);
    let spin = {
        let mut b = FunctionBuilder::new("spin");
        let flag = b.array_i64("flag");
        let _out = b.array_i64("out");
        let v = b.var_i64("v");
        let fl = b.load(flag, Expr::i64(0));
        b.while_loop(Expr::bin(BinOp::Eq, fl, Expr::i64(0)), |f| {
            f.assign(v, Expr::add(Expr::var(v), Expr::i64(1)));
        });
        b.enq(q, Expr::var(v));
        b.build()
    };
    let drain = {
        let mut b = FunctionBuilder::new("drain");
        let _flag = b.array_i64("flag");
        let out = b.array_i64("out");
        let v = b.var_i64("v");
        b.deq(v, q);
        b.store(out, Expr::i64(0), Expr::var(v));
        b.build()
    };
    let mut p = Pipeline::new("cv-livelock");
    p.add_stage(StageProgram::plain(spin), 0);
    p.add_stage(StageProgram::plain(drain), 0);
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("flag"), [0i64]);
    mem.alloc_i64(ArrayDecl::i64("out"), [0i64]);
    (p, mem)
}

#[test]
fn cv_polling_livelock_traps_identically_across_grid() {
    let (pipe, mem) = livelock_pipeline();
    let mut cfg = MachineConfig::paper_1core();
    cfg.watchdog = WatchdogConfig {
        cycle_cap: u64::MAX,
        livelock_window: 10_000,
    };
    let mut first: Option<String> = None;
    for (sched, engine) in GRID {
        let mut session = Session::new(cfg.clone(), mem.clone());
        let err = session
            .run_with_engine(&pipe, &[], sched, engine)
            .expect_err("a CV-polling spin loop must trap, not terminate");
        assert!(
            matches!(err, Trap::Livelock { .. }),
            "{sched:?}/{engine:?}: expected Livelock, got {err}"
        );
        let rendered = err.to_string();
        match &first {
            None => first = Some(rendered),
            Some(f) => assert_eq!(
                f, &rendered,
                "{sched:?}/{engine:?} livelock trap differs from the first grid point"
            ),
        }
    }
    let msg = first.unwrap();
    assert!(
        msg.contains("snapshot @cycle"),
        "livelock trap must carry the diagnostics snapshot: {msg}"
    );
}

#[test]
fn producer_kill_traps_identically_across_grid() {
    let cfg = MachineConfig::paper_1core();
    // bfs/manual: stage 0 is the fringe-fetch producer; killing it
    // starves the whole chain.
    let target = &targets(&cfg)[0];
    assert_eq!(target.name, "bfs/manual");
    let plan = FaultPlan::new(vec![Fault::ThreadKill {
        thread: 0,
        after_atoms: 40,
    }]);
    let mut first: Option<String> = None;
    for (sched, engine) in GRID {
        let mut session = Session::new(cfg.clone(), target.mem.clone());
        session.set_faults(plan.clone());
        let err = session
            .run_with_engine(&target.pipeline, &target.params, sched, engine)
            .expect_err("a fired producer kill must end in a structured trap");
        let rendered = err.to_string();
        assert!(
            rendered.contains("killed (fault)"),
            "{sched:?}/{engine:?}: trap must name the killed thread: {rendered}"
        );
        match &first {
            None => first = Some(rendered),
            Some(f) => assert_eq!(
                f, &rendered,
                "{sched:?}/{engine:?} kill trap differs from the first grid point"
            ),
        }
    }
}

/// The watchdog defaults must never fire on a healthy workload: the
/// slowest golden pipeline (spmm/manual/rnd_40) runs ~115 k cycles,
/// three orders of magnitude under the default livelock window.
#[test]
fn watchdog_defaults_pass_the_slowest_golden_pipeline() {
    let cfg = MachineConfig::paper_1core();
    assert_eq!(cfg.watchdog, WatchdogConfig::default());
    assert_ne!(cfg.watchdog.livelock_window, u64::MAX);
    let a = matrix::random_square(40, 3.0, 1);
    let bt = a.transpose();
    let m = spmm::run(&Variant::Manual, &a, &bt, &cfg, "rnd_40")
        .expect("healthy run must not trip the watchdog");
    assert_eq!(m.cycles, 114_958, "golden cycle count moved");
}

/// A PGO search where one candidate is forced into a budget-capped
/// livelock still returns `Ok`: the poisoned candidate is recorded as
/// `TimedOut` and a healthy candidate wins.
#[test]
fn forced_livelock_candidate_times_out_but_search_succeeds() {
    let g = graph::power_law(120, 3, 9);
    let kernel = bfs::kernel();
    let opts = SearchOptions {
        top_k: 3,
        workers: 2,
        ..SearchOptions::default()
    };
    let poisoned = enumerate_pipelines(&kernel, &opts)
        .first()
        .expect("BFS enumerates candidates")
        .0
        .clone();
    let base_cfg = MachineConfig::paper_1core();
    let report = search(&kernel, &opts, |cuts, pipe, budget| {
        let mut cfg = base_cfg.clone();
        // The poisoned candidate gets a cap it cannot possibly meet,
        // modelling a diverging pipeline; everyone else gets the
        // search-assigned budget.
        cfg.watchdog.cycle_cap = if cuts == poisoned {
            100
        } else {
            budget.cycle_cap
        };
        let (mem, _arrays) = bfs::build_mem(&g, 0, 1);
        let mut session = Session::new(cfg, mem);
        match session.run(pipe, &[("cur_dist", Value::I64(1))]) {
            Ok(_) => ProfileOutcome::Ok(session.elapsed() as f64),
            Err(Trap::CycleLimit { .. }) | Err(Trap::Livelock { .. }) => ProfileOutcome::TimedOut,
            Err(t) => ProfileOutcome::Trapped(t.to_string()),
        }
    })
    .expect("search must degrade gracefully, not fail");
    let poisoned_candidate = report
        .candidates
        .iter()
        .find(|c| c.cuts == poisoned)
        .expect("poisoned candidate is in the report");
    assert_eq!(poisoned_candidate.outcome, ProfileOutcome::TimedOut);
    let best = &report.candidates[report.best];
    assert_ne!(best.cuts, poisoned);
    assert!(matches!(best.outcome, ProfileOutcome::Ok(_)));
}
