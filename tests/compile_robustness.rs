//! Parser-level robustness: every PhloemC program the frontend accepts
//! must either compile or produce a `CompileError` — never panic — for
//! *every* cut subset and pass-ablation point. These shapes previously
//! drove `phloem::decouple` into `unwrap`/`expect`/map-indexing panics
//! (loop-tag and carrier-stream lookups in `plan_loop`/`finish_stage`).

use phloem_compiler::{decouple_with_cuts, CompileOptions, PassConfig};
use phloem_frontend::compile_c;
use phloem_ir::LoadId;

fn presets() -> Vec<PassConfig> {
    vec![
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
        PassConfig::all_streaming(),
    ]
}

/// Compiles `src` at every subset of its cut loads, across all pass
/// presets (with and without inter-pass validation). Returns how many
/// combinations compiled successfully.
fn sweep(src: &str) -> usize {
    let funcs = compile_c(src).expect("frontend accepts the program");
    let f = &funcs[0].func;
    let nloads = f.next_load_id().0 as usize;
    assert!(nloads <= 10, "sweep is exponential in load count");
    let mut ok = 0;
    for mask in 0u32..(1 << nloads) {
        let cuts: Vec<LoadId> = (0..nloads)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| LoadId(i as u32))
            .collect();
        for passes in presets() {
            for validate in [false, true] {
                let opts = CompileOptions {
                    passes: PassConfig {
                        validate_between_passes: validate,
                        ..passes
                    },
                    ..CompileOptions::default()
                };
                // Ok or Err are both acceptable; a panic is the bug.
                if decouple_with_cuts(f, &cuts, &opts).is_ok() {
                    ok += 1;
                }
            }
        }
    }
    ok
}

#[test]
fn filter_loop_with_break_never_panics_the_decoupler() {
    // while(1)+break with a filtered indirect load: the filter's `if`
    // can end up alone in a stage whose loop has no carrier stream.
    let ok = sweep(
        r#"
        void f(long n, int* restrict a, int* restrict b, int* restrict out) {
            long k = 0;
            long acc = 0;
            while (1) {
                long x = a[k];
                if (x > 0) {
                    long y = b[x];
                    acc += y;
                }
                k++;
                if (k >= n) {
                    break;
                }
            }
            out[0] = acc;
        }
    "#,
    );
    assert!(ok > 0, "at least the no-cut pipeline must compile");
}

#[test]
fn condition_only_communication_never_panics_the_decoupler() {
    // The only value crossing the cut is a branch condition; the
    // downstream stage's loop must fall back to communicated bounds
    // rather than assume a CV carrier exists.
    let ok = sweep(
        r#"
        void g(long n, int* restrict a, int* restrict flags,
               int* restrict out) {
            long hits = 0;
            for (long i = 0; i < n; i++) {
                long v = a[i];
                long fl = flags[v];
                if (fl > 0) {
                    hits++;
                }
            }
            out[0] = hits;
        }
    "#,
    );
    assert!(ok > 0);
}

#[test]
fn nested_loops_with_early_exit_never_panic_the_decoupler() {
    let ok = sweep(
        r#"
        void h(long n, long limit, int* restrict starts,
               int* restrict items, int* restrict out) {
            long total = 0;
            for (long i = 0; i < n; i++) {
                long s = starts[i];
                long e = starts[i + 1];
                for (long j = s; j < e; j++) {
                    long it = items[j];
                    total += it;
                }
                if (total > limit) {
                    break;
                }
            }
            out[0] = total;
        }
    "#,
    );
    assert!(ok > 0);
}
