//! Idle-cycle fast-forward is host-side only.
//!
//! `MachineConfig::fast_forward` selects the issue-calendar layout: a
//! bounded ring whose base skips reclaimed cycles (on, the default) or
//! the dense reference array (off). The pin: for random fault plans and
//! watchdog windows — including cycle caps tight enough to trap — the
//! two layouts produce identical outcomes (makespan or trap), identical
//! `RunStats` and final memory, and identical trace digests, on every
//! point of the scheduler × engine grid. In other words, fast-forward
//! never skips a cycle in which a thread, queue, RA, fault, or watchdog
//! action is schedulable.

use proptest::prelude::*;

use phloem_benchsuite::fault_targets::{targets, FaultTarget};
use pipette_sim::{
    DigestSink, ExecEngine, FaultPlan, MachineConfig, SchedulerKind, Session, WatchdogConfig,
};

const GRID: [(SchedulerKind, ExecEngine); 4] = [
    (SchedulerKind::EventDriven, ExecEngine::Flat),
    (SchedulerKind::EventDriven, ExecEngine::Tree),
    (SchedulerKind::Polling, ExecEngine::Flat),
    (SchedulerKind::Polling, ExecEngine::Tree),
];

/// Everything observable from one run: the outcome (makespan or the
/// trap, rendered), `RunStats` and final memory via `Debug`, and the
/// trace digest. Trapped runs still digest their partial trace.
struct Observed {
    outcome: String,
    stats: String,
    mem: String,
    digest: u64,
}

fn observe(target: &FaultTarget, cfg: &MachineConfig, plan: &FaultPlan) -> Observed {
    let mut session = Session::new(cfg.clone(), target.mem.clone());
    if !plan.is_empty() {
        session.set_faults(plan.clone());
    }
    session.set_trace(Box::new(DigestSink::new()));
    let outcome = match session.run(&target.pipeline, &target.params) {
        Ok(end) => format!("end={end}"),
        Err(e) => format!("trap={e}"),
    };
    let sink = session.take_trace().unwrap();
    let digest = sink.downcast_ref::<DigestSink>().unwrap().digest();
    let (mem, stats) = session.finish();
    Observed {
        outcome,
        stats: format!("{stats:?}"),
        mem: format!("{mem:?}"),
        digest,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast-forward on vs. off under random faults and watchdog limits:
    /// same outcome, same stats/memory, same trace digest.
    #[test]
    fn fast_forward_on_off_are_bit_identical(
        target_idx in 0usize..6,
        grid_idx in 0usize..4,
        fault_seed in any::<u64>(),
        watchdog_sel in 0usize..3,
    ) {
        let base = MachineConfig::paper_1core();
        let all = targets(&base);
        let target = &all[target_idx % all.len()];
        let (sched, engine) = GRID[grid_idx];
        // Random 1–3 fault plan (squeezes, latency spikes, dequeue
        // stalls, kills) with horizons sized to these single-invocation
        // targets, plus a watchdog that is always at least
        // livelock-armed and sometimes has a cycle cap tight enough to
        // fire mid-run — a trap must land on the same cycle either way.
        let plan = FaultPlan::random(
            fault_seed,
            target.pipeline.stages.len(),
            target.pipeline.num_queues as usize,
            50_000,
            5_000,
        );
        let watchdog = match watchdog_sel {
            0 => WatchdogConfig::default(),
            1 => WatchdogConfig::with_cycle_cap(30_000),
            _ => WatchdogConfig::with_cycle_cap(8_000),
        };
        let mut results = Vec::new();
        for fast_forward in [true, false] {
            let mut cfg = base.clone();
            cfg.scheduler = sched;
            cfg.engine = engine;
            cfg.watchdog = watchdog;
            cfg.fast_forward = fast_forward;
            results.push(observe(target, &cfg, &plan));
        }
        let (on, off) = (&results[0], &results[1]);
        prop_assert_eq!(&on.outcome, &off.outcome,
            "outcome diverged on {} ({sched:?}/{engine:?})", target.name);
        prop_assert_eq!(&on.stats, &off.stats,
            "RunStats diverged on {} ({sched:?}/{engine:?})", target.name);
        prop_assert_eq!(&on.mem, &off.mem,
            "final memory diverged on {} ({sched:?}/{engine:?})", target.name);
        prop_assert_eq!(on.digest, off.digest,
            "trace digest diverged on {} ({sched:?}/{engine:?})", target.name);
    }
}

/// The full {scheduler} × {engine} × {fast-forward} grid on one queue-
/// heavy target, unfaulted. Two layers of agreement: within each
/// scheduler × engine cell, the ff-on and ff-off runs must be
/// indistinguishable down to the full `RunStats` (host-model counters
/// like poll counts legitimately differ *across* schedulers, so the
/// whole-stats pin lives inside the cell); across all eight cells, the
/// makespan, final memory, and trace digest must agree.
#[test]
fn the_eight_point_grid_agrees_on_everything() {
    let base = MachineConfig::paper_1core();
    let all = targets(&base);
    let target = &all[0]; // bfs/manual: dense queue traffic
    let empty = FaultPlan::new(vec![]);
    let mut first: Option<Observed> = None;
    for (sched, engine) in GRID {
        let cell: Vec<Observed> = [true, false]
            .iter()
            .map(|&fast_forward| {
                let mut cfg = base.clone();
                cfg.scheduler = sched;
                cfg.engine = engine;
                cfg.fast_forward = fast_forward;
                observe(target, &cfg, &empty)
            })
            .collect();
        assert_eq!(
            cell[0].stats, cell[1].stats,
            "{sched:?}/{engine:?}: RunStats diverged between ff on and off"
        );
        for (got, ff) in cell.iter().zip([true, false]) {
            let label = format!("{sched:?}/{engine:?}/ff={ff}");
            match &first {
                None => {
                    first = Some(Observed {
                        outcome: got.outcome.clone(),
                        stats: String::new(),
                        mem: got.mem.clone(),
                        digest: got.digest,
                    })
                }
                Some(want) => {
                    assert_eq!(want.outcome, got.outcome, "{label}: makespan diverged");
                    assert_eq!(want.mem, got.mem, "{label}: final memory diverged");
                    assert_eq!(want.digest, got.digest, "{label}: trace digest diverged");
                }
            }
        }
    }
}
