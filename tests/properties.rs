//! Property-based tests: Phloem's decoupling must preserve serial
//! semantics for *randomized* irregular kernels and *arbitrary* legal
//! cut choices — not just the benchmark kernels.

use proptest::prelude::*;

use phloem_compiler::{decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::{interp, ArrayDecl, BinOp, Expr, Function, FunctionBuilder, MemState, Value};

/// Specification of a random irregular kernel:
///
/// ```c
/// for i in 0..n:
///   x = A[i]
///   y = B[x]
///   (optional filter) if (y % 2 == parity):
///       C[x] = y + i?            (write)
///       acc += y
///   (optional inner loop) for j in x..x+span:
///       z = B[j]; acc2 += z
/// out[0] = acc; out[1] = acc2
/// ```
#[derive(Clone, Debug)]
struct KernelSpec {
    n: usize,
    filter: bool,
    parity: i64,
    write_c: bool,
    inner: bool,
    span: i64,
    seed: u64,
}

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        4usize..40,
        any::<bool>(),
        0i64..2,
        any::<bool>(),
        any::<bool>(),
        1i64..4,
        any::<u64>(),
    )
        .prop_map(
            |(n, filter, parity, write_c, inner, span, seed)| KernelSpec {
                n,
                filter,
                parity,
                write_c,
                inner,
                span,
                seed,
            },
        )
}

fn build_kernel(spec: &KernelSpec) -> Function {
    let mut b = FunctionBuilder::new("randk");
    let n = b.param_i64("n");
    let a = b.array_i32("A");
    let bb = b.array_i32("B");
    let c = b.array_i32("C");
    let out = b.array_i64("out");
    let i = b.var_i64("i");
    let x = b.var_i64("x");
    let y = b.var_i64("y");
    let z = b.var_i64("z");
    let j = b.var_i64("j");
    let acc = b.var_i64("acc");
    let acc2 = b.var_i64("acc2");
    let spec = spec.clone();
    b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(a, Expr::var(i));
        f.assign(x, la);
        let lb = f.load(bb, Expr::var(x));
        f.assign(y, lb);
        let body = |f: &mut FunctionBuilder| {
            if spec.write_c {
                f.store(c, Expr::var(x), Expr::add(Expr::var(y), Expr::var(i)));
            }
            f.assign(acc, Expr::add(Expr::var(acc), Expr::var(y)));
        };
        if spec.filter {
            f.if_then(
                Expr::eq(
                    Expr::bin(BinOp::Rem, Expr::var(y), Expr::i64(2)),
                    Expr::i64(spec.parity),
                ),
                body,
            );
        } else {
            body(f);
        }
        if spec.inner {
            f.for_loop(
                j,
                Expr::var(x),
                Expr::add(Expr::var(x), Expr::i64(spec.span)),
                |f| {
                    let lz = f.load(bb, Expr::var(j));
                    f.assign(z, lz);
                    f.assign(acc2, Expr::add(Expr::var(acc2), Expr::var(z)));
                },
            );
        }
    });
    b.store(out, Expr::i64(0), Expr::var(acc));
    b.store(out, Expr::i64(1), Expr::var(acc2));
    b.build()
}

fn build_mem(spec: &KernelSpec) -> MemState {
    let m = 64usize;
    let mut mem = MemState::new();
    let mut s = spec.seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    mem.alloc_i64(
        ArrayDecl::i32("A"),
        (0..spec.n).map(|_| (next() % (m as u64 - 8)) as i64),
    );
    mem.alloc_i64(
        ArrayDecl::i32("B"),
        (0..m as i64).map(|_| (next() % 100) as i64),
    );
    mem.alloc(ArrayDecl::i32("C"), m);
    mem.alloc(ArrayDecl::i64("out"), 2);
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every cut subset the search would consider, under every pass
    /// configuration, computes exactly the serial result.
    #[test]
    fn decoupling_preserves_semantics(spec in spec_strategy(), mask in 0u32..16) {
        let kernel = build_kernel(&spec);
        let mem = build_mem(&spec);
        let want = interp::run_serial(&kernel, mem.clone(), &[("n", Value::I64(spec.n as i64))])
            .unwrap();
        let analysis = phloem_compiler::analyze(&kernel);
        let cands = analysis.candidates();
        let cuts: Vec<_> = cands
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, l)| *l)
            .take(3)
            .collect();
        for passes in [PassConfig::queues_only(), PassConfig::with_handlers(), PassConfig::all()] {
            let opts = CompileOptions { passes, ..Default::default() };
            let pipe = match decouple_with_cuts(&kernel, &cuts, &opts) {
                Ok(p) => p,
                // Some combinations are legitimately rejected (races,
                // queue budget); rejection is fine, miscompilation is not.
                Err(_) => continue,
            };
            let run = interp::run_pipeline(
                &pipe,
                mem.clone(),
                &[("n", Value::I64(spec.n as i64))],
                24,
            );
            let run = run.unwrap_or_else(|e| panic!("cuts {cuts:?} [{}]: {e}", passes.label()));
            prop_assert!(
                run.mem.same_contents(&want.mem),
                "divergence for cuts {:?} passes {}",
                cuts,
                passes.label()
            );
        }
    }

    /// Scheduler order must never change simulated time: the
    /// event-driven scheduler and the reference polling scheduler are
    /// required to produce bit-identical cycle counts, stall
    /// attributions, and queue occupancy traces on arbitrary kernels.
    /// Only the host-side work may differ — event-driven never blindly
    /// re-polls a parked thread (`stall_polls == 0`), while polling
    /// does whenever a thread ever blocked.
    #[test]
    fn scheduler_kind_does_not_change_cycles(spec in spec_strategy()) {
        use pipette_sim::{MachineConfig, SchedulerKind, Session};
        let kernel = build_kernel(&spec);
        let mem = build_mem(&spec);
        let opts = CompileOptions::default();
        let analysis = phloem_compiler::analyze(&kernel);
        let cuts: Vec<_> = analysis.candidates().into_iter().take(2).collect();
        let Ok(pipe) = decouple_with_cuts(&kernel, &cuts, &opts) else { return Ok(()); };
        let params = [("n", Value::I64(spec.n as i64))];
        let run = |kind: SchedulerKind| {
            let mut s = Session::new(MachineConfig::paper_1core(), mem.clone());
            s.run_with(&pipe, &params, kind).unwrap();
            let (m, stats) = s.finish();
            (m, stats)
        };
        let (em, ev) = run(SchedulerKind::EventDriven);
        let (pm, po) = run(SchedulerKind::Polling);
        prop_assert!(em.same_contents(&pm));
        prop_assert_eq!(ev.cycles, po.cycles);
        prop_assert_eq!(ev.threads.len(), po.threads.len());
        for (e, p) in ev.threads.iter().zip(&po.threads) {
            prop_assert_eq!(e.finish_time, p.finish_time);
            prop_assert_eq!(e.queue_stall_cycles, p.queue_stall_cycles);
            prop_assert_eq!(e.queue_full_stall_cycles, p.queue_full_stall_cycles);
            prop_assert_eq!(e.queue_empty_stall_cycles, p.queue_empty_stall_cycles);
            prop_assert_eq!(e.backend_stall_cycles, p.backend_stall_cycles);
            prop_assert_eq!(e.frontend_stall_cycles, p.frontend_stall_cycles);
            // The whole point of the event-driven core: no blind re-polls.
            prop_assert_eq!(e.stall_polls, 0);
        }
        prop_assert_eq!(ev.queues.len(), po.queues.len());
        for (e, p) in ev.queues.iter().zip(&po.queues) {
            prop_assert_eq!(e.enqs, p.enqs);
            prop_assert_eq!(e.deqs, p.deqs);
            prop_assert_eq!(&e.occupancy_hist, &p.occupancy_hist);
        }
        // Wakeup accounting is host-side but tracks the same simulated
        // queue events, so it must agree between the two schedulers.
        // (Polling may additionally report stall_polls > 0 — fruitless
        // re-polls of threads parked across a round boundary — which is
        // exactly the work the event-driven scheduler eliminates.)
        for (e, p) in ev.threads.iter().zip(&po.threads) {
            prop_assert_eq!(e.wakeups, p.wakeups);
            prop_assert_eq!(e.spurious_wakeups, p.spurious_wakeups);
        }
    }

    /// The execution engine is a host-side choice: the flat bytecode
    /// engine and the tree-walking oracle must produce bit-identical
    /// simulated cycles, statistics, and memory under *both*
    /// schedulers on arbitrary kernels. (The flat engine only changes
    /// how fast the host steps a stage, never what the stage does.)
    #[test]
    fn exec_engine_does_not_change_cycles(spec in spec_strategy()) {
        use pipette_sim::{ExecEngine, MachineConfig, SchedulerKind, Session};
        let kernel = build_kernel(&spec);
        let mem = build_mem(&spec);
        let opts = CompileOptions::default();
        let analysis = phloem_compiler::analyze(&kernel);
        let cuts: Vec<_> = analysis.candidates().into_iter().take(2).collect();
        let Ok(pipe) = decouple_with_cuts(&kernel, &cuts, &opts) else { return Ok(()); };
        let params = [("n", Value::I64(spec.n as i64))];
        let run = |kind: SchedulerKind, engine: ExecEngine| {
            let mut s = Session::new(MachineConfig::paper_1core(), mem.clone());
            s.run_with_engine(&pipe, &params, kind, engine).unwrap();
            s.finish()
        };
        for kind in [SchedulerKind::EventDriven, SchedulerKind::Polling] {
            let (fm, fs) = run(kind, ExecEngine::Flat);
            let (tm, ts) = run(kind, ExecEngine::Tree);
            prop_assert!(fm.same_contents(&tm), "memory diverged under {kind:?}");
            prop_assert_eq!(fs, ts, "stats diverged under {kind:?}");
        }
    }

    /// The timed machine computes the same memory as the functional
    /// interpreter (timing must never change semantics).
    #[test]
    fn timing_model_is_functionally_transparent(spec in spec_strategy()) {
        let kernel = build_kernel(&spec);
        let mem = build_mem(&spec);
        let opts = CompileOptions::default();
        let analysis = phloem_compiler::analyze(&kernel);
        let cuts: Vec<_> = analysis.candidates().into_iter().take(2).collect();
        let Ok(pipe) = decouple_with_cuts(&kernel, &cuts, &opts) else { return Ok(()); };
        let f = interp::run_pipeline(&pipe, mem.clone(), &[("n", Value::I64(spec.n as i64))], 24)
            .unwrap();
        let t = pipette_sim::Machine::run_once(
            &pipette_sim::MachineConfig::paper_1core(),
            &pipe,
            mem,
            &[("n", Value::I64(spec.n as i64))],
        )
        .unwrap();
        prop_assert!(t.mem.same_contents(&f.mem));
        prop_assert!(t.stats.cycles > 0);
    }
}
