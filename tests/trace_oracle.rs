//! Trace-oracle tests: the tracing layer observes the simulation, it
//! never participates in it.
//!
//! Three families of pins:
//!
//! 1. **Non-interference** — enabling tracing (even a sink subscribed
//!    to every event) must not change a single simulated cycle or any
//!    [`pipette_sim::RunStats`] counter, on every point of the
//!    {event-driven, polling} × {tree, flat} scheduler/engine grid.
//! 2. **Grid identity** — the semantic event stream itself is a
//!    property of the timing model, not of the host scheduler or
//!    execution engine: its order-sensitive digest is bit-identical
//!    across the grid.
//! 3. **Reconciliation** — the trace is *semantically consistent* with
//!    the run's own statistics: per-thread stall-span sums equal the
//!    `ThreadStats` stall counters exactly, event-derived queue
//!    occupancy histograms equal `QueueStats::occupancy_hist`, wakeup
//!    events count the scheduler's wakeups, and the streaming metrics
//!    aggregator reduces to the same totals. A trace that merely
//!    "looks right" cannot pass these; every span has to be emitted at
//!    exactly the site that increments the matching counter.
//!
//! Fault and watchdog events ride along: a fired `ThreadKill` emits
//! exactly one `FaultKill` event and exactly one terminal `Verdict`.

use phloem_benchsuite::fault_targets::targets;
use phloem_benchsuite::{bfs, taco, Measurement, Variant};
use phloem_ir::Trap;
use phloem_workloads::{graph, matrix};
use pipette_sim::{
    DigestSink, ExecEngine, Fault, FaultPlan, MachineConfig, MetricsSink, NoopSink, RingSink,
    SchedulerKind, Session, StallKind, TeeSink, TraceEvent, TraceSink, TraceVerdict,
};

const GRID: [(SchedulerKind, ExecEngine); 4] = [
    (SchedulerKind::EventDriven, ExecEngine::Flat),
    (SchedulerKind::EventDriven, ExecEngine::Tree),
    (SchedulerKind::Polling, ExecEngine::Flat),
    (SchedulerKind::Polling, ExecEngine::Tree),
];

type Runner =
    fn(&MachineConfig, Option<Box<dyn TraceSink>>) -> (Measurement, Option<Box<dyn TraceSink>>);

fn cfg_for(sched: SchedulerKind, engine: ExecEngine) -> MachineConfig {
    let mut cfg = MachineConfig::paper_1core();
    cfg.scheduler = sched;
    cfg.engine = engine;
    cfg
}

/// The two oracle workloads: a graph app with CV handlers and RA
/// stages, and a taco kernel with a different queue topology.
fn run_bfs(
    cfg: &MachineConfig,
    sink: Option<Box<dyn TraceSink>>,
) -> (Measurement, Option<Box<dyn TraceSink>>) {
    let g = graph::power_law(300, 3, 3);
    match sink {
        None => (
            bfs::run(&Variant::phloem(), &g, 0, cfg, "pl300").expect("bfs runs"),
            None,
        ),
        Some(s) => {
            let (m, s) = bfs::run_traced(&Variant::phloem(), &g, 0, cfg, "pl300", s);
            (m.expect("bfs runs"), Some(s))
        }
    }
}

fn run_spmv(
    cfg: &MachineConfig,
    sink: Option<Box<dyn TraceSink>>,
) -> (Measurement, Option<Box<dyn TraceSink>>) {
    let m = matrix::random_square(48, 4.0, 7);
    match sink {
        None => (
            taco::run(taco::TacoApp::Spmv, &Variant::phloem(), &m, cfg, "rnd48")
                .expect("spmv runs"),
            None,
        ),
        Some(s) => {
            let (r, s) =
                taco::run_traced(taco::TacoApp::Spmv, &Variant::phloem(), &m, cfg, "rnd48", s);
            (r.expect("spmv runs"), Some(s))
        }
    }
}

// ---------------------------------------------------------------------
// 1. Non-interference
// ---------------------------------------------------------------------

#[test]
fn tracing_never_changes_cycles_or_stats_anywhere_on_the_grid() {
    for run in [run_bfs as Runner, run_spmv as Runner] {
        for (sched, engine) in GRID {
            let cfg = cfg_for(sched, engine);
            let (plain, _) = run(&cfg, None);
            let (traced, sink) = run(&cfg, Some(Box::new(NoopSink::counting())));
            assert_eq!(
                plain.cycles, traced.cycles,
                "{sched:?}/{engine:?}: tracing changed the makespan"
            );
            assert_eq!(
                plain.stats, traced.stats,
                "{sched:?}/{engine:?}: tracing changed RunStats"
            );
            let sink = sink.unwrap();
            let noop = sink.downcast_ref::<NoopSink>().expect("noop sink");
            assert!(
                noop.events > 0,
                "{sched:?}/{engine:?}: the counting sink saw no events — emit points dead?"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Grid identity of the event stream
// ---------------------------------------------------------------------

#[test]
fn event_stream_digest_is_grid_identical() {
    for (name, run) in [
        ("bfs", run_bfs as Runner),
        ("taco-spmv", run_spmv as Runner),
    ] {
        let mut first: Option<u64> = None;
        for (sched, engine) in GRID {
            let cfg = cfg_for(sched, engine);
            let (_, sink) = run(&cfg, Some(Box::new(DigestSink::new())));
            let sink = sink.unwrap();
            let digest = sink
                .downcast_ref::<DigestSink>()
                .expect("digest sink")
                .digest();
            match first {
                None => first = Some(digest),
                Some(f) => assert_eq!(
                    f, digest,
                    "{name} @ {sched:?}/{engine:?}: event stream diverged from the first grid point"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Reconciliation with RunStats
// ---------------------------------------------------------------------

/// Sums the ring's events into per-thread and per-queue accumulators
/// and checks every one against the run's own counters.
fn reconcile(m: &Measurement, ring: &RingSink, metrics: &MetricsSink) {
    assert_eq!(ring.dropped, 0, "oracle needs the complete stream");
    let nthreads = m.stats.threads.len();
    let nqueues = m.stats.queues.len();
    let mut stalls = vec![[0u64; 4]; nthreads]; // [full, empty, backend, frontend]
    let mut enqs = vec![0u64; nthreads.max(nqueues)];
    let mut deqs = vec![0u64; nthreads.max(nqueues)];
    let mut q_enqs = vec![0u64; nqueues];
    let mut q_deqs = vec![0u64; nqueues];
    let mut wakes = vec![0u64; nthreads];
    let mut spurious = vec![0u64; nthreads];
    let mut hists: Vec<Vec<u64>> = m
        .stats
        .queues
        .iter()
        .map(|q| vec![0u64; q.occupancy_hist.len()])
        .collect();
    for ev in ring.events() {
        match *ev {
            TraceEvent::Enq {
                queue,
                thread,
                occupancy,
                ..
            } => {
                enqs[thread as usize] += 1;
                q_enqs[queue as usize] += 1;
                hists[queue as usize][occupancy as usize] += 1;
            }
            TraceEvent::Deq {
                queue,
                thread,
                occupancy,
                ..
            } => {
                deqs[thread as usize] += 1;
                q_deqs[queue as usize] += 1;
                hists[queue as usize][occupancy as usize] += 1;
            }
            TraceEvent::Stall {
                thread,
                kind,
                cycles,
                ..
            } => {
                let k = match kind {
                    StallKind::QueueFull => 0,
                    StallKind::QueueEmpty => 1,
                    StallKind::Backend => 2,
                    StallKind::Frontend => 3,
                };
                stalls[thread as usize][k] += cycles;
            }
            TraceEvent::Wake { thread, .. } => wakes[thread as usize] += 1,
            TraceEvent::SpuriousWake { thread, .. } => spurious[thread as usize] += 1,
            _ => {}
        }
    }
    for (i, t) in m.stats.threads.iter().enumerate() {
        let [full, empty, backend, frontend] = stalls[i];
        assert_eq!(
            full, t.queue_full_stall_cycles,
            "thread {i} ({}) queue-full",
            t.name
        );
        assert_eq!(
            empty, t.queue_empty_stall_cycles,
            "thread {i} ({}) queue-empty",
            t.name
        );
        assert_eq!(
            full + empty,
            t.queue_stall_cycles,
            "thread {i} ({}) queue total",
            t.name
        );
        assert_eq!(
            backend, t.backend_stall_cycles,
            "thread {i} ({}) backend",
            t.name
        );
        assert_eq!(
            frontend, t.frontend_stall_cycles,
            "thread {i} ({}) frontend",
            t.name
        );
        assert_eq!(enqs[i], t.enqs, "thread {i} ({}) enqs", t.name);
        assert_eq!(deqs[i], t.deqs, "thread {i} ({}) deqs", t.name);
        assert_eq!(wakes[i], t.wakeups, "thread {i} ({}) wakeups", t.name);
        assert_eq!(
            spurious[i], t.spurious_wakeups,
            "thread {i} ({}) spurious",
            t.name
        );
    }
    for (q, stats) in m.stats.queues.iter().enumerate() {
        assert_eq!(q_enqs[q], stats.enqs, "queue {q} enqs");
        assert_eq!(q_deqs[q], stats.deqs, "queue {q} deqs");
        assert_eq!(
            hists[q], stats.occupancy_hist,
            "queue {q} occupancy histogram"
        );
    }
    // The streaming aggregator reduces the same stream to the same
    // totals (stage-indexed; sessions accumulate across invocations
    // exactly like RunStats does).
    for (i, t) in m.stats.threads.iter().enumerate() {
        let s = &metrics.stages[i];
        assert_eq!(
            s.queue_full_stall_cycles, t.queue_full_stall_cycles,
            "metrics stage {i} qfull"
        );
        assert_eq!(
            s.queue_empty_stall_cycles, t.queue_empty_stall_cycles,
            "metrics stage {i} qempty"
        );
        assert_eq!(
            s.backend_stall_cycles, t.backend_stall_cycles,
            "metrics stage {i} backend"
        );
        assert_eq!(
            s.frontend_stall_cycles, t.frontend_stall_cycles,
            "metrics stage {i} frontend"
        );
        assert_eq!(s.enqs, t.enqs, "metrics stage {i} enqs");
        assert_eq!(s.deqs, t.deqs, "metrics stage {i} deqs");
        assert_eq!(s.wakeups, t.wakeups, "metrics stage {i} wakeups");
        assert_eq!(
            s.spurious_wakeups, t.spurious_wakeups,
            "metrics stage {i} spurious"
        );
        assert_eq!(s.is_ra, t.is_ra, "metrics stage {i} kind");
    }
    for (q, stats) in m.stats.queues.iter().enumerate() {
        let qm = &metrics.queues[q];
        assert_eq!(qm.enqs, stats.enqs, "metrics queue {q} enqs");
        assert_eq!(qm.deqs, stats.deqs, "metrics queue {q} deqs");
        assert_eq!(
            qm.max_occupancy, stats.max_occupancy,
            "metrics queue {q} max"
        );
        let mut hist = qm.occupancy_hist.clone();
        hist.resize(stats.occupancy_hist.len().max(hist.len()), 0);
        let mut shist = stats.occupancy_hist.clone();
        shist.resize(hist.len(), 0);
        assert_eq!(hist, shist, "metrics queue {q} occupancy histogram");
    }
}

#[test]
fn traces_reconcile_exactly_with_run_stats() {
    for run in [run_bfs as Runner, run_spmv as Runner] {
        for (sched, engine) in GRID {
            let cfg = cfg_for(sched, engine);
            let tee = TeeSink::new(vec![
                Box::new(RingSink::unbounded()),
                Box::new(MetricsSink::new()),
            ]);
            let (m, sink) = run(&cfg, Some(Box::new(tee)));
            let sink = sink.unwrap();
            let tee = sink.downcast_ref::<TeeSink>().expect("tee");
            let ring = tee.sinks()[0].downcast_ref::<RingSink>().expect("ring");
            let metrics = tee.sinks()[1]
                .downcast_ref::<MetricsSink>()
                .expect("metrics");
            reconcile(&m, ring, metrics);
        }
    }
}

// ---------------------------------------------------------------------
// Fault + watchdog events
// ---------------------------------------------------------------------

#[test]
fn a_fired_thread_kill_traces_one_fault_kill_and_one_verdict() {
    for (sched, engine) in GRID {
        let cfg = cfg_for(sched, engine);
        let target = &targets(&cfg)[0];
        let mut session = Session::new(cfg.clone(), target.mem.clone());
        session.set_faults(FaultPlan::new(vec![Fault::ThreadKill {
            thread: 0,
            after_atoms: 40,
        }]));
        session.set_trace(Box::new(RingSink::unbounded()));
        let err = session
            .run_with_engine(&target.pipeline, &target.params, sched, engine)
            .expect_err("a fired producer kill must trap");
        assert!(matches!(
            err,
            Trap::ThreadKilled { .. } | Trap::Deadlock { .. }
        ));
        let sink = session.take_trace().expect("sink still installed");
        let ring = sink.downcast_ref::<RingSink>().expect("ring");
        let kills: Vec<_> = ring
            .events()
            .filter(|e| matches!(e, TraceEvent::FaultKill { .. }))
            .collect();
        assert_eq!(
            kills.len(),
            1,
            "{sched:?}/{engine:?}: ThreadKill must trace exactly one FaultKill"
        );
        assert!(
            matches!(kills[0], TraceEvent::FaultKill { thread: 0, .. }),
            "{sched:?}/{engine:?}: FaultKill names the wrong thread"
        );
        let verdicts: Vec<_> = ring
            .events()
            .filter_map(|e| match e {
                TraceEvent::Verdict { verdict, .. } => Some(*verdict),
                _ => None,
            })
            .collect();
        assert_eq!(
            verdicts.len(),
            1,
            "{sched:?}/{engine:?}: a trapped run must trace exactly one terminal Verdict"
        );
        assert!(
            matches!(verdicts[0], TraceVerdict::Killed | TraceVerdict::Deadlock),
            "{sched:?}/{engine:?}: unexpected verdict {:?}",
            verdicts[0]
        );
    }
}

/// Sessions accumulate: two invocations through one sink must produce
/// per-invocation metas and aggregate counters that match the session's
/// accumulated RunStats (this is exactly how benchsuite drivers run).
#[test]
fn multi_invocation_sessions_accumulate_in_the_sink() {
    let cfg = cfg_for(SchedulerKind::EventDriven, ExecEngine::Flat);
    let (m, sink) = run_bfs(&cfg, Some(Box::new(RingSink::unbounded())));
    let sink = sink.unwrap();
    let ring = sink.downcast_ref::<RingSink>().expect("ring");
    assert_eq!(
        ring.metas.len() as u64,
        m.stats.invocations,
        "one TraceMeta per pipeline invocation"
    );
    assert!(m.stats.invocations > 1, "BFS rounds must invoke repeatedly");
    // Every invocation announces the same pipeline shape.
    let first = &ring.metas[0];
    for meta in &ring.metas {
        assert_eq!(meta.stages.len(), first.stages.len());
        assert_eq!(meta.queue_capacity, first.queue_capacity);
    }
    // Finish events: every compute stage finishes every invocation.
    let finishes = ring
        .events()
        .filter(|e| matches!(e, TraceEvent::Finish { .. }))
        .count() as u64;
    assert!(
        finishes >= m.stats.invocations,
        "at least one Finish per invocation (got {finishes})"
    );
}
