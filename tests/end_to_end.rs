//! Workspace-level integration tests: C source -> Phloem -> Pipette,
//! across crates.

use phloem_benchsuite::{bfs, cc, radii, spmm, Variant};
use phloem_compiler::{compile_static, decouple_with_cuts, CompileOptions, PassConfig};
use phloem_frontend::compile_c;
use phloem_ir::{interp, ArrayDecl, MemState, StageKind, Value};
use phloem_workloads::{graph, matrix};
use pipette_sim::{Machine, MachineConfig};

const BFS_C: &str = r#"
    #pragma phloem
    void bfs_round(long cur_dist,
                   int* restrict fringe, int* restrict nodes,
                   int* restrict edges, int* restrict dist,
                   int* restrict next_fringe, int* restrict fringe_len,
                   int* restrict out_len) {
        long nl = fringe_len[0];
        long len = 0;
        for (long i = 0; i < nl; i++) {
            long v = fringe[i];
            long s = nodes[v];
            long e = nodes[v + 1];
            for (long j = s; j < e; j++) {
                long ngh = edges[j];
                long od = dist[ngh];
                if (od > cur_dist) {
                    dist[ngh] = cur_dist;
                    next_fringe[len] = ngh;
                    len++;
                }
            }
        }
        out_len[0] = len;
    }
"#;

#[test]
fn c_source_compiles_to_the_papers_bfs_pipeline() {
    let funcs = compile_c(BFS_C).expect("parse");
    let pipe = compile_static(&funcs[0].func, 4, &CompileOptions::default()).expect("compile");
    assert_eq!(pipe.total_stages(), 4);
    assert_eq!(pipe.ra_stages(), 2, "chained RAs over nodes and edges");
    // Chained: first RA feeds the second.
    let ras: Vec<_> = pipe
        .stages
        .iter()
        .filter_map(|s| match &s.kind {
            StageKind::Ra(c) => Some(c),
            _ => None,
        })
        .collect();
    assert_eq!(ras[0].out_queue, ras[1].in_queue);
}

#[test]
fn c_compiled_bfs_runs_correctly_on_the_machine() {
    let funcs = compile_c(BFS_C).expect("parse");
    let pipe = compile_static(&funcs[0].func, 4, &CompileOptions::default()).expect("compile");
    let g = graph::power_law(500, 3, 3);
    let (mem, arrays) = bfs::build_mem(&g, 0, 1);
    // One round through the timed machine.
    let mut mem = mem;
    mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &pipe,
        mem,
        &[("cur_dist", Value::I64(1))],
    )
    .expect("run");
    // Compare with a functional serial round.
    let (mut mem2, arrays2) = bfs::build_mem(&g, 0, 1);
    mem2.store(arrays2.fringe_len, 0, Value::I64(1)).unwrap();
    let serial =
        interp::run_serial(&funcs[0].func, mem2, &[("cur_dist", Value::I64(1))]).expect("serial");
    assert_eq!(
        run.mem.i64_vec(arrays.dist),
        serial.mem.i64_vec(arrays2.dist)
    );
}

#[test]
fn every_benchmark_has_four_agreeing_variants() {
    // Smoke version of Fig. 9 at unit-test sizes; each `run` verifies
    // against its oracle internally.
    let cfg = MachineConfig::paper_1core();
    let g = graph::collaboration(50, 2);
    for v in [
        Variant::Serial,
        Variant::DataParallel(4),
        Variant::phloem(),
        Variant::Manual,
    ] {
        bfs::run(&v, &g, 0, &cfg, "t").unwrap();
        cc::run(&v, &g, &cfg, "t").unwrap();
        radii::run(&v, &g, &cfg, "t").unwrap();
    }
    let a = matrix::random_square(30, 3.0, 5);
    let bt = a.transpose();
    for v in [Variant::Serial, Variant::phloem(), Variant::Manual] {
        spmm::run(&v, &a, &bt, &cfg, "t").unwrap();
    }
}

#[test]
fn pass_ablations_preserve_semantics_for_cc() {
    let g = graph::mesh(10, 8);
    let cfg = MachineConfig::paper_1core();
    let want = cc::oracle(&g);
    for passes in [
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
    ] {
        let v = Variant::Phloem {
            passes,
            stages: 4,
            cuts: vec![],
        };
        cc::run(&v, &g, &cfg, "mesh").unwrap(); // panics on mismatch
    }
    let _ = want;
}

#[test]
fn explicit_cut_combinations_stay_functionally_correct() {
    // Every pipeline the PGO search would enumerate must match the
    // serial oracle functionally.
    let kernel = bfs::kernel();
    let opts = phloem_compiler::search::SearchOptions::default();
    let pipes = phloem_compiler::search::enumerate_pipelines(&kernel, &opts);
    assert!(
        pipes.len() >= 10,
        "expected a rich candidate set, got {}",
        pipes.len()
    );
    let g = graph::power_law(300, 3, 1);
    // Serial reference for one round.
    let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
    mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
    let want = interp::run_serial(&kernel, mem, &[("cur_dist", Value::I64(1))])
        .unwrap()
        .mem
        .i64_vec(arrays.dist);
    for (cuts, pipe) in pipes {
        let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
        mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
        let run = interp::run_pipeline(&pipe, mem, &[("cur_dist", Value::I64(1))], 24)
            .unwrap_or_else(|e| panic!("cuts {cuts:?}: {e}"));
        assert_eq!(
            run.mem.i64_vec(arrays.dist),
            want,
            "wrong distances for cuts {cuts:?}"
        );
    }
}

#[test]
fn taco_to_phloem_full_path() {
    // Expression -> taco-mini -> Phloem -> machine, checked against the
    // host-side SpMV oracle.
    let k = taco_mini::kernels::spmv();
    let a = matrix::banded(200, 8, 6.0, 4);
    let pipe = compile_static(&k.phases[0], 4, &CompileOptions::default()).expect("compile");
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i32("A_rp"), a.row_ptr.iter().copied());
    mem.alloc_i64(ArrayDecl::i32("A_ci"), a.col_idx.iter().copied());
    mem.alloc_f64(ArrayDecl::f64("A_val"), a.vals.iter().copied());
    let x: Vec<f64> = (0..a.cols).map(|i| (i % 7) as f64 * 0.25).collect();
    mem.alloc_f64(ArrayDecl::f64("x"), x.iter().copied());
    let y = mem.alloc(ArrayDecl::f64("y"), a.rows);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &pipe,
        mem,
        &[("n", Value::I64(a.rows as i64))],
    )
    .expect("run");
    let want = a.spmv(&x);
    let got = run.mem.f64_vec(y);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-9, "{g} vs {w}");
    }
}

#[test]
fn race_rule_forbids_stale_reads() {
    // A kernel that reads and writes the same array: cutting at the read
    // must keep it co-staged with the write; forcing the read upstream
    // must fail.
    let src = r#"
        void propagate(long n, int* restrict order, int* restrict val) {
            for (long i = 0; i < n; i++) {
                long a = order[i];
                long x = val[a];
                val[a + 1] = x;
            }
        }
    "#;
    let funcs = compile_c(src).unwrap();
    let f = &funcs[0].func;
    let a = phloem_compiler::analyze(f);
    // val is written; the val load must not be a *separating* cut below
    // the store's stage — compiling with it as the only cut keeps them
    // together and stays correct.
    let val_load = a.loads.iter().find(|l| l.array_written).unwrap().id;
    let pipe = decouple_with_cuts(f, &[val_load], &CompileOptions::default()).expect("legal");
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i32("order"), (0..16).map(|i| (i * 5) % 16));
    mem.alloc_i64(ArrayDecl::i32("val"), (0..18).map(|i| i * 10));
    let run1 = interp::run_pipeline(&pipe, mem.clone(), &[("n", Value::I64(16))], 24).unwrap();
    let run2 = interp::run_serial(f, mem, &[("n", Value::I64(16))]).unwrap();
    assert!(run1.mem.same_contents(&run2.mem));
}

#[test]
fn pragma_replicate_distribute_end_to_end() {
    // A filter-gather kernel replicated x4 with a distributed boundary,
    // compiled straight from C source and run on a 4-core machine.
    let src = r#"
        #pragma phloem
        #pragma replicate(4)
        #pragma distribute
        void histogram(long n, int* restrict keys, int* restrict buckets) {
            for (long i = 0; i < n; i++) {
                long k = keys[i];
                buckets[k] += 1;
            }
        }
    "#;
    // buckets is read+written, so all bucket accesses co-stage; keys
    // feed the distributed boundary.
    let pipes = phloem_suite::compile_c_source(
        src,
        &CompileOptions {
            passes: PassConfig::with_handlers(), // keep boundary on compute
            ..Default::default()
        },
    )
    .expect("compile");
    let (_, pipe) = &pipes[0];
    assert_eq!(pipe.cores_used(), 4);

    let n = 4096usize;
    let m = 64usize;
    let mut mem = MemState::new();
    mem.alloc_i64(
        ArrayDecl::i32("keys"),
        (0..n).map(|i| ((i * 2654435761) % m) as i64),
    );
    let buckets = mem.alloc(ArrayDecl::i32("buckets"), m);
    let run = Machine::run_once(
        &MachineConfig::paper_multicore(4),
        pipe,
        mem,
        &[("n", Value::I64(n as i64))],
    )
    .expect("run");
    let got = run.mem.i64_vec(buckets);
    let mut want = vec![0i64; m];
    for i in 0..n {
        want[(i * 2654435761) % m] += 1;
    }
    assert_eq!(got, want);
}
