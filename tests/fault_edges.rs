//! Fault-injection edge cases against the tracing layer.
//!
//! Two pins:
//!
//! * An **empty** [`FaultPlan`] is bit-identical to no plan at all —
//!   same simulated cycles, same `RunStats`, same final memory, same
//!   trace digest — on every fault target and every point of the
//!   scheduler × engine grid (randomized pairing via proptest).
//! * Ordinal-windowed faults trace **exactly one event per trigger**:
//!   a `DequeueStall` over `[from, until)` emits one `FaultDeqStall`
//!   per affected successful dequeue, a `QueueSqueeze` emits one
//!   `FaultSqueeze` per squeezed successful enqueue — no double-fires,
//!   no misses, computable from the run's own queue counters.

use proptest::prelude::*;

use phloem_benchsuite::fault_targets::{targets, FaultTarget};
use pipette_sim::{
    DigestSink, ExecEngine, Fault, FaultPlan, MachineConfig, RingSink, SchedulerKind, Session,
    TraceEvent,
};

const GRID: [(SchedulerKind, ExecEngine); 4] = [
    (SchedulerKind::EventDriven, ExecEngine::Flat),
    (SchedulerKind::EventDriven, ExecEngine::Tree),
    (SchedulerKind::Polling, ExecEngine::Flat),
    (SchedulerKind::Polling, ExecEngine::Tree),
];

/// Runs one target to completion (they are built to succeed unfaulted)
/// and returns everything observable: makespan, stats, memory, digest.
fn observe(
    target: &FaultTarget,
    cfg: &MachineConfig,
    sched: SchedulerKind,
    engine: ExecEngine,
    plan: Option<FaultPlan>,
) -> (u64, String, u64) {
    let mut session = Session::new(cfg.clone(), target.mem.clone());
    if let Some(plan) = plan {
        session.set_faults(plan);
    }
    session.set_trace(Box::new(DigestSink::new()));
    let end = session
        .run_with_engine(&target.pipeline, &target.params, sched, engine)
        .unwrap_or_else(|e| panic!("{} must run clean: {e}", target.name));
    let sink = session.take_trace().unwrap();
    let digest = sink.downcast_ref::<DigestSink>().unwrap().digest();
    let (mem, stats) = session.finish();
    // Memory + stats rendered through Debug: cheap, total, and any
    // difference at all is a failure.
    (end, format!("{stats:?}/{mem:?}"), digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `set_faults(empty)` must be indistinguishable from never calling
    /// `set_faults`, down to the trace stream.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan(
        target_idx in 0usize..5,
        grid_idx in 0usize..4,
    ) {
        let cfg = MachineConfig::paper_1core();
        let all = targets(&cfg);
        let target = &all[target_idx % all.len()];
        let (sched, engine) = GRID[grid_idx];
        let bare = observe(target, &cfg, sched, engine, None);
        let empty = observe(target, &cfg, sched, engine, Some(FaultPlan::new(vec![])));
        prop_assert_eq!(bare.0, empty.0, "makespan diverged on {}", target.name);
        prop_assert_eq!(&bare.1, &empty.1, "stats/memory diverged on {}", target.name);
        prop_assert_eq!(bare.2, empty.2, "trace digest diverged on {}", target.name);
    }
}

/// Runs a target under a plan with a ring sink; returns the events plus
/// the session's queue counters.
fn run_faulted(
    target: &FaultTarget,
    cfg: &MachineConfig,
    plan: FaultPlan,
) -> (Vec<TraceEvent>, Vec<(u64, u64)>) {
    let mut session = Session::new(cfg.clone(), target.mem.clone());
    session.set_faults(plan);
    session.set_trace(Box::new(RingSink::unbounded()));
    session
        .run(&target.pipeline, &target.params)
        .unwrap_or_else(|e| panic!("{} must survive a windowed stall: {e}", target.name));
    let sink = session.take_trace().unwrap();
    let ring = sink.downcast_ref::<RingSink>().unwrap();
    let events: Vec<TraceEvent> = ring.events().copied().collect();
    let queues = session
        .stats()
        .queues
        .iter()
        .map(|q| (q.enqs, q.deqs))
        .collect();
    (events, queues)
}

#[test]
fn dequeue_stall_traces_exactly_one_event_per_affected_dequeue() {
    let cfg = MachineConfig::paper_1core();
    let target = &targets(&cfg)[0]; // bfs/manual: dense q0 traffic
    let (from, until, extra) = (2u64, 9u64, 5u64);
    let (events, queues) = run_faulted(
        target,
        &cfg,
        FaultPlan::new(vec![Fault::DequeueStall {
            queue: 0,
            extra,
            from_deq: from,
            until_deq: until,
        }]),
    );
    let fired = events
        .iter()
        .filter(
            |e| matches!(e, TraceEvent::FaultDeqStall { queue: 0, extra: x, .. } if *x == extra),
        )
        .count() as u64;
    let total_deqs = queues[0].1;
    assert!(total_deqs > until, "target must drive q0 past the window");
    assert_eq!(
        fired,
        until - from,
        "one FaultDeqStall per affected dequeue, no more, no less"
    );
}

#[test]
fn queue_squeeze_traces_exactly_one_event_per_squeezed_enqueue() {
    let cfg = MachineConfig::paper_1core();
    let target = &targets(&cfg)[0];
    let (from, until) = (1u64, 6u64);
    let (events, queues) = run_faulted(
        target,
        &cfg,
        FaultPlan::new(vec![Fault::QueueSqueeze {
            queue: 0,
            cap: 1,
            from_enq: from,
            until_enq: until,
        }]),
    );
    let fired = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::FaultSqueeze {
                    queue: 0,
                    cap: 1,
                    ..
                }
            )
        })
        .count() as u64;
    let total_enqs = queues[0].0;
    assert!(total_enqs > until, "target must drive q0 past the window");
    assert_eq!(
        fired,
        until - from,
        "one FaultSqueeze per squeezed enqueue, no more, no less"
    );
}

#[test]
fn fault_event_counts_are_grid_identical() {
    let plan = FaultPlan::new(vec![
        Fault::DequeueStall {
            queue: 0,
            extra: 3,
            from_deq: 0,
            until_deq: 4,
        },
        Fault::QueueSqueeze {
            queue: 0,
            cap: 2,
            from_enq: 0,
            until_enq: 4,
        },
    ]);
    let mut first: Option<(usize, usize)> = None;
    for (sched, engine) in GRID {
        let mut cfg = MachineConfig::paper_1core();
        cfg.scheduler = sched;
        cfg.engine = engine;
        let target = &targets(&cfg)[0];
        let (events, _) = run_faulted(target, &cfg, plan.clone());
        let stalls = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultDeqStall { .. }))
            .count();
        let squeezes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultSqueeze { .. }))
            .count();
        match first {
            None => first = Some((stalls, squeezes)),
            Some(f) => assert_eq!(
                f,
                (stalls, squeezes),
                "{sched:?}/{engine:?}: fault event counts diverged"
            ),
        }
    }
}
