//! Differential equality harness for the native backend: the same
//! compiled pipeline must produce the same final memory on
//!
//! * the serial interpreter (the functional oracle, original kernel),
//! * the cycle-level simulator, and
//! * the native thread backend — across channel backends, thread
//!   counts {1, 2, 4}, and repeated runs (determinism).
//!
//! App-level coverage drives the whole benchsuite (BFS, CC, Radii, PRD,
//! SpMM, and the four taco kernels) through their public `run()` entry
//! points under an ambient native [`BackendScope`]; each app asserts
//! its own host oracle internally, so a native-vs-serial divergence
//! panics inside the run.

use phloem_benchsuite::{bfs, cc, prd, radii, spmm, taco, with_backend, Variant};
use phloem_ir::{interp, Value};
use phloem_workloads::{graph, matrix};
use pipette_sim::{ChannelKind, ExecBackend, MachineConfig, NativeConfig, Session};

fn native(channel: ChannelKind, threads: usize) -> ExecBackend {
    ExecBackend::Native(NativeConfig { channel, threads })
}

const THREADS: [usize; 3] = [1, 2, 4];

/// One BFS fringe round, pinned across all three substrates at two
/// input scales × all channel backends × thread counts {1,2,4}, with
/// three repeated native runs per point (run-to-run determinism).
#[test]
fn bfs_round_memory_equality_full_matrix() {
    let cfg = MachineConfig::paper_1core();
    for (scale, g) in [
        ("mesh", graph::mesh(8, 3)),
        ("power-law", graph::power_law(300, 4, 9)),
    ] {
        let pipeline =
            bfs::pipeline_for(&Variant::phloem(), g.num_vertices, &cfg).expect("compile");
        let (mem, _) = bfs::build_mem(&g, 0, 1);
        let params = [("cur_dist", Value::I64(1))];

        // Serial interpreter: the original kernel, functional world.
        let oracle = interp::run_serial(&bfs::kernel(), mem.clone(), &params)
            .expect("serial oracle")
            .mem;

        // Simulator.
        let mut sim = Session::new(cfg.clone(), mem.clone());
        sim.run(&pipeline, &params).expect("sim run");
        let (sim_mem, _) = sim.finish();
        assert!(
            sim_mem.same_contents(&oracle),
            "{scale}: simulator diverged from the serial interpreter"
        );

        // Native: channels × threads × 3 repeats.
        for kind in ChannelKind::ALL {
            for threads in THREADS {
                let mut first: Option<phloem_ir::MemState> = None;
                for rep in 0..3 {
                    let mut s = Session::new(cfg.clone(), mem.clone());
                    s.set_backend(native(kind, threads));
                    s.run(&pipeline, &params)
                        .unwrap_or_else(|e| panic!("{scale} {kind} t{threads} rep{rep}: {e}"));
                    let (nmem, stats) = s.finish();
                    assert!(
                        nmem.same_contents(&oracle),
                        "{scale} {kind} t{threads} rep{rep}: native diverged from oracle"
                    );
                    assert_eq!(stats.invocations, 1);
                    match &first {
                        None => first = Some(nmem),
                        Some(f) => assert!(
                            nmem.same_contents(f),
                            "{scale} {kind} t{threads} rep{rep}: nondeterministic native run"
                        ),
                    }
                }
            }
        }
    }
}

/// Graph apps (BFS, CC, Radii, PRD) end-to-end — host-driven rounds to
/// convergence — natively, across the full channel × thread matrix.
/// Every `run()` asserts its host oracle internally, so reaching the
/// end *is* the equality check against serial semantics.
#[test]
fn graph_apps_converge_natively_across_the_matrix() {
    let cfg = MachineConfig::paper_1core();
    let g = graph::collaboration(40, 2);
    for kind in ChannelKind::ALL {
        for threads in THREADS {
            with_backend(native(kind, threads), || {
                for v in [Variant::Serial, Variant::phloem(), Variant::Manual] {
                    let label = format!("{kind} t{threads} {}", v.label());
                    bfs::run(&v, &g, 0, &cfg, "collab")
                        .unwrap_or_else(|e| panic!("bfs {label}: {e}"));
                    cc::run(&v, &g, &cfg, "collab").unwrap_or_else(|e| panic!("cc {label}: {e}"));
                }
                let v = Variant::phloem();
                radii::run(&v, &g, &cfg, "collab").unwrap_or_else(|e| panic!("radii: {e}"));
                prd::run(&v, &g, &cfg, "collab").unwrap_or_else(|e| panic!("prd: {e}"));
            });
        }
    }
}

/// Sparse kernels (SpMM and the four taco apps) natively on every
/// channel backend (threads pinned to 2 to bound runtime; the thread
/// dimension is covered by the graph apps above).
#[test]
fn sparse_kernels_run_natively_on_every_channel() {
    let cfg = MachineConfig::paper_1core();
    let a = matrix::random_square(24, 3.0, 5);
    let bt = a.transpose();
    for kind in ChannelKind::ALL {
        with_backend(native(kind, 2), || {
            for v in [Variant::Serial, Variant::phloem(), Variant::Manual] {
                spmm::run(&v, &a, &bt, &cfg, "rand")
                    .unwrap_or_else(|e| panic!("spmm {kind} {}: {e}", v.label()));
            }
            for app in taco::TacoApp::all() {
                taco::run(app, &Variant::phloem(), &a, &cfg, "rand")
                    .unwrap_or_else(|e| panic!("taco {app:?} {kind}: {e}"));
            }
        });
    }
}

/// The ambient scope routes *sessions created inside it*; a session
/// created outside keeps simulating, and `set_backend` overrides the
/// inherited value — the precedence contract services rely on.
#[test]
fn backend_scope_inheritance_and_override() {
    let cfg = MachineConfig::paper_1core();
    let g = graph::mesh(6, 1);
    let pipeline = bfs::pipeline_for(&Variant::phloem(), g.num_vertices, &cfg).expect("compile");
    let (mem, _) = bfs::build_mem(&g, 0, 1);
    let params = [("cur_dist", Value::I64(1))];

    // Inherited: native sessions report wall-clock (tiny), not simulated
    // cycles (hundreds+ for this pipeline would also pass — so instead
    // pin the backend getter).
    with_backend(native(ChannelKind::Ring, 2), || {
        let s = Session::new(cfg.clone(), mem.clone());
        assert!(matches!(s.backend(), ExecBackend::Native(_)));
    });
    let mut outside = Session::new(cfg.clone(), mem.clone());
    assert!(matches!(outside.backend(), ExecBackend::Sim));
    outside.set_backend(native(ChannelKind::Mpsc, 1));
    outside.run(&pipeline, &params).expect("override run");
    let (m1, _) = outside.finish();

    let oracle = interp::run_serial(&bfs::kernel(), mem, &params)
        .expect("oracle")
        .mem;
    assert!(m1.same_contents(&oracle));
}
