//! The pipeline validator, end to end: it must accept every pipeline
//! the compiler or the benchsuite produces, and reject hand-built
//! protocol violations with an error naming the offending pass.

use phloem_benchsuite::{bfs, cc, radii, spmm, taco, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{
    validate_pipeline, Expr, FunctionBuilder, Pipeline, PipelineError, QueueId, StageProgram,
    ValidateLimits, Violation,
};
use pipette_sim::MachineConfig;

fn limits() -> ValidateLimits {
    ValidateLimits::default()
}

// ---------------------------------------------------------------------
// Acceptance: everything the compiler and benchsuite build is valid.
// ---------------------------------------------------------------------

#[test]
fn accepts_every_benchsuite_pipeline() {
    let pipes: Vec<(&str, Pipeline)> = vec![
        ("bfs/manual", bfs::manual_pipeline()),
        ("cc/manual", cc::manual_pipeline()),
        ("radii/manual", radii::manual_pipeline()),
        ("spmm/manual", spmm::manual_pipeline()),
        (
            "bfs/static",
            compile_static(&bfs::kernel(), 4, &CompileOptions::default()).expect("bfs"),
        ),
        (
            "cc/static",
            compile_static(&cc::kernel(), 4, &CompileOptions::default()).expect("cc"),
        ),
        (
            "radii/static",
            compile_static(&radii::kernel(), 4, &CompileOptions::default()).expect("radii"),
        ),
        (
            "spmm/static",
            compile_static(&spmm::kernel(), 4, &CompileOptions::default()).expect("spmm"),
        ),
    ];
    for (label, p) in &pipes {
        validate_pipeline(p, &limits(), "final")
            .unwrap_or_else(|e| panic!("{label} rejected: {e}"));
    }
}

#[test]
fn accepts_every_pgo_candidate_pipeline() {
    // The full candidate set the profile-guided search would profile.
    for (name, kernel) in [("bfs", bfs::kernel()), ("cc", cc::kernel())] {
        let cands = enumerate_pipelines(&kernel, &SearchOptions::default());
        assert!(!cands.is_empty(), "{name}: no PGO candidates");
        for (cuts, p) in &cands {
            validate_pipeline(p, &limits(), "final")
                .unwrap_or_else(|e| panic!("{name} cuts {cuts:?} rejected: {e}"));
        }
    }
}

#[test]
fn accepts_every_taco_pipeline() {
    let cfg = MachineConfig::paper_1core();
    for app in taco::TacoApp::all() {
        let pipes = taco::pipelines_for(app, &Variant::phloem(), &cfg)
            .unwrap_or_else(|e| panic!("taco/{}: {e}", app.name()));
        for (pi, p) in pipes.iter().enumerate() {
            validate_pipeline(p, &limits(), "final")
                .unwrap_or_else(|e| panic!("taco/{}/phase{pi} rejected: {e}", app.name()));
        }
    }
}

// ---------------------------------------------------------------------
// Rejection: hand-built violations, each naming the pass.
// ---------------------------------------------------------------------

fn expect_violation(p: &Pipeline, lim: &ValidateLimits, pass: &str) -> PipelineError {
    let e = validate_pipeline(p, lim, pass).expect_err("validator must reject this pipeline");
    assert_eq!(e.pass, pass, "error must name the offending pass: {e}");
    e
}

#[test]
fn rejects_dangling_queue_naming_the_pass() {
    // A producer enqueues into q0; nothing ever dequeues it.
    let mut b = FunctionBuilder::new("orphan_producer");
    let i = b.var_i64("i");
    b.for_loop(i, Expr::i64(0), Expr::i64(4), |f| {
        f.enq(QueueId(0), Expr::var(i));
    });
    let mut p = Pipeline::new("dangling");
    p.add_stage(StageProgram::plain(b.build()), 0);
    let e = expect_violation(&p, &limits(), "add-queues");
    assert!(
        matches!(e.violation, Violation::NoConsumer { queue, .. } if queue == QueueId(0)),
        "{e}"
    );
}

#[test]
fn rejects_missing_cv_handler_naming_the_pass() {
    // The producer terminates the stream with a DONE control value; the
    // consumer registers no handler and never checks is_control, so the
    // CV would be delivered into a data register.
    let q = QueueId(0);
    let mut prod = FunctionBuilder::new("prod");
    let i = prod.var_i64("i");
    prod.for_loop(i, Expr::i64(0), Expr::i64(4), |f| {
        f.enq(q, Expr::var(i));
    });
    prod.enq_ctrl(q, 0);
    let mut cons = FunctionBuilder::new("cons");
    let j = cons.var_i64("j");
    let x = cons.var_i64("x");
    cons.for_loop(j, Expr::i64(0), Expr::i64(5), |f| {
        f.deq(x, q);
    });
    let mut p = Pipeline::new("cv_blind");
    p.add_stage(StageProgram::plain(prod.build()), 0);
    p.add_stage(StageProgram::plain(cons.build()), 0);
    let e = expect_violation(&p, &limits(), "control-values");
    assert!(
        matches!(e.violation, Violation::UnhandledCtrl { queue, tag: 0, .. } if queue == q),
        "{e}"
    );
}

#[test]
fn rejects_queue_budget_overflow_naming_the_pass() {
    // Three queues all consumed on core 0, against a 2-queue budget.
    let mut prod = FunctionBuilder::new("prod");
    let i = prod.var_i64("i");
    prod.for_loop(i, Expr::i64(0), Expr::i64(4), |f| {
        for q in 0..3 {
            f.enq(QueueId(q), Expr::var(i));
        }
    });
    let mut cons = FunctionBuilder::new("cons");
    let j = cons.var_i64("j");
    let x = cons.var_i64("x");
    cons.for_loop(j, Expr::i64(0), Expr::i64(4), |f| {
        for q in 0..3 {
            f.deq(x, QueueId(q));
        }
    });
    let mut p = Pipeline::new("overflow");
    p.add_stage(StageProgram::plain(prod.build()), 0);
    p.add_stage(StageProgram::plain(cons.build()), 0);
    let tight = ValidateLimits { queues_per_core: 2 };
    let e = expect_violation(&p, &tight, "replicate");
    assert!(
        matches!(
            e.violation,
            Violation::QueueBudget {
                core: 0,
                used: 3,
                budget: 2
            }
        ),
        "{e}"
    );
    // The same pipeline is fine under the architectural budget.
    validate_pipeline(&p, &limits(), "replicate").expect("within budget");
}

#[test]
fn debug_mode_bisects_a_miscompile_to_its_pass() {
    // validate_between_passes re-checks after `emit` and `ra-extract`:
    // whatever pass breaks an invariant is named in the error. Here both
    // pass, and the name of the *last* pass is carried through.
    let opts = CompileOptions {
        passes: phloem_compiler::PassConfig {
            validate_between_passes: true,
            ..phloem_compiler::PassConfig::all()
        },
        ..CompileOptions::default()
    };
    let p = compile_static(&bfs::kernel(), 4, &opts).expect("bfs compiles under debug mode");
    assert!(p.total_stages() >= 2);
}
