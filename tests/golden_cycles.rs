//! Golden simulated-cycle regression tests.
//!
//! Infrastructure refactors (polling -> event-driven scheduler, tree ->
//! bytecode execution engine) must not change the timing model: these
//! tests pin the exact cycle counts produced by the pinned timing model
//! on deterministic workloads, through small single-core pipelines,
//! replicated multicore ones, and both execution engines. Any
//! divergence means the change altered *simulated time*, not just host
//! time.
//!
//! To re-capture after an intentional timing-model change:
//! `GOLDEN_PRINT=1 cargo test --test golden_cycles -- --nocapture`

use phloem_benchsuite::fig14::{run_bfs_replicated, run_cc_replicated, RepVariant};
use phloem_benchsuite::{bfs, cc, spmm, taco, Variant};
use phloem_workloads::{graph, matrix};
use pipette_sim::{DigestSink, ExecEngine, MachineConfig, SchedulerKind, TraceSink};

/// `(label, cycles)` pinned from the seed timing model (verified
/// unchanged by the stream-prefetcher sentinel fix on these workloads).
const GOLDEN: &[(&str, u64)] = &[
    ("bfs/phloem/power_law_500", 17610),
    ("bfs/manual/power_law_500", 18395),
    ("bfs/replicated/collab_200", 20176),
    ("cc/phloem/power_law_300", 15178),
    ("cc/manual/power_law_300", 22979),
    ("spmm/phloem/rnd_40", 101241),
    ("spmm/manual/rnd_40", 114958),
    ("spmm/dp4/rnd_40", 32102),
    ("taco-spmv/phloem/rnd_48", 2682),
    ("cc/replicated/power_law_300", 17109),
];

fn measure_all(engine: ExecEngine) -> Vec<(&'static str, u64)> {
    measure_with(engine, SchedulerKind::EventDriven)
}

fn measure_with(engine: ExecEngine, scheduler: SchedulerKind) -> Vec<(&'static str, u64)> {
    measure_grid(engine, scheduler, true)
}

fn measure_grid(
    engine: ExecEngine,
    scheduler: SchedulerKind,
    fast_forward: bool,
) -> Vec<(&'static str, u64)> {
    let mut cfg1 = MachineConfig::paper_1core();
    cfg1.engine = engine;
    cfg1.scheduler = scheduler;
    cfg1.fast_forward = fast_forward;
    let mut cfg4 = MachineConfig::paper_multicore(4);
    cfg4.engine = engine;
    cfg4.scheduler = scheduler;
    cfg4.fast_forward = fast_forward;
    let mut out = Vec::new();

    let g = graph::power_law(500, 3, 3);
    out.push((
        "bfs/phloem/power_law_500",
        bfs::run(&Variant::phloem(), &g, 0, &cfg1, "power_law_500")
            .expect("golden run")
            .cycles,
    ));
    out.push((
        "bfs/manual/power_law_500",
        bfs::run(&Variant::Manual, &g, 0, &cfg1, "power_law_500")
            .expect("golden run")
            .cycles,
    ));

    let gr = graph::collaboration(200, 2);
    out.push((
        "bfs/replicated/collab_200",
        run_bfs_replicated(RepVariant::Phloem, &gr, 0, &cfg4, "collab_200")
            .expect("golden run")
            .cycles,
    ));

    let gc = graph::power_law(300, 3, 3);
    out.push((
        "cc/phloem/power_law_300",
        cc::run(&Variant::phloem(), &gc, &cfg1, "power_law_300")
            .expect("golden run")
            .cycles,
    ));
    out.push((
        "cc/manual/power_law_300",
        cc::run(&Variant::Manual, &gc, &cfg1, "power_law_300")
            .expect("golden run")
            .cycles,
    ));

    let a = matrix::random_square(40, 3.0, 1);
    let bt = a.transpose();
    out.push((
        "spmm/phloem/rnd_40",
        spmm::run(&Variant::phloem(), &a, &bt, &cfg1, "rnd_40")
            .expect("golden run")
            .cycles,
    ));
    out.push((
        "spmm/manual/rnd_40",
        spmm::run(&Variant::Manual, &a, &bt, &cfg1, "rnd_40")
            .expect("golden run")
            .cycles,
    ));
    out.push((
        "spmm/dp4/rnd_40",
        spmm::run(&Variant::DataParallel(4), &a, &bt, &cfg1, "rnd_40")
            .expect("golden run")
            .cycles,
    ));

    let m = matrix::random_square(48, 4.0, 7);
    out.push((
        "taco-spmv/phloem/rnd_48",
        taco::run(taco::TacoApp::Spmv, &Variant::phloem(), &m, &cfg1, "rnd_48")
            .expect("golden run")
            .cycles,
    ));

    out.push((
        "cc/replicated/power_law_300",
        run_cc_replicated(RepVariant::Phloem, &gc, &cfg4, "power_law_300")
            .expect("golden run")
            .cycles,
    ));
    out
}

#[test]
fn cycle_counts_match_the_seed_model_exactly() {
    let got = measure_all(ExecEngine::Flat);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (label, cycles) in &got {
            println!("    (\"{label}\", {cycles}),");
        }
        return;
    }
    assert_eq!(got.len(), GOLDEN.len());
    for ((label, cycles), (glabel, golden)) in got.iter().zip(GOLDEN) {
        assert_eq!(label, glabel);
        assert_eq!(
            cycles, golden,
            "{label}: simulated cycles diverged from the seed timing model"
        );
    }
}

#[test]
fn tree_engine_matches_flat_engine_exactly() {
    let flat = measure_all(ExecEngine::Flat);
    let tree = measure_all(ExecEngine::Tree);
    assert_eq!(
        flat, tree,
        "the bytecode engine changed simulated time vs the tree oracle"
    );
}

#[test]
fn polling_scheduler_matches_event_driven_exactly() {
    // The full grid: simulated cycles are a property of the timing
    // model, not of how the host schedules stage interpreters.
    let golden = measure_with(ExecEngine::Flat, SchedulerKind::EventDriven);
    for engine in [ExecEngine::Flat, ExecEngine::Tree] {
        let got = measure_with(engine, SchedulerKind::Polling);
        assert_eq!(
            golden, got,
            "Polling/{engine:?} changed simulated time vs EventDriven/Flat"
        );
    }
}

/// `(label, digest)` — golden order-sensitive digests of the canonical
/// trace event stream. The trace-oracle suite proves the stream is
/// grid-identical, so pinning one grid point (event-driven × flat) pins
/// all four; any change here means the *semantic event sequence*
/// changed, not just its rendering.
const GOLDEN_TRACE: &[(&str, u64)] = &[
    ("bfs/phloem/power_law_500", 0x9ed73ba4e6f7d62e),
    ("taco-spmv/phloem/rnd_48", 0x359e146c78bcc5de),
];

fn trace_digests(engine: ExecEngine, scheduler: SchedulerKind) -> Vec<(&'static str, u64)> {
    let mut cfg = MachineConfig::paper_1core();
    cfg.engine = engine;
    cfg.scheduler = scheduler;
    let digest_of = |sink: Box<dyn TraceSink>| {
        sink.downcast_ref::<DigestSink>()
            .expect("digest sink")
            .digest()
    };
    let mut out = Vec::new();

    let g = graph::power_law(500, 3, 3);
    let (m, sink) = bfs::run_traced(
        &Variant::phloem(),
        &g,
        0,
        &cfg,
        "power_law_500",
        Box::new(DigestSink::new()),
    );
    m.expect("golden run");
    out.push(("bfs/phloem/power_law_500", digest_of(sink)));

    let a = matrix::random_square(48, 4.0, 7);
    let (m, sink) = taco::run_traced(
        taco::TacoApp::Spmv,
        &Variant::phloem(),
        &a,
        &cfg,
        "rnd_48",
        Box::new(DigestSink::new()),
    );
    m.expect("golden run");
    out.push(("taco-spmv/phloem/rnd_48", digest_of(sink)));
    out
}

#[test]
fn trace_digests_match_the_pinned_event_streams() {
    let got = trace_digests(ExecEngine::Flat, SchedulerKind::EventDriven);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (label, digest) in &got {
            println!("    (\"{label}\", {digest:#018x}),");
        }
        return;
    }
    assert_eq!(got.len(), GOLDEN_TRACE.len());
    for ((label, digest), (glabel, golden)) in got.iter().zip(GOLDEN_TRACE) {
        assert_eq!(label, glabel);
        assert_eq!(
            digest, golden,
            "{label}: the semantic trace event stream diverged from the pinned digest"
        );
    }
}

#[test]
fn trace_digests_are_grid_identical_on_the_golden_workloads() {
    let golden = trace_digests(ExecEngine::Flat, SchedulerKind::EventDriven);
    for (engine, sched) in [
        (ExecEngine::Tree, SchedulerKind::EventDriven),
        (ExecEngine::Flat, SchedulerKind::Polling),
        (ExecEngine::Tree, SchedulerKind::Polling),
    ] {
        assert_eq!(
            golden,
            trace_digests(engine, sched),
            "{sched:?}/{engine:?} produced a different event stream"
        );
    }
}

/// The dense reference issue calendar (fast-forward off) must land on
/// the same pinned cycle counts as the default ring calendar: the ring
/// only reclaims cycles no thread can issue into, so it is a host-side
/// layout choice, never a timing-model change.
#[test]
fn fast_forward_off_matches_the_golden_pins() {
    let got = measure_grid(ExecEngine::Flat, SchedulerKind::EventDriven, false);
    assert_eq!(got.len(), GOLDEN.len());
    for ((label, cycles), (glabel, golden)) in got.iter().zip(GOLDEN) {
        assert_eq!(label, glabel);
        assert_eq!(
            cycles, golden,
            "{label}: the dense issue calendar diverged from the pinned cycles"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = measure_all(ExecEngine::Flat);
    let b = measure_all(ExecEngine::Flat);
    assert_eq!(a, b, "simulation is not deterministic across runs");
}
