//! Golden simulated-cycle regression tests.
//!
//! The scheduler refactor (polling -> event-driven) must not change the
//! timing model: these tests pin the exact cycle counts produced by the
//! seed implementation on deterministic workloads, through both small
//! single-core pipelines and replicated multicore ones. Any divergence
//! means the scheduler changed *simulated time*, not just host time.
//!
//! To re-capture after an intentional timing-model change:
//! `GOLDEN_PRINT=1 cargo test --test golden_cycles -- --nocapture`

use phloem_benchsuite::fig14::{run_bfs_replicated, RepVariant};
use phloem_benchsuite::{bfs, spmm, Variant};
use phloem_workloads::{graph, matrix};
use pipette_sim::MachineConfig;

/// `(label, cycles)` pinned from the seed timing model.
const GOLDEN: &[(&str, u64)] = &[
    ("bfs/phloem/power_law_500", 17610),
    ("bfs/manual/power_law_500", 18395),
    ("bfs/replicated/collab_200", 20176),
    ("spmm/phloem/rnd_40", 101241),
    ("spmm/manual/rnd_40", 114958),
    ("spmm/dp4/rnd_40", 32102),
];

fn measure_all() -> Vec<(&'static str, u64)> {
    let cfg1 = MachineConfig::paper_1core();
    let cfg4 = MachineConfig::paper_multicore(4);
    let mut out = Vec::new();

    let g = graph::power_law(500, 3, 3);
    out.push((
        "bfs/phloem/power_law_500",
        bfs::run(&Variant::phloem(), &g, 0, &cfg1, "power_law_500").cycles,
    ));
    out.push((
        "bfs/manual/power_law_500",
        bfs::run(&Variant::Manual, &g, 0, &cfg1, "power_law_500").cycles,
    ));

    let gr = graph::collaboration(200, 2);
    out.push((
        "bfs/replicated/collab_200",
        run_bfs_replicated(RepVariant::Phloem, &gr, 0, &cfg4, "collab_200").cycles,
    ));

    let a = matrix::random_square(40, 3.0, 1);
    let bt = a.transpose();
    out.push((
        "spmm/phloem/rnd_40",
        spmm::run(&Variant::phloem(), &a, &bt, &cfg1, "rnd_40").cycles,
    ));
    out.push((
        "spmm/manual/rnd_40",
        spmm::run(&Variant::Manual, &a, &bt, &cfg1, "rnd_40").cycles,
    ));
    out.push((
        "spmm/dp4/rnd_40",
        spmm::run(&Variant::DataParallel(4), &a, &bt, &cfg1, "rnd_40").cycles,
    ));
    out
}

#[test]
fn cycle_counts_match_the_seed_model_exactly() {
    let got = measure_all();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (label, cycles) in &got {
            println!("    (\"{label}\", {cycles}),");
        }
        return;
    }
    assert_eq!(got.len(), GOLDEN.len());
    for ((label, cycles), (glabel, golden)) in got.iter().zip(GOLDEN) {
        assert_eq!(label, glabel);
        assert_eq!(
            cycles, golden,
            "{label}: simulated cycles diverged from the seed timing model"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = measure_all();
    let b = measure_all();
    assert_eq!(a, b, "simulation is not deterministic across runs");
}
