//! Worker-count independence of every fleet consumer: the
//! work-stealing pool (`phloem-pool`) schedules whole simulations onto
//! host threads, so the *only* acceptable effect of changing the worker
//! count is wall-clock time. These tests pin that down byte-for-byte:
//! the PGO search report, a fuzzdiff sweep's full report, and a
//! fig-style PGO sweep must render identically at worker counts
//! {1, 2, 4, available_parallelism} and across repeated runs at the
//! same count. (Pool-internal behavior — steal fairness, park/unpark,
//! panic containment, empty/one-task edges — is covered by the unit
//! suite in `crates/pool/tests/pool_unit.rs`.)
//!
//! The search property runs under proptest with a *randomized*
//! synthetic cost function, so determinism is not an artifact of one
//! lucky workload: candidates trap, time out, and tie at random, and
//! the report (winner choice included) must still be invariant.

use proptest::prelude::*;

use phloem_bench::fuzz::{fuzz_sweep, render_failure};
use phloem_bench::{machine, pgo_search_with, train_graph_profiled};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::search::{
    search_profiled, CandidateProfile, ProfileOutcome, SearchOptions, SearchReport,
};
use phloem_compiler::PassConfig;
use phloem_pool::Pool;

/// Worker counts under test: the ISSUE's {1, 2, 4} plus whatever this
/// host actually has (deduplicated; on a 1-core host the last entry
/// still exercises oversubscription at 2 and 4).
fn worker_counts() -> Vec<usize> {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, avail];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Renders a search result to a canonical byte string. `Debug` output
/// is deterministic for these plain-data types, so byte equality of the
/// rendering is byte equality of the report.
fn render_search(r: &Result<SearchReport, phloem_compiler::search::SearchError>) -> String {
    match r {
        Ok(rep) => format!("best={} candidates={:?}", rep.best, rep.candidates),
        Err(e) => format!("error={e:?}"),
    }
}

/// A synthetic, seed-randomized profile closure: a pure function of the
/// candidate's cuts (never of scheduling), mixing in traps and
/// timeouts so failure paths are exercised too.
fn synthetic_outcome(seed: u64, cuts_dbg: &str) -> (ProfileOutcome, Option<CandidateProfile>) {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in cuts_dbg.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    match h % 10 {
        0 => (
            ProfileOutcome::Trapped(format!("synthetic trap {h:x}")),
            None,
        ),
        1 => (ProfileOutcome::TimedOut, None),
        _ => (
            ProfileOutcome::Ok(1000.0 + (h % 100_000) as f64),
            Some(CandidateProfile {
                critical_stage: format!("stage{}", h % 4),
                stage_utilization: vec![(format!("s{}", h % 3), (h % 97) as f64 / 97.0)],
                dominant_stall: "queue-full".into(),
            }),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `search_profiled` over the BFS kernel with a randomized
    /// synthetic cost function: byte-identical report at every worker
    /// count, and across a repeated run at the same count.
    #[test]
    fn search_report_is_worker_count_independent(seed in any::<u64>()) {
        let kernel = bfs::kernel();
        let profile = |cuts: &[phloem_ir::LoadId],
                       _p: &phloem_ir::Pipeline,
                       _b: &phloem_compiler::search::ProfileBudget| {
            synthetic_outcome(seed, &format!("{cuts:?}"))
        };
        let mut reference: Option<String> = None;
        for w in worker_counts() {
            let opts = SearchOptions { workers: w, ..SearchOptions::default() };
            let rendered = render_search(&search_profiled(&kernel, &opts, profile));
            let again = render_search(&search_profiled(&kernel, &opts, profile));
            prop_assert_eq!(&rendered, &again, "search not reproducible at {} workers", w);
            match &reference {
                None => reference = Some(rendered),
                Some(r) => prop_assert_eq!(r, &rendered, "search diverged at {} workers", w),
            }
        }
    }

    /// A fuzzdiff sweep's full report (summary + every failure
    /// rendering): byte-identical at every worker count and across
    /// repeated runs.
    #[test]
    fn fuzz_sweep_report_is_worker_count_independent(seed in any::<u64>()) {
        let render = |w: usize| {
            let outcome = fuzz_sweep(seed, 20, &Pool::new(w), None);
            let mut s = outcome.summary(seed);
            for (k, g, why) in &outcome.failures {
                s.push_str(&format!("\n[{k}] {}", render_failure(g, why)));
            }
            s
        };
        let mut reference: Option<String> = None;
        for w in worker_counts() {
            let rendered = render(w);
            prop_assert_eq!(&rendered, &render(w), "fuzz sweep not reproducible at {} workers", w);
            match &reference {
                None => reference = Some(rendered),
                Some(r) => prop_assert_eq!(r, &rendered, "fuzz sweep diverged at {} workers", w),
            }
        }
    }
}

/// A fig-style sweep — `pgo_search_with` profiling real BFS simulations
/// over the training graphs, exactly the Fig. 13 inner loop — produces
/// a byte-identical outcome at every worker count. One deterministic
/// workload (real simulation is too slow to proptest), asserted on the
/// full rendered outcome including per-candidate speedup points.
#[test]
fn fig_style_sweep_is_worker_count_independent() {
    std::env::set_var("SCALE", "tiny");
    let cfg = machine();
    let kernel = bfs::kernel();
    let render = |w: usize| {
        let opts = SearchOptions {
            workers: w,
            ..SearchOptions::default()
        };
        let pgo = pgo_search_with(&opts, &kernel, 1_000_000.0, |cuts, budget| {
            train_graph_profiled(
                "BFS",
                &Variant::Phloem {
                    passes: PassConfig::all(),
                    stages: 4,
                    cuts: cuts.to_vec(),
                },
                &cfg,
                budget,
            )
        });
        format!(
            "best={:?} profile={:?} points={:?} failures={:?}",
            pgo.best_cuts, pgo.best_profile, pgo.points, pgo.failures
        )
    };
    let mut reference: Option<String> = None;
    for w in worker_counts() {
        let rendered = render(w);
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(r, &rendered, "fig-style sweep diverged at {w} workers"),
        }
    }
}
