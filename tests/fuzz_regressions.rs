//! Minimized regression tests from `fuzzdiff` divergences (see
//! `crates/bench/src/bin/fuzzdiff.rs`). Each test is a shrunk failing
//! program committed with the cut/pass combination that exposed it.

use phloem_compiler::{decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::{
    interp, ArrayDecl, BinOp, Expr, Function, FunctionBuilder, LoadId, MemState, Value,
};
use pipette_sim::{ChannelKind, ExecBackend, Machine, MachineConfig, NativeConfig, Session};

/// fuzzdiff seed 0xf00d (13/100 programs): a `while(1)` CSR walk whose
/// exit test `if (i >= n) break` sits in the loop body. With control
/// values disabled (`queues_only`), every stage replicates the exit-if
/// skeleton, but the `break` inside was emitted only by its owning
/// stage — the consumer's copy read `if (_t1) { }` and spun forever,
/// deadlocking once the producer finished.
fn while_csr_walk() -> Function {
    let mut b = FunctionBuilder::new("fuzz");
    let n = b.param_i64("n");
    let bounds = b.array_i64("bounds");
    let items = b.array_i64("items");
    let out = b.array_i64("out");
    let acc = b.var_i64("acc");
    let i = b.var_i64("i");
    let s0 = b.var_i64("s0");
    let e0 = b.var_i64("e0");
    let j0 = b.var_i64("j0");
    let v0 = b.var_i64("v0");
    b.while_true(|f| {
        let ls = f.load(bounds, Expr::var(i));
        f.assign(s0, ls);
        let le = f.load(bounds, Expr::add(Expr::var(i), Expr::i64(1)));
        f.assign(e0, le);
        f.for_loop(j0, Expr::var(s0), Expr::var(e0), |f| {
            let lv = f.load(items, Expr::var(j0));
            f.assign(v0, lv);
            f.assign(acc, Expr::add(Expr::var(acc), Expr::var(v0)));
        });
        f.assign(i, Expr::add(Expr::var(i), Expr::i64(1)));
        f.if_then(Expr::bin(BinOp::Ge, Expr::var(i), Expr::var(n)), |f| {
            f.break_out(1)
        });
    });
    b.store(out, Expr::i64(0), Expr::var(acc));
    b.build()
}

fn mem() -> MemState {
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("bounds"), [0, 1, 3]);
    mem.alloc_i64(ArrayDecl::i64("items"), [10, 20, 30, 40]);
    mem.alloc(ArrayDecl::i64("out"), 2);
    mem
}

#[test]
fn while_exit_break_is_replicated_into_every_bounds_stage() {
    let func = while_csr_walk();
    let params = [("n", Value::I64(2))];
    let oracle = interp::run_serial(&func, mem(), &params).expect("serial oracle");
    let opts = CompileOptions {
        passes: PassConfig::queues_only(),
        ..CompileOptions::default()
    };
    // Both cut points (the second bounds load, the items load) produced
    // a consumer stage missing the exit break.
    for cut in [1, 2] {
        let pipe = decouple_with_cuts(&func, &[LoadId(cut)], &opts)
            .unwrap_or_else(|e| panic!("cut {cut} must compile: {e}"));
        let run = Machine::run_once(&MachineConfig::paper_1core(), &pipe, mem(), &params)
            .unwrap_or_else(|e| panic!("cut {cut} deadlocked: {e}"));
        assert!(
            run.mem.same_contents(&oracle.mem),
            "cut {cut}: memory diverged from the serial oracle"
        );
    }
}

/// The same exit-break reproducer on the native thread backend. The
/// historical bug deadlocked a consumer stage; under native execution
/// the identical miscompile would park the fleet and surface as a
/// `Deadlock` trap, so this pin keeps the skeleton-replication fix
/// honest on real threads too (`fuzzdiff --native` at 200 genomes ×
/// the full channel × thread grid flushed no additional divergences to
/// pin as of the backend's introduction).
#[test]
fn while_exit_break_pin_holds_on_the_native_backend() {
    let func = while_csr_walk();
    let params = [("n", Value::I64(2))];
    let oracle = interp::run_serial(&func, mem(), &params).expect("serial oracle");
    let opts = CompileOptions {
        passes: PassConfig::queues_only(),
        ..CompileOptions::default()
    };
    for cut in [1, 2] {
        let pipe = decouple_with_cuts(&func, &[LoadId(cut)], &opts)
            .unwrap_or_else(|e| panic!("cut {cut} must compile: {e}"));
        for channel in ChannelKind::ALL {
            for threads in [1, 2, 4] {
                let mut s = Session::new(MachineConfig::paper_1core(), mem());
                s.set_backend(ExecBackend::Native(NativeConfig { channel, threads }));
                s.run(&pipe, &params).unwrap_or_else(|e| {
                    panic!("cut {cut} {channel}/t{threads} trapped natively: {e}")
                });
                let (nmem, _) = s.finish();
                assert!(
                    nmem.same_contents(&oracle.mem),
                    "cut {cut} {channel}/t{threads}: native memory diverged"
                );
            }
        }
    }
}
