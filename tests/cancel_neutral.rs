//! Cooperative cancellation is cycle-neutral.
//!
//! The service layer threads a host-side `CancelToken` into sessions
//! (explicitly or via the ambient `CancelScope`), and the timing world
//! polls it at the same round boundaries the watchdog uses. The pins:
//!
//! * a token that never fires is **observationally free** — outcome,
//!   `RunStats`, final memory, and trace digest are bit-identical to a
//!   run with no token at all, on every point of the
//!   {scheduler} × {engine} × {fast-forward} grid;
//! * a token cancelled *before* the run starts fires at the first round
//!   boundary, which is grid-identical — so the resulting
//!   `Trap::Cancelled` lands on the **same simulated cycle with the
//!   same message** across the whole grid (the host clock only decides
//!   *whether* a round gets cancelled, never what the simulated state
//!   at that round is).

use phloem_benchsuite::fault_targets::{targets, FaultTarget};
use pipette_sim::{
    CancelScope, CancelToken, DigestSink, ExecEngine, MachineConfig, SchedulerKind, Session,
};
use std::time::Duration;

const GRID: [(SchedulerKind, ExecEngine); 4] = [
    (SchedulerKind::EventDriven, ExecEngine::Flat),
    (SchedulerKind::EventDriven, ExecEngine::Tree),
    (SchedulerKind::Polling, ExecEngine::Flat),
    (SchedulerKind::Polling, ExecEngine::Tree),
];

/// Everything observable from one run: the outcome (makespan or the
/// trap, rendered), `RunStats` and final memory via `Debug`, and the
/// trace digest. Trapped runs still digest their partial trace.
struct Observed {
    outcome: String,
    stats: String,
    mem: String,
    digest: u64,
}

/// How the run acquires (or doesn't acquire) a cancel token.
enum Tok {
    None,
    /// `Session::set_cancel` with a deadline far beyond the run.
    ExplicitUnfired,
    /// Ambient `CancelScope` with a deadline far beyond the run.
    AmbientUnfired,
    /// A token cancelled before the run starts.
    PreCancelled,
}

fn observe(target: &FaultTarget, cfg: &MachineConfig, tok: &Tok) -> Observed {
    let _scope = match tok {
        Tok::AmbientUnfired => Some(CancelScope::enter(CancelToken::with_deadline(
            Duration::from_secs(3600),
        ))),
        _ => None,
    };
    let mut session = Session::new(cfg.clone(), target.mem.clone());
    match tok {
        Tok::ExplicitUnfired => {
            session.set_cancel(CancelToken::with_deadline(Duration::from_secs(3600)));
        }
        Tok::PreCancelled => {
            let t = CancelToken::new();
            t.cancel("test drain");
            session.set_cancel(t);
        }
        Tok::None | Tok::AmbientUnfired => {}
    }
    session.set_trace(Box::new(DigestSink::new()));
    let outcome = match session.run(&target.pipeline, &target.params) {
        Ok(end) => format!("end={end}"),
        Err(e) => format!("trap={e}"),
    };
    let sink = session.take_trace().unwrap();
    let digest = sink.downcast_ref::<DigestSink>().unwrap().digest();
    let (mem, stats) = session.finish();
    Observed {
        outcome,
        stats: format!("{stats:?}"),
        mem: format!("{mem:?}"),
        digest,
    }
}

/// An unfired token — explicit or ambient — changes nothing, anywhere
/// on the grid: same outcome, stats, memory, and trace digest as a
/// token-free run.
#[test]
fn unfired_tokens_are_observationally_free() {
    let base = MachineConfig::paper_1core();
    let all = targets(&base);
    for target in all.iter().take(3) {
        for (sched, engine) in GRID {
            for fast_forward in [true, false] {
                let mut cfg = base.clone();
                cfg.scheduler = sched;
                cfg.engine = engine;
                cfg.fast_forward = fast_forward;
                let bare = observe(target, &cfg, &Tok::None);
                for tok in [Tok::ExplicitUnfired, Tok::AmbientUnfired] {
                    let armed = observe(target, &cfg, &tok);
                    let label = format!("{} ({sched:?}/{engine:?}/ff={fast_forward})", target.name);
                    assert_eq!(bare.outcome, armed.outcome, "{label}: outcome diverged");
                    assert_eq!(bare.stats, armed.stats, "{label}: RunStats diverged");
                    assert_eq!(bare.mem, armed.mem, "{label}: final memory diverged");
                    assert_eq!(bare.digest, armed.digest, "{label}: trace digest diverged");
                }
            }
        }
    }
}

/// A pre-cancelled token traps at the first round boundary — which is
/// grid-identical, so every cell reports the same `Trap::Cancelled` at
/// the same cycle with the same snapshot, and the trace digest matches
/// a token-free run's digest truncated at that round (cancellation
/// itself emits no trace event).
#[test]
fn pre_cancelled_runs_trap_identically_across_the_grid() {
    let base = MachineConfig::paper_1core();
    let all = targets(&base);
    let target = &all[0]; // bfs/manual: dense queue traffic
    let mut first: Option<Observed> = None;
    for (sched, engine) in GRID {
        for fast_forward in [true, false] {
            let mut cfg = base.clone();
            cfg.scheduler = sched;
            cfg.engine = engine;
            cfg.fast_forward = fast_forward;
            let got = observe(target, &cfg, &Tok::PreCancelled);
            let label = format!("{sched:?}/{engine:?}/ff={fast_forward}");
            assert!(
                got.outcome.starts_with("trap=cancelled at cycle "),
                "{label}: expected a Cancelled trap, got {}",
                got.outcome
            );
            assert!(
                got.outcome.contains("test drain"),
                "{label}: trap must carry the cancel reason: {}",
                got.outcome
            );
            match &first {
                None => first = Some(got),
                Some(want) => {
                    assert_eq!(want.outcome, got.outcome, "{label}: trap diverged");
                    assert_eq!(want.mem, got.mem, "{label}: final memory diverged");
                    assert_eq!(want.digest, got.digest, "{label}: trace digest diverged");
                }
            }
        }
    }
}
