//! # phloem-suite
//!
//! Umbrella crate of the Phloem (HPCA 2023) reproduction: re-exports the
//! component crates and provides the end-to-end "C source with pragmas
//! in, pipelines out" entry point the paper's workflow describes.
//!
//! See the repository `README.md` for the full map, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use phloem_benchsuite as benchsuite;
pub use phloem_compiler as compiler;
pub use phloem_frontend as frontend;
pub use phloem_ir as ir;
pub use phloem_workloads as workloads;
pub use pipette_sim as pipette;
pub use taco_mini as taco;

use phloem_compiler::replicate::{replicate, ReplicateSpec};
use phloem_compiler::{CompileError, CompileOptions};
use phloem_ir::{Pipeline, QueueId};

/// Error from the end-to-end C pipeline compilation.
#[derive(Debug)]
pub enum SuiteError {
    /// Frontend failure.
    Parse(phloem_frontend::ParseError),
    /// Compiler failure.
    Compile(CompileError),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Parse(e) => write!(f, "{e}"),
            SuiteError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// Compiles every `#pragma phloem` function in a PhloemC source string,
/// honoring its pragmas:
///
/// * `#pragma decouple` loads become forced cut points (otherwise the
///   static cost model picks cuts for a 4-stage pipeline);
/// * `#pragma replicate(N)` + `#pragma distribute` replicate the
///   pipeline N times with the last inter-stage queue as the
///   value-distributed boundary.
///
/// Functions without `#pragma phloem` are skipped (the paper's compiler
/// only transforms marked kernels).
///
/// # Errors
/// Returns parse or compile errors with context.
///
/// ```
/// let src = r#"
///     #pragma phloem
///     void gather(long n, int* restrict a, int* restrict b,
///                 int* restrict out) {
///         long acc = 0;
///         for (long i = 0; i < n; i++) {
///             long x = a[i];
///             long y = b[x];
///             acc += y;
///         }
///         out[0] = acc;
///     }
/// "#;
/// let pipes = phloem_suite::compile_c_source(src, &Default::default())?;
/// assert_eq!(pipes.len(), 1);
/// assert!(pipes[0].1.compute_stages() >= 2);
/// # Ok::<(), phloem_suite::SuiteError>(())
/// ```
pub fn compile_c_source(
    src: &str,
    opts: &CompileOptions,
) -> Result<Vec<(String, Pipeline)>, SuiteError> {
    let funcs = phloem_frontend::compile_c(src).map_err(SuiteError::Parse)?;
    let mut out = Vec::new();
    for cf in funcs {
        if !cf.pragmas.phloem {
            continue;
        }
        // Distribution needs stream-terminated consumers (their item
        // counts change); RAs cannot feed a distribute boundary.
        let mut fopts = opts.clone();
        if cf.pragmas.replicate.unwrap_or(1) > 1 && cf.pragmas.distribute {
            fopts.passes.stream_consumers = true;
            fopts.passes.use_ra = false;
        }
        let pipeline = if cf.pragmas.decouple_loads.is_empty() {
            phloem_compiler::compile_static(&cf.func, 4, &fopts)
        } else {
            phloem_compiler::decouple_with_cuts(&cf.func, &cf.pragmas.decouple_loads, &fopts)
        }
        .map_err(SuiteError::Compile)?;
        let pipeline = match cf.pragmas.replicate {
            Some(n) if n > 1 => {
                let distribute = if cf.pragmas.distribute && pipeline.num_queues > 0 {
                    vec![QueueId(pipeline.num_queues - 1)]
                } else {
                    Vec::new()
                };
                replicate(
                    &pipeline,
                    &ReplicateSpec {
                        replicas: n,
                        distribute,
                        partition_input: true,
                    },
                )
                .map_err(SuiteError::Compile)?
            }
            _ => pipeline,
        };
        out.push((cf.func.name.clone(), pipeline));
    }
    Ok(out)
}
