#!/usr/bin/env bash
# Repo CI gate. Run from the repo root; fails fast on the first error.
#
#   ./ci.sh            # build + test + lint + format check
#
# Tier-1 (must always pass): release build + default-package tests.
# The remaining steps hold the whole workspace to the same bar.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> simspeed --smoke (scheduler x engine cycle/atom equality)"
cargo run --release -q -p phloem-bench --bin simspeed -- --smoke

echo "==> trace-smoke (Perfetto schema + trace-vs-untraced cycle identity)"
cargo run --release -q -p phloem-bench --bin trace -- --smoke

echo "==> trace_oracle (trace/RunStats reconciliation across the grid)"
cargo test -q --test trace_oracle

echo "==> fuzzdiff --smoke (differential fuzzing, fixed seed)"
cargo run --release -q -p phloem-bench --bin fuzzdiff -- --smoke

echo "==> fuzzdiff --faults --smoke (fault injection, grid-identical outcomes)"
cargo run --release -q -p phloem-bench --bin fuzzdiff -- --faults --smoke

echo "==> sim_robustness (watchdog/fault/degradation pins)"
cargo test -q --test sim_robustness

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
