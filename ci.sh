#!/usr/bin/env bash
# Repo CI gate. Run from the repo root; fails fast on the first error.
#
#   ./ci.sh            # build + test + lint + format check
#
# Tier-1 (must always pass): release build + default-package tests.
# The remaining steps hold the whole workspace to the same bar.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> simspeed --smoke (grid cycle/atom equality + throughput regression gate)"
# Besides the cycle/atom-equality asserts, smoke mode gates the measured
# event x flat throughput against the recorded BENCH_simspeed.json and
# fails on a >15% regression (skips with a note if the file is absent).
cargo run --release -q -p phloem-bench --bin simspeed -- --smoke

echo "==> trace-smoke (Perfetto schema + trace-vs-untraced cycle identity)"
cargo run --release -q -p phloem-bench --bin trace -- --smoke

echo "==> trace_oracle (trace/RunStats reconciliation across the grid)"
cargo test -q --test trace_oracle

echo "==> fuzzdiff --smoke (differential fuzzing, fixed seed)"
cargo run --release -q -p phloem-bench --bin fuzzdiff -- --smoke

echo "==> fuzzdiff --faults --smoke (fault injection, grid-identical outcomes)"
cargo run --release -q -p phloem-bench --bin fuzzdiff -- --faults --smoke

echo "==> sim_robustness (watchdog/fault/degradation pins)"
cargo test -q --test sim_robustness

echo "==> phloem-pool unit tests (steal fairness, park/unpark, panic containment)"
cargo test -q -p phloem-pool

echo "==> pool_determinism (bit-identical reports across worker counts)"
cargo test -q --test pool_determinism

echo "==> parallel --smoke (fleet scaling: determinism + overhead gates)"
# Asserts >=1.5x host speedup at 4 workers when the host has >=4 cores;
# on smaller hosts the speedup gate is skipped (hardware-bounded) but
# the determinism and overhead assertions still run.
cargo run --release -q -p phloem-bench --bin parallel -- --smoke

echo "==> channel_unit (bounded channel backends: capacity edges, drop-termination, CV ordering, seeded stress)"
cargo test -q -p pipette-sim --test channel_unit

echo "==> native_equivalence (native threads vs serial interpreter vs simulator, full channel x thread matrix)"
cargo test -q --test native_equivalence

echo "==> fuzzdiff --native --smoke (generated genomes on real threads vs the serial oracle)"
# Every generated pipeline runs on all three channel backends at
# 1/2/4 worker threads; any divergence is delta-debugged to a minimal
# reproducer before the run fails.
cargo run --release -q -p phloem-bench --bin fuzzdiff -- --native --smoke

echo "==> native --smoke (native-backend wall clock: oracle-verified runs, host-gated overhead bound)"
# On a single-core host the speedup gate is skipped (stage threads
# time-slice; flat-or-worse is physics) but every app still runs
# natively on every channel and verifies against its host oracle.
SCALE=tiny cargo run --release -q -p phloem-bench --bin native -- --smoke

echo "==> phloem-service tests (cache-key sensitivity, grid bit-identity, daemon smoke + error paths, persistence)"
cargo test -q -p phloem-service

echo "==> serve --smoke (service replay: bit-identical warm hits, >=0.5 hit-rate gate, persist/restore round-trip)"
# The smoke pass includes the restart pass: caches are persisted to a
# snapshot, the transport is rebuilt from it, and the warm-after-restart
# hit-rate is gated >= 0.5 with bit-identical restored responses.
SCALE=tiny cargo run --release -q -p phloem-bench --bin serve -- --smoke

echo "==> chaos --smoke (deterministic fault injection against a live phloemd)"
# 7 fault shapes (severed connections, malformed/oversized input, slow
# partial writes, shutdown races, SIGKILL restart, snapshot corruption)
# x 3 seeds; every seed must pass. The full run uses 20 seeds.
cargo run --release -q -p phloem-bench --bin chaos -- --smoke

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
