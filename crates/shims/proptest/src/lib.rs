//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so property tests run
//! on this minimal, dependency-free re-implementation of the proptest
//! surface the workspace uses: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`]. Differences from the real crate:
//!
//! * Sampling is **deterministic** — each test's case stream is seeded
//!   from the test name, so failures reproduce exactly (set
//!   `PROPTEST_CASES` to raise the case count).
//! * No shrinking: a failing case reports its inputs verbatim.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Test-case generator state (deterministic).
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for a named test; the name keys the stream
    /// so each test draws an independent deterministic sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.0.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// Failure of one test case; aborts the case, not the process.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Effective case count, honouring the `PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for any value of a type (`any::<T>()`).
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a default ("arbitrary") strategy.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix small magnitudes with full-width values so edge
                // cases near zero appear often.
                match rng.below(4) {
                    0 => (rng.below(16) as i64 - 8) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A constant strategy (`Just(v)`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and lengths in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Declares property tests over sampled inputs (proptest-compatible
/// subset: optional `#![proptest_config(...)]`, then `#[test]` functions
/// whose arguments are `name in strategy` pairs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.effective_cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let __inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}: {}\ninputs: {}",
                        stringify!($name),
                        case,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y = {}", y);
        }

        #[test]
        fn maps_and_tuples_compose(
            v in crate::collection::vec(any::<bool>(), 1..20),
            s in (0u32..5, 1u32..3).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s >= 1 && s <= 6);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
