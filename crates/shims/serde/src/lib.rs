//! Offline stand-in for the real `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so external dependencies are replaced by minimal in-tree shims (see
//! `crates/shims/README.md`). Workspace code only uses serde for
//! `#[derive(Serialize, Deserialize)]` markers — nothing serializes
//! through serde's data model (JSON emission is hand-rolled in
//! `phloem-bench`) — so the traits here are empty and the derives expand
//! to inert impls. Swapping back to real serde is a one-line change in
//! the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// No-op stand-in for `serde::Serialize`.
pub trait Serialize {}

/// No-op stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// No-op stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
