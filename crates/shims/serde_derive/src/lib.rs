//! No-op `#[derive(Serialize, Deserialize)]` macros for the offline
//! serde shim. Each derive emits an inert trait impl for the annotated
//! type (handling generic parameters conservatively via a blanket-free
//! textual expansion), so code written against real serde keeps
//! compiling unchanged.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following `struct`/`enum` and a best-effort
/// list of generic parameter idents (lifetimes and types; bounds and
/// defaults are ignored since the emitted impls carry no obligations).
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next()? {
                    TokenTree::Ident(n) => n.to_string(),
                    _ => return None,
                };
                // Collect generic parameter names from `<...>` if present.
                let mut generics = Vec::new();
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    iter.next();
                    let mut depth = 1usize;
                    let mut expect_param = true;
                    while let Some(tt) = iter.next() {
                        match tt {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                expect_param = true;
                            }
                            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                                if expect_param {
                                    if let Some(TokenTree::Ident(n)) = iter.next() {
                                        generics.push(format!("'{n}"));
                                        expect_param = false;
                                    }
                                }
                            }
                            TokenTree::Ident(n) if depth == 1 && expect_param => {
                                let s = n.to_string();
                                if s == "const" {
                                    continue; // const generics: keep the next ident
                                }
                                generics.push(s);
                                expect_param = false;
                            }
                            _ => {}
                        }
                    }
                }
                return Some((name, generics));
            }
        }
    }
    None
}

fn impl_for(trait_path: &str, input: TokenStream, with_lifetime: bool) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let mut impl_params: Vec<String> = Vec::new();
    if with_lifetime {
        impl_params.push("'de".to_string());
    }
    impl_params.extend(generics.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    let lifetime_arg = if with_lifetime { "<'de>" } else { "" };
    format!("impl{impl_generics} {trait_path}{lifetime_arg} for {name}{ty_generics} {{}}")
        .parse()
        .unwrap_or_default()
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::Serialize", input, false)
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::Deserialize", input, true)
}
