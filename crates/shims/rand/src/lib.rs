//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workload
//! generators run on this deterministic, dependency-free PRNG instead:
//! `StdRng` is xoshiro256** seeded via splitmix64, which matches rand's
//! `SeedableRng::seed_from_u64` construction discipline (stable across
//! platforms and releases — unlike the real `StdRng`, whose algorithm is
//! explicitly unstable). Synthetic inputs therefore stay reproducible
//! forever, which the golden-cycle regression tests rely on.
//!
//! Implemented surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer/float ranges.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the full output of a generator ("standard"
/// distribution in rand terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Marker for types with a uniform sampler (mirrors rand 0.8; the
/// bound on [`Rng::gen_range`] is what lets return-type inference
/// resolve integer literals the same way the real crate does).
pub trait SampleUniform {}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// Ranges that can be sampled uniformly, producing `T` (mirrors rand
/// 0.8's `SampleRange<T>` so return-type inference drives literal
/// typing the same way).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator interface (rand 0.8 subset).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stable stand-in for rand's
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = a.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = a.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
