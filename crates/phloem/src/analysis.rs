//! The static cost model that ranks candidate decoupling points (Sec. V).
//!
//! Phloem prioritizes loads by (1) predicted cost — indirect accesses are
//! expensive, sequential ones are prefetchable, and an access adjacent to
//! another access of the same array is almost surely a hit and should be
//! *grouped* with it rather than decoupled — and (2) frequency, weighting
//! loads in deeper loops more heavily.

use crate::normalize::normalize;
use phloem_ir::{ArrayId, Expr, Function, LoadId, Stmt, VarId};
use std::collections::{HashMap, HashSet};

/// How a load's address behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Index is data-dependent (derived from another load): expensive.
    Indirect,
    /// Index is affine in an *irregular* loop's variable (data-dependent
    /// trip count): streaming over data-dependent ranges.
    Sequential,
    /// Index is affine in a *regular* (dense, statically counted) loop's
    /// variable. Conventional cores handle these well; they are never
    /// decoupling candidates — Phloem decouples across sources of
    /// irregularity only.
    Dense,
    /// Index derives only from parameters/constants: cheap.
    Cheap,
}

/// Facts about one static load site.
#[derive(Clone, Debug)]
pub struct LoadInfo {
    /// The load site.
    pub id: LoadId,
    /// Array accessed.
    pub array: ArrayId,
    /// Preorder position among atoms (defines pipeline order).
    pub pos: usize,
    /// Loop nesting depth.
    pub depth: u32,
    /// Address behaviour.
    pub kind: AccessKind,
    /// True if another load of the same array at a nearby offset
    /// precedes this one (grouped with it; never a cut candidate).
    pub adjacent_secondary: bool,
    /// The first load of this load's adjacency group, when secondary.
    pub adjacent_primary: Option<LoadId>,
    /// True if the accessed array is also written by the function.
    pub array_written: bool,
    /// Cost-model score (higher = better decoupling point).
    pub score: f64,
}

/// Result of the static analysis.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// All load sites in preorder.
    pub loads: Vec<LoadInfo>,
    /// Arrays written by stores or atomics.
    pub written_arrays: HashSet<ArrayId>,
}

impl Analysis {
    /// Candidate decoupling points, best first. Adjacent-secondary loads
    /// are excluded (they are grouped with their primary).
    pub fn candidates(&self) -> Vec<LoadId> {
        let mut c: Vec<&LoadInfo> = self
            .loads
            .iter()
            .filter(|l| !l.adjacent_secondary && l.kind != AccessKind::Dense)
            .collect();
        c.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        c.into_iter().map(|l| l.id).collect()
    }

    /// Info for one load id.
    pub fn load(&self, id: LoadId) -> Option<&LoadInfo> {
        self.loads.iter().find(|l| l.id == id)
    }
}

#[derive(Clone, Copy, Debug)]
struct Sym {
    root: VarId,
    off: i64,
    tainted: bool,
    /// Loop variable this value is linear in (e.g. `t*m + col` is
    /// linear in `t`), independent of taint.
    lin: Option<VarId>,
}

struct Walker {
    syms: HashMap<VarId, Sym>,
    /// Active loops: (induction var, irregular trip count?).
    loop_vars: Vec<(VarId, bool)>,
    pos: usize,
    loads: Vec<LoadInfo>,
    written: HashSet<ArrayId>,
    /// (array, root, off, load) of previously seen loads, for adjacency.
    seen: Vec<(ArrayId, VarId, i64, LoadId)>,
    /// Secondary -> group primary.
    primaries: HashMap<LoadId, LoadId>,
}

const FREQ_WEIGHT: f64 = 10.0;

impl Walker {
    fn sym_of_leaf(&self, e: &Expr) -> Option<Sym> {
        match e {
            Expr::Var(v) => Some(self.syms.get(v).copied().unwrap_or(Sym {
                root: *v,
                off: 0,
                tainted: false,
                lin: None,
            })),
            _ => None,
        }
    }

    fn leaf_tainted(&self, e: &Expr) -> bool {
        self.sym_of_leaf(e).map(|s| s.tainted).unwrap_or(false)
    }

    fn record_load(&mut self, id: LoadId, array: ArrayId, index: &Expr, depth: u32) {
        let sym = self.sym_of_leaf(index);
        let loop_of = |v: VarId| self.loop_vars.iter().rev().find(|(lv, _)| *lv == v);
        let kind = match sym {
            Some(s) => {
                let linear_loop = loop_of(s.root).or_else(|| s.lin.and_then(&loop_of));
                match linear_loop {
                    Some((_, irregular)) => {
                        if *irregular {
                            AccessKind::Sequential
                        } else {
                            AccessKind::Dense
                        }
                    }
                    None if s.tainted => AccessKind::Indirect,
                    None => AccessKind::Cheap,
                }
            }
            None => AccessKind::Cheap, // constant index
        };
        let adjacent_primary = sym.and_then(|s| {
            self.seen
                .iter()
                .find(|&&(a, r, o, _)| a == array && r == s.root && (o - s.off).abs() <= 2)
                .map(|&(_, _, _, l)| self.primaries.get(&l).copied().unwrap_or(l))
        });
        let adjacent_secondary = adjacent_primary.is_some();
        if let Some(p) = adjacent_primary {
            self.primaries.insert(id, p);
        }
        if let Some(s) = sym {
            self.seen.push((array, s.root, s.off, id));
        }
        let base = match kind {
            AccessKind::Indirect => 8.0,
            AccessKind::Sequential => 2.0,
            AccessKind::Dense => 0.1,
            AccessKind::Cheap => 0.5,
        };
        let adj_factor = if adjacent_secondary { 0.05 } else { 1.0 };
        let score = base * FREQ_WEIGHT.powi(depth as i32) * adj_factor;
        self.loads.push(LoadInfo {
            id,
            array,
            pos: self.pos,
            depth,
            kind,
            adjacent_secondary,
            adjacent_primary,
            array_written: false, // filled at the end
            score,
        });
    }

    fn walk(&mut self, body: &[Stmt], depth: u32) {
        for s in body {
            self.pos += 1;
            match s {
                Stmt::Assign { var, expr } => {
                    match expr {
                        Expr::Load { id, array, index } => {
                            self.record_load(*id, *array, index, depth);
                            self.syms.insert(
                                *var,
                                Sym {
                                    root: *var,
                                    off: 0,
                                    tainted: true,
                                    lin: None,
                                },
                            );
                        }
                        Expr::Var(src) => {
                            let s = self.syms.get(src).copied().unwrap_or(Sym {
                                root: *src,
                                off: 0,
                                tainted: false,
                                lin: None,
                            });
                            self.syms.insert(*var, s);
                        }
                        Expr::Binary(phloem_ir::BinOp::Add, a, b) => {
                            // var = v + c or c + v keeps the symbolic base;
                            // var = p + q propagates loop-linearity.
                            let sym = match (&**a, &**b) {
                                (Expr::Var(_), Expr::Const(c)) => {
                                    self.sym_of_leaf(a).zip(c.as_i64().ok()).map(|(s, k)| Sym {
                                        root: s.root,
                                        off: s.off + k,
                                        tainted: s.tainted,
                                        lin: s.lin,
                                    })
                                }
                                (Expr::Const(c), Expr::Var(_)) => {
                                    self.sym_of_leaf(b).zip(c.as_i64().ok()).map(|(s, k)| Sym {
                                        root: s.root,
                                        off: s.off + k,
                                        tainted: s.tainted,
                                        lin: s.lin,
                                    })
                                }
                                _ => None,
                            };
                            let sa = self.sym_of_leaf(a);
                            let sb = self.sym_of_leaf(b);
                            let tainted = self.leaf_tainted(a) || self.leaf_tainted(b);
                            let is_active =
                                |v: VarId| self.loop_vars.iter().any(|(lv, _)| *lv == v);
                            let lin = sym.and_then(|s| s.lin).or_else(|| {
                                [sa, sb].into_iter().flatten().find_map(|s| {
                                    s.lin.or_else(|| is_active(s.root).then_some(s.root))
                                })
                            });
                            self.syms.insert(
                                *var,
                                sym.map(|s| Sym { lin, ..s }).unwrap_or(Sym {
                                    root: *var,
                                    off: 0,
                                    tainted,
                                    lin,
                                }),
                            );
                        }
                        Expr::Binary(phloem_ir::BinOp::Mul, a, b) => {
                            // var = t * s is linear in t when s is
                            // loop-invariant data (untainted).
                            let sa = self.sym_of_leaf(a);
                            let sb = self.sym_of_leaf(b);
                            let is_active =
                                |v: VarId| self.loop_vars.iter().any(|(lv, _)| *lv == v);
                            let lin_of = |s: Option<Sym>| {
                                s.and_then(|s| {
                                    s.lin.or_else(|| is_active(s.root).then_some(s.root))
                                })
                            };
                            let a_taint = sa.map(|s| s.tainted).unwrap_or(false);
                            let b_taint = sb.map(|s| s.tainted).unwrap_or(false);
                            let lin = if !b_taint {
                                lin_of(sa)
                            } else if !a_taint {
                                lin_of(sb)
                            } else {
                                None
                            };
                            self.syms.insert(
                                *var,
                                Sym {
                                    root: *var,
                                    off: 0,
                                    tainted: a_taint || b_taint,
                                    lin,
                                },
                            );
                        }
                        _ => {
                            let mut vars = Vec::new();
                            expr.collect_vars(&mut vars);
                            let tainted = vars
                                .iter()
                                .any(|v| self.syms.get(v).map(|s| s.tainted).unwrap_or(false));
                            self.syms.insert(
                                *var,
                                Sym {
                                    root: *var,
                                    off: 0,
                                    tainted,
                                    lin: None,
                                },
                            );
                        }
                    }
                }
                Stmt::Store { array, .. } | Stmt::AtomicRmw { array, .. } => {
                    self.written.insert(*array);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.walk(then_body, depth);
                    self.walk(else_body, depth);
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                    ..
                } => {
                    // A loop is *irregular* when its trip count is
                    // data-dependent (bounds derived from loads).
                    let irregular = self.leaf_tainted(start) || self.leaf_tainted(end);
                    self.syms.insert(
                        *var,
                        Sym {
                            root: *var,
                            off: 0,
                            tainted: false,
                            lin: Some(*var),
                        },
                    );
                    self.loop_vars.push((*var, irregular));
                    self.walk(body, depth + 1);
                    self.loop_vars.pop();
                }
                Stmt::While { body, .. } => {
                    self.walk(body, depth + 1);
                }
                Stmt::Deq { var, .. } => {
                    self.syms.insert(
                        *var,
                        Sym {
                            root: *var,
                            off: 0,
                            tainted: true,
                            lin: None,
                        },
                    );
                }
                _ => {}
            }
        }
    }
}

/// Analyzes a function (normalizing it first).
pub fn analyze(func: &Function) -> Analysis {
    let nf = normalize(func);
    let mut w = Walker {
        syms: HashMap::new(),
        loop_vars: Vec::new(),
        pos: 0,
        loads: Vec::new(),
        written: HashSet::new(),
        seen: Vec::new(),
        primaries: HashMap::new(),
    };
    w.walk(&nf.body, 0);
    let written = w.written;
    let mut loads = w.loads;
    for l in &mut loads {
        l.array_written = written.contains(&l.array);
    }
    Analysis {
        loads,
        written_arrays: written,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{Expr, FunctionBuilder};

    /// The BFS inner kernel's load structure:
    /// n=flen[0]; for i in 0..n { v=fringe[i]; s=nodes[v]; e=nodes[v+1];
    ///   for j in s..e { ngh=edges[j]; od=dist[ngh];
    ///     if od>cd { dist[ngh]=cd; nf[len]=ngh; len++ } } }
    fn bfs_like() -> Function {
        let mut b = FunctionBuilder::new("bfs_round");
        let cd = b.param_i64("cur_dist");
        let fringe = b.array_i32("fringe");
        let nodes = b.array_i32("nodes");
        let edges = b.array_i32("edges");
        let dist = b.array_i32("dist");
        let nf = b.array_i32("next_fringe");
        let nf_len_arr = b.array_i32("nf_len");
        let flen = b.array_i32("flen");
        let n = b.var_i64("n");
        let i = b.var_i64("i");
        let v = b.var_i64("v");
        let s = b.var_i64("s");
        let e = b.var_i64("e");
        let j = b.var_i64("j");
        let ngh = b.var_i64("ngh");
        let od = b.var_i64("od");
        let len = b.var_i64("len");
        let ll = b.load(flen, Expr::i64(0));
        b.assign(n, ll);
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let lv = f.load(fringe, Expr::var(i));
            f.assign(v, lv);
            let ls = f.load(nodes, Expr::var(v));
            f.assign(s, ls);
            let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
            f.assign(e, le);
            f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
                let ln = f.load(edges, Expr::var(j));
                f.assign(ngh, ln);
                let lo = f.load(dist, Expr::var(ngh));
                f.assign(od, lo);
                f.if_then(
                    Expr::bin(phloem_ir::BinOp::Gt, Expr::var(od), Expr::var(cd)),
                    |f| {
                        f.store(dist, Expr::var(ngh), Expr::var(cd));
                        f.store(nf, Expr::var(len), Expr::var(ngh));
                        f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                    },
                );
            });
        });
        b.store(nf_len_arr, Expr::i64(0), Expr::var(len));
        let _ = cd;
        b.build()
    }

    #[test]
    fn bfs_load_classification() {
        let a = analyze(&bfs_like());
        assert_eq!(a.loads.len(), 6);
        // flen[0]: cheap; fringe[i]: sequential over a data-dependent
        // trip count; nodes[v]: indirect; nodes[v+1]: adjacent; edges[j]:
        // sequential; dist[ngh]: indirect + written.
        assert_eq!(a.loads[0].kind, AccessKind::Cheap);
        assert_eq!(a.loads[1].kind, AccessKind::Sequential);
        assert_eq!(a.loads[2].kind, AccessKind::Indirect);
        assert!(
            a.loads[3].adjacent_secondary,
            "nodes[v+1] pairs with nodes[v]"
        );
        assert_eq!(a.loads[4].kind, AccessKind::Sequential);
        assert_eq!(a.loads[4].depth, 2);
        assert_eq!(a.loads[5].kind, AccessKind::Indirect);
        assert!(a.loads[5].array_written);
    }

    #[test]
    fn dense_loops_are_not_decoupling_candidates() {
        // y[i] += a * x[i] over a statically counted loop: both streams
        // are dense -> no candidates (Phloem decouples irregularity only).
        let mut b = FunctionBuilder::new("saxpy");
        let n = b.param_i64("n");
        let x = b.array_f64("x");
        let y = b.array_f64("y");
        let i = b.var_i64("i");
        let t = b.var_f64("t");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let lx = f.load(x, Expr::var(i));
            let ly = f.load(y, Expr::var(i));
            f.assign(t, Expr::add(ly, lx));
            f.store(y, Expr::var(i), Expr::var(t));
        });
        let a = analyze(&b.build());
        assert!(a.loads.iter().all(|l| l.kind == AccessKind::Dense));
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn bfs_candidate_ranking_matches_paper() {
        // "the access to g->edges is considered even more costly than
        //  to g->nodes" — and dist (indirect, innermost) tops the list.
        let a = analyze(&bfs_like());
        let c = a.candidates();
        let dist = a.loads[5].id;
        let edges = a.loads[4].id;
        let nodes = a.loads[2].id;
        let fringe = a.loads[1].id;
        assert_eq!(c[0], dist);
        assert_eq!(c[1], edges);
        assert_eq!(c[2], nodes);
        assert!(c.contains(&fringe));
        // The adjacent second nodes load is not a candidate; flen is cheap
        // but still listed after the irregular ones.
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn written_arrays_detected() {
        let a = analyze(&bfs_like());
        assert_eq!(a.written_arrays.len(), 3); // dist, next_fringe, nf_len
        assert!(a.loads.iter().filter(|l| l.array_written).count() >= 1);
    }
}
