//! Pipeline replication and data-centric work distribution
//! (`#pragma replicate` / `#pragma distribute`, Sec. IV-C, Fig. 7).
//!
//! [`replicate`] clones a pipeline R times, one replica per core, with
//! private queues. For queues crossing the *distribute boundary*, every
//! replica's producer routes each value to the replica selected by the
//! value itself (`value % R`, "inspecting bits in the neighbor id"),
//! turning the pipeline's tail into a destination-centric section.
//! End-of-stream control values are broadcast to all replicas, and each
//! consumer waits for one `DONE` per replica before finishing.
//!
//! Input partitioning: the first top-level loop of stage 0 in replica
//! `r` iterates over its `1/R` slice (the `replicate_arguments()` role
//! from the paper, for index-partitioned inputs).

use crate::options::CompileError;
use phloem_ir::{
    BinOp, Expr, HandlerEnd, Pipeline, QueueId, Stage, StageKind, Stmt, Ty, VarDecl, VarId,
};

/// Replication parameters.
#[derive(Clone, Debug)]
pub struct ReplicateSpec {
    /// Number of pipeline replicas (one per core).
    pub replicas: usize,
    /// Queues whose traffic is distributed across replicas by value.
    pub distribute: Vec<QueueId>,
    /// Partition the first top-level counted loop of each replica's
    /// first compute stage across replicas.
    pub partition_input: bool,
}

fn remap_queue(q: QueueId, r: usize, stride: u16) -> QueueId {
    QueueId(q.0 + (r as u16) * stride)
}

fn remap_stmts(stmts: &mut [Stmt], r: usize, stride: u16) {
    for s in stmts {
        match s {
            Stmt::Enq { queue, .. } | Stmt::EnqCtrl { queue, .. } | Stmt::Deq { queue, .. } => {
                *queue = remap_queue(*queue, r, stride);
            }
            Stmt::EnqSel { queues, .. } => {
                for q in queues {
                    *q = remap_queue(*q, r, stride);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                remap_stmts(then_body, r, stride);
                remap_stmts(else_body, r, stride);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => remap_stmts(body, r, stride),
            _ => {}
        }
    }
}

/// Rewrites enqueues to distributed queues into replica-selecting
/// enqueues (data values) or broadcasts (control values).
fn distribute_stmts(stmts: &mut Vec<Stmt>, base: QueueId, all: &[QueueId]) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Enq { queue, value } if *queue == base => {
                let value = value.clone();
                stmts[i] = Stmt::EnqSel {
                    queues: all.to_vec(),
                    select: value.clone(),
                    value,
                };
            }
            Stmt::EnqCtrl { queue, ctrl } if *queue == base => {
                let ctrl = *ctrl;
                let bcast: Vec<Stmt> = all
                    .iter()
                    .map(|q| Stmt::EnqCtrl { queue: *q, ctrl })
                    .collect();
                let n = bcast.len();
                stmts.splice(i..i + 1, bcast);
                i += n;
                continue;
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                distribute_stmts(then_body, base, all);
                distribute_stmts(else_body, base, all);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                distribute_stmts(body, base, all);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Partitions the first top-level counted loop: `for i in 0..e` becomes
/// `for i in e*r/R .. e*(r+1)/R`.
pub(crate) fn partition_top_loop(func: &mut phloem_ir::Function, r: usize, reps: usize) {
    let lo = VarId(func.vars.len() as u32);
    func.vars.push(VarDecl {
        name: "_rlo".into(),
        ty: Ty::I64,
    });
    let hi = VarId(func.vars.len() as u32);
    func.vars.push(VarDecl {
        name: "_rhi".into(),
        ty: Ty::I64,
    });
    let mut new_body = Vec::new();
    let mut done = false;
    for s in func.body.drain(..) {
        match s {
            Stmt::For {
                id,
                var,
                start,
                end,
                body,
            } if !done && matches!(start, Expr::Const(_)) => {
                done = true;
                new_body.push(Stmt::Assign {
                    var: lo,
                    expr: Expr::bin(
                        BinOp::Div,
                        Expr::mul(end.clone(), Expr::i64(r as i64)),
                        Expr::i64(reps as i64),
                    ),
                });
                new_body.push(Stmt::Assign {
                    var: hi,
                    expr: Expr::bin(
                        BinOp::Div,
                        Expr::mul(end, Expr::i64(r as i64 + 1)),
                        Expr::i64(reps as i64),
                    ),
                });
                new_body.push(Stmt::For {
                    id,
                    var,
                    start: Expr::var(lo),
                    end: Expr::var(hi),
                    body,
                });
            }
            other => new_body.push(other),
        }
    }
    func.body = new_body;
}

/// Replicates a pipeline per [`ReplicateSpec`]. Replica `r` is placed on
/// core `r` (plus the template's own core offsets).
///
/// # Errors
/// Fails if a distributed queue's consumer uses inline control-value
/// checks (replication requires handler-mode pipelines), or if a
/// consumer expects per-group `NEXT` CVs across the distribute boundary.
pub fn replicate(template: &Pipeline, spec: &ReplicateSpec) -> Result<Pipeline, CompileError> {
    let reps = spec.replicas.max(1);
    let stride = template.num_queues;
    let mut out = Pipeline::new(format!("{}-x{}", template.name, reps));

    // Sanity: distributed queues must carry flat streams (handlers on
    // them may only be DONE handlers), and every consumer of one must be
    // stream-terminated — distribution changes each replica's item
    // count, so counted consumer loops would deadlock or drop items.
    for st in &template.stages {
        for h in &st.program.handlers {
            if spec.distribute.contains(&h.queue) && h.ctrl != Some(0) {
                return Err(CompileError::Unsupported(
                    "per-group control values cannot cross a distribute boundary".into(),
                ));
            }
        }
        for q in &spec.distribute {
            if stage_deqs(st, *q)
                && !st
                    .program
                    .handlers
                    .iter()
                    .any(|h| h.queue == *q && h.ctrl == Some(0))
            {
                return Err(CompileError::Unsupported(format!(
                    "stage `{}` consumes distributed queue {} without DONE                      termination; compile with PassConfig::all_streaming()                      (stream_consumers) so consumers are CV-terminated",
                    st.program.func.name, q.0
                )));
            }
        }
    }

    for r in 0..reps {
        for (si, st) in template.stages.iter().enumerate() {
            let mut stage = st.clone();
            stage.core = st.core + r;
            stage.program.func.name = format!("{}@r{r}", st.program.func.name);
            // Remap queue ids to this replica's space.
            remap_stmts(&mut stage.program.func.body, r, stride);
            for h in &mut stage.program.handlers {
                h.queue = remap_queue(h.queue, r, stride);
                remap_stmts(&mut h.body, r, stride);
            }
            if let StageKind::Ra(cfg) = &mut stage.kind {
                cfg.in_queue = remap_queue(cfg.in_queue, r, stride);
                cfg.out_queue = remap_queue(cfg.out_queue, r, stride);
                // Regenerate the RA program with remapped queues.
                stage.program =
                    phloem_ir::pipeline::ra_stage_program(cfg, &stage.program.func.arrays);
                stage.program.func.name = format!("{}@r{r}", st.program.func.name);
            }
            // Distribution: producers of distributed queues route by value.
            for q in &spec.distribute {
                let local = remap_queue(*q, r, stride);
                let all: Vec<QueueId> = (0..reps).map(|k| remap_queue(*q, k, stride)).collect();
                if matches!(stage.kind, StageKind::Ra(_)) {
                    // RAs cannot route; the compiler keeps distribute
                    // boundaries on compute stages.
                    let writes = stage.program.func.queues_used().contains(&local);
                    let is_out = match &stage.kind {
                        StageKind::Ra(cfg) => cfg.out_queue == local,
                        _ => false,
                    };
                    if writes && is_out {
                        return Err(CompileError::Unsupported(
                            "distribute boundary fed by a reference accelerator; \
                             keep the producer a compute stage"
                                .into(),
                        ));
                    }
                    continue;
                }
                distribute_stmts(&mut stage.program.func.body, local, &all);
                for h in &mut stage.program.handlers {
                    distribute_stmts(&mut h.body, local, &all);
                }
            }
            // Consumers of distributed queues count one DONE per replica.
            let consumes_distributed = spec.distribute.iter().any(|q| {
                let local = remap_queue(*q, r, stride);
                stage_deqs(&stage, local)
            });
            if consumes_distributed && reps > 1 {
                let cnt = VarId(stage.program.func.vars.len() as u32);
                stage.program.func.vars.push(VarDecl {
                    name: "_dones".into(),
                    ty: Ty::I64,
                });
                for h in &mut stage.program.handlers {
                    let local_dist = spec
                        .distribute
                        .iter()
                        .any(|q| remap_queue(*q, r, stride) == h.queue);
                    if local_dist && h.ctrl == Some(0) {
                        h.body.push(Stmt::Assign {
                            var: cnt,
                            expr: Expr::add(Expr::var(cnt), Expr::i64(1)),
                        });
                        h.end = match h.end {
                            HandlerEnd::BreakLoops(n) => HandlerEnd::BreakWhen(cnt, reps as i64, n),
                            HandlerEnd::FinishStage => HandlerEnd::FinishWhen(cnt, reps as i64),
                            other => other,
                        };
                    }
                }
            }
            // Input partitioning on the first compute stage.
            if spec.partition_input && si == 0 {
                partition_top_loop(&mut stage.program.func, r, reps);
            }
            out.stages.push(stage);
        }
    }
    out.num_queues = stride * reps as u16;
    phloem_ir::validate_pipeline(&out, &phloem_ir::ValidateLimits::default(), "replicate")
        .map_err(CompileError::InvalidPipeline)?;
    Ok(out)
}

fn stage_deqs(stage: &Stage, q: QueueId) -> bool {
    let mut found = false;
    for s in &stage.program.func.body {
        s.for_each(&mut |s| {
            if let Stmt::Deq { queue, .. } = s {
                if *queue == q {
                    found = true;
                }
            }
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, FunctionBuilder, MemState, StageProgram, Value};

    /// Producer counts 0..n, distributing by value; each replica's
    /// consumer sums its share into out[replica].
    fn template() -> Pipeline {
        let q = QueueId(0);
        let mut p = Pipeline::new("sumdist");
        let mut s0 = FunctionBuilder::new("produce");
        let n = s0.param_i64("n");
        let src = s0.array_i64("src");
        let _ = s0.array_i64("out");
        let i = s0.var_i64("i");
        s0.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let l = f.load(src, Expr::var(i));
            f.enq(q, l);
        });
        s0.enq_ctrl(q, 0);
        p.add_stage(StageProgram::plain(s0.build()), 0);

        let mut s1 = FunctionBuilder::new("consume");
        let _ = s1.param_i64("n");
        let _ = s1.array_i64("src");
        let out = s1.array_i64("out");
        let rid = s1.param_i64("rid");
        let x = s1.var_i64("x");
        let sum = s1.var_i64("sum");
        s1.while_true(|f| {
            f.deq(x, q);
            f.assign(sum, Expr::add(Expr::var(sum), Expr::var(x)));
        });
        s1.store(out, Expr::var(rid), Expr::var(sum));
        let handlers = vec![phloem_ir::CtrlHandler {
            queue: q,
            ctrl: Some(0),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        }];
        p.add_stage(
            StageProgram {
                func: s1.build(),
                handlers,
            },
            0,
        );
        p
    }

    #[test]
    fn replication_distributes_and_terminates() {
        let t = template();
        let spec = ReplicateSpec {
            replicas: 2,
            distribute: vec![QueueId(0)],
            partition_input: true,
        };
        let p = replicate(&t, &spec).unwrap();
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.cores_used(), 2);
        // `rid` differs per replica: bind_params gives the same value to
        // all stages, so patch each consumer replica's param via a
        // distinct constant store instead.
        let mut mem = MemState::new();
        mem.alloc_i64(ArrayDecl::i64("src"), 0..10);
        let out = mem.alloc(ArrayDecl::i64("out"), 2);
        // Patch: replica r's consumer writes out[r]: rewrite the store
        // index to a constant.
        let mut p2 = p.clone();
        let mut r = 0;
        for st in &mut p2.stages {
            if st.program.func.name.starts_with("consume") {
                for s in &mut st.program.func.body {
                    if let Stmt::Store { index, .. } = s {
                        *index = Expr::i64(r);
                    }
                }
                r += 1;
            }
        }
        let run = interp::run_pipeline(&p2, mem, &[("n", Value::I64(10))], 8).unwrap();
        let sums = run.mem.i64_vec(out);
        // Evens (0+2+4+6+8) to replica 0, odds (1+3+5+7+9) to replica 1.
        assert_eq!(sums, vec![20, 25]);
    }

    #[test]
    fn ra_fed_distribution_is_rejected() {
        // A template whose distributed queue is produced by an RA.
        let arrays = vec![ArrayDecl::i64("base")];
        let mut p = Pipeline::new("bad");
        p.add_ra(
            phloem_ir::RaConfig {
                name: "r".into(),
                mode: phloem_ir::RaMode::Indirect,
                base: phloem_ir::ArrayId(0),
                in_queue: QueueId(1),
                out_queue: QueueId(0),
                forward_ctrl: true,
                scan_end_ctrl: None,
            },
            &arrays,
            0,
        );
        let spec = ReplicateSpec {
            replicas: 2,
            distribute: vec![QueueId(0)],
            partition_input: false,
        };
        assert!(replicate(&p, &spec).is_err());
    }
}
