//! Profile-guided pipeline search (Sec. V, Fig. 8).
//!
//! The static cost model's ranking is approximate — cache misses and
//! loop lengths are input-dependent. In PGO mode, Phloem selects more
//! than N-1 candidate decoupling points from the highest-ranked ones,
//! builds candidate pipelines from *combinations* of those points
//! ("no fewer than fifty different pipelines for each benchmark"),
//! profiles each on small training inputs, and keeps the best.
//!
//! Profiling is delegated to a caller-supplied closure (each benchmark
//! has its own host driver); candidates are profiled in parallel on the
//! shared work-stealing fleet ([`phloem_pool`]), which keeps every host
//! core busy when candidate costs are uneven and lands results in a
//! pre-sized index-keyed partition, so the report is bit-identical at
//! every worker count.
//!
//! ## Robustness contract
//!
//! A single broken candidate must not sink the search: the profile
//! closure receives a per-candidate [`ProfileBudget`] (a simulated-cycle
//! cap it should hand to the simulator's watchdog), every candidate
//! records a [`ProfileOutcome`] instead of a bare `Option`, a panicking
//! profile run is caught *by the pool* and recorded as
//! [`ProfileOutcome::Trapped`], and a candidate that times out gets
//! exactly one retry at [`SearchOptions::retry_cap_factor`] times the
//! budget. [`search`] itself never panics: it returns [`SearchError`]
//! when nothing enumerates or nothing profiles successfully.

use crate::{analyze, decouple_with_cuts, CompileOptions};
use phloem_ir::{Function, LoadId, Pipeline};
use phloem_pool::Pool;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Options for the profile-guided search.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Maximum *compute* stages per pipeline (the SMT thread budget).
    pub max_stages: usize,
    /// Candidate decoupling points drawn from the top of the ranking.
    pub top_k: usize,
    /// Compilation options (passes etc.).
    pub compile: CompileOptions,
    /// Worker threads used to profile candidates. Defaults to the
    /// host's available parallelism, honoring the shared
    /// `PHLOEM_WORKERS` override (see [`phloem_pool::default_workers`]).
    pub workers: usize,
    /// Per-candidate profiling budget in simulated cycles (the closure
    /// should wire it into the simulator's watchdog cycle cap).
    pub profile_cycle_cap: u64,
    /// A candidate that times out is retried once with the budget
    /// multiplied by this factor (1 disables the retry).
    pub retry_cap_factor: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_stages: 4,
            top_k: 6,
            compile: CompileOptions::default(),
            workers: phloem_pool::default_workers(),
            profile_cycle_cap: 200_000_000,
            retry_cap_factor: 4,
        }
    }
}

/// Per-candidate profiling budget handed to the profile closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileBudget {
    /// Simulated-cycle cap for this candidate's profiling run(s).
    pub cycle_cap: u64,
}

/// Outcome of profiling one candidate pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProfileOutcome {
    /// Profiled successfully: gmean training cycles (lower is better).
    Ok(f64),
    /// The run raised a trap (or the profile closure panicked).
    Trapped(String),
    /// The run exceeded its cycle budget (watchdog cap or livelock
    /// window), including the enlarged retry budget.
    TimedOut,
}

impl ProfileOutcome {
    /// The training cycles if profiling succeeded.
    pub fn cycles(&self) -> Option<f64> {
        match self {
            ProfileOutcome::Ok(c) => Some(*c),
            _ => None,
        }
    }
}

/// Where a candidate's cycles went during profiling, as reported by a
/// tracing profile closure (see [`search_profiled`]). Plain data so the
/// search layer stays simulator-agnostic: the benchmark drivers build it
/// from `pipette_sim`'s metrics aggregator.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CandidateProfile {
    /// Name of the compute stage whose finish time bounds the makespan
    /// (the stage a tuner should attack first).
    pub critical_stage: String,
    /// Per-stage `(name, utilization)` with utilization in `[0, 1]`,
    /// in pipeline order (RA stages included).
    pub stage_utilization: Vec<(String, f64)>,
    /// Dominant stall class across all stages (e.g. `queue-full`,
    /// `queue-empty`, `backend`, `frontend`).
    pub dominant_stall: String,
}

/// One profiled candidate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Candidate {
    /// The cut loads defining the pipeline.
    pub cuts: Vec<LoadId>,
    /// Total stage count *including* reference accelerators (the metric
    /// of Fig. 13).
    pub total_stages: usize,
    /// Compute stages only.
    pub compute_stages: usize,
    /// How profiling ended for this candidate.
    pub outcome: ProfileOutcome,
    /// Cycle-attribution report, when the profile closure produced one
    /// (only [`search_profiled`] closures can; plain [`search`] leaves
    /// it `None`).
    pub profile: Option<CandidateProfile>,
}

impl Candidate {
    /// Gmean training cycles; `None` unless profiling succeeded.
    pub fn train_cycles(&self) -> Option<f64> {
        self.outcome.cycles()
    }
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// All candidates (compiled ones), with profile results.
    pub candidates: Vec<Candidate>,
    /// Index of the best candidate in `candidates`.
    pub best: usize,
    /// The best pipeline, recompiled.
    pub pipeline: Pipeline,
}

/// Why a search produced no result.
#[derive(Clone, Debug)]
pub enum SearchError {
    /// No combination of candidate points compiled to a legal pipeline.
    NoPipelines,
    /// Every enumerated candidate trapped or timed out while profiling;
    /// the per-candidate outcomes are preserved for diagnostics.
    NoViableCandidate {
        /// The profiled candidates with their failure outcomes.
        candidates: Vec<Candidate>,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::NoPipelines => write!(f, "no candidate pipeline compiles"),
            SearchError::NoViableCandidate { candidates } => write!(
                f,
                "all {} candidates failed to profile (first: {:?})",
                candidates.len(),
                candidates.first().map(|c| &c.outcome)
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Enumerates all legal pipelines from combinations of the top-k
/// candidate points (sizes 1 ..= max_stages-1). Returns `(cuts,
/// pipeline)` pairs for the combinations that compile.
pub fn enumerate_pipelines(func: &Function, opts: &SearchOptions) -> Vec<(Vec<LoadId>, Pipeline)> {
    let a = analyze(func);
    let cand: Vec<LoadId> = a.candidates().into_iter().take(opts.top_k).collect();
    let mut out = Vec::new();
    let n = cand.len();
    // All non-empty subsets of the candidate pool, capped by stage budget.
    for mask in 1u32..(1 << n) {
        let cuts: Vec<LoadId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| cand[i])
            .collect();
        if cuts.len() > opts.max_stages.saturating_sub(1) {
            continue;
        }
        if let Ok(p) = decouple_with_cuts(func, &cuts, &opts.compile) {
            out.push((cuts, p));
        }
    }
    out
}

/// Runs the profile-guided search. `profile` runs one candidate
/// (identified by its cuts and compiled pipeline) on the training inputs
/// under the given budget and reports how it went; candidates that time
/// out at the base budget get one retry at an enlarged budget.
///
/// # Errors
/// [`SearchError::NoPipelines`] when nothing enumerates;
/// [`SearchError::NoViableCandidate`] when every candidate traps or
/// times out (the report-shaped outcomes are preserved inside the
/// error). This function never panics on profiling failures.
pub fn search(
    func: &Function,
    opts: &SearchOptions,
    profile: impl Fn(&[LoadId], &Pipeline, &ProfileBudget) -> ProfileOutcome + Sync,
) -> Result<SearchReport, SearchError> {
    search_profiled(func, opts, |cuts, p, b| (profile(cuts, p, b), None))
}

/// Like [`search`], with a profile closure that also returns a
/// per-candidate [`CandidateProfile`] (typically built from a tracing
/// metrics aggregator run on one training input). The report's
/// candidates carry the profiles, so callers can explain *why* the
/// winner won — which stage is critical and what the losers stalled on.
///
/// # Errors
/// See [`search`].
pub fn search_profiled(
    func: &Function,
    opts: &SearchOptions,
    profile: impl Fn(&[LoadId], &Pipeline, &ProfileBudget) -> (ProfileOutcome, Option<CandidateProfile>)
        + Sync,
) -> Result<SearchReport, SearchError> {
    let pipelines = enumerate_pipelines(func, opts);
    if pipelines.is_empty() {
        return Err(SearchError::NoPipelines);
    }
    let base = ProfileBudget {
        cycle_cap: opts.profile_cycle_cap,
    };
    let retry = ProfileBudget {
        cycle_cap: opts
            .profile_cycle_cap
            .saturating_mul(opts.retry_cap_factor.max(1)),
    };
    // The fleet keys results by candidate index into a pre-sized
    // partition, so the report below is independent of how the
    // candidates interleave across workers; a candidate whose profiling
    // panics is isolated by the pool and recorded as `Trapped`.
    let results = Pool::new(opts.workers).map(&pipelines, |_i, (cuts, p)| {
        let mut outcome = profile(cuts, p, &base);
        if outcome.0 == ProfileOutcome::TimedOut && retry.cycle_cap > base.cycle_cap {
            // One bounded retry: distinguishes "slow candidate" from
            // "diverging candidate" without letting either hang a worker.
            outcome = profile(cuts, p, &retry);
        }
        outcome
    });

    let mut candidates = Vec::with_capacity(pipelines.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, ((cuts, p), slot)) in pipelines.iter().zip(results).enumerate() {
        let (outcome, profile) = match slot {
            Ok(outcome) => outcome,
            Err(panic) => (
                ProfileOutcome::Trapped(format!("profiling panicked: {}", panic.message)),
                None,
            ),
        };
        if let ProfileOutcome::Ok(c) = outcome {
            if best.map(|(_, b)| c < b).unwrap_or(true) {
                best = Some((i, c));
            }
        }
        candidates.push(Candidate {
            cuts: cuts.clone(),
            total_stages: p.total_stages(),
            compute_stages: p.compute_stages(),
            outcome,
            profile,
        });
    }
    let Some((best, _)) = best else {
        return Err(SearchError::NoViableCandidate { candidates });
    };
    // No panic path out of a search: `best` indexes `pipelines` by
    // construction, but if that invariant ever breaks the caller gets
    // the structured error (preserving every candidate's outcome for
    // diagnostics), not an unwinding worker. `phloemd` surfaces this
    // as a `no_viable_candidate` error response.
    let Some((_, pipeline)) = pipelines.into_iter().nth(best) else {
        return Err(SearchError::NoViableCandidate { candidates });
    };
    Ok(SearchReport {
        candidates,
        best,
        pipeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, Expr, FunctionBuilder, MemState, Trap};

    /// Small irregular kernel: out[0] += b[a[i]] for i < len[0].
    fn kernel() -> Function {
        let mut b = FunctionBuilder::new("gather");
        let a = b.array_i32("a");
        let bb = b.array_i32("b");
        let out = b.array_i64("out");
        let lenq = b.array_i32("len");
        let n = b.var_i64("n");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        let y = b.var_i64("y");
        let sum = b.var_i64("sum");
        let ln = b.load(lenq, Expr::i64(0));
        b.assign(n, ln);
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let la = f.load(a, Expr::var(i));
            f.assign(x, la);
            let lb = f.load(bb, Expr::var(x));
            f.assign(y, lb);
            f.assign(sum, Expr::add(Expr::var(sum), Expr::var(y)));
        });
        b.store(out, Expr::i64(0), Expr::var(sum));
        b.build()
    }

    /// Functional op-count profile (a stand-in for cycles).
    fn op_count_profile(_cuts: &[LoadId], p: &Pipeline, _b: &ProfileBudget) -> ProfileOutcome {
        let mut mem = MemState::new();
        mem.alloc_i64(ArrayDecl::i32("a"), (0..64).map(|i| (i * 7) % 64));
        mem.alloc_i64(ArrayDecl::i32("b"), 0..64);
        mem.alloc(ArrayDecl::i64("out"), 1);
        mem.alloc_i64(ArrayDecl::i32("len"), [64]);
        match interp::run_pipeline(p, mem, &[], 24) {
            Ok(run) => ProfileOutcome::Ok(run.total().total() as f64),
            Err(t) => ProfileOutcome::Trapped(t.to_string()),
        }
    }

    #[test]
    fn enumeration_covers_combinations() {
        let f = kernel();
        let pipes = enumerate_pipelines(&f, &SearchOptions::default());
        // Candidates: a[i], b[x], len[0] -> all subsets of size <= 3
        // that compile.
        assert!(pipes.len() >= 3, "got {}", pipes.len());
        let lens: Vec<usize> = pipes.iter().map(|(c, _)| c.len()).collect();
        assert!(lens.contains(&1) && lens.contains(&2));
    }

    #[test]
    fn search_picks_the_fastest_profile() {
        let f = kernel();
        let report = search(&f, &SearchOptions::default(), op_count_profile).unwrap();
        assert!(report.candidates.len() >= 3);
        assert!(report.candidates[report.best].train_cycles().is_some());
        // The chosen pipeline must actually be one of the candidates.
        assert!(report.pipeline.total_stages() >= 1);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let f = kernel();
        let serial_opts = SearchOptions {
            workers: 1,
            ..SearchOptions::default()
        };
        let serial = search(&f, &serial_opts, op_count_profile).unwrap();
        let parallel = search(&f, &SearchOptions::default(), op_count_profile).unwrap();
        assert_eq!(serial.best, parallel.best);
        let serial_cycles: Vec<Option<f64>> =
            serial.candidates.iter().map(|c| c.train_cycles()).collect();
        let parallel_cycles: Vec<Option<f64>> = parallel
            .candidates
            .iter()
            .map(|c| c.train_cycles())
            .collect();
        assert_eq!(serial_cycles, parallel_cycles);
    }

    #[test]
    fn failing_candidates_do_not_panic_the_search() {
        let f = kernel();
        // Every odd-numbered call path fails differently: panic for
        // 1-cut candidates, trap for 2-cut ones. The search must still
        // return Ok with the survivors recorded.
        let report = search(&f, &SearchOptions::default(), |cuts, p, b| {
            if cuts.len() == 1 {
                panic!("injected profiling panic");
            }
            if cuts.len() == 2 {
                return ProfileOutcome::Trapped(Trap::DivByZero.to_string());
            }
            op_count_profile(cuts, p, b)
        });
        match report {
            Ok(r) => {
                assert!(r.candidates[r.best].train_cycles().is_some());
                assert!(r
                    .candidates
                    .iter()
                    .any(|c| matches!(c.outcome, ProfileOutcome::Trapped(_))));
            }
            Err(SearchError::NoViableCandidate { candidates }) => {
                // Legal only if *every* candidate had 1 or 2 cuts.
                assert!(candidates.iter().all(|c| c.cuts.len() <= 2));
            }
            Err(e) => panic!("unexpected search error: {e}"),
        }
    }

    #[test]
    fn all_failures_yield_a_structured_error() {
        let f = kernel();
        let err = search(&f, &SearchOptions::default(), |_, _, _| {
            ProfileOutcome::TimedOut
        })
        .unwrap_err();
        match err {
            SearchError::NoViableCandidate { candidates } => {
                assert!(!candidates.is_empty());
                assert!(candidates
                    .iter()
                    .all(|c| c.outcome == ProfileOutcome::TimedOut));
            }
            e => panic!("expected NoViableCandidate, got {e}"),
        }
    }

    #[test]
    fn timed_out_candidates_get_one_retry_at_a_larger_budget() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let f = kernel();
        let opts = SearchOptions {
            workers: 1,
            profile_cycle_cap: 1000,
            retry_cap_factor: 4,
            ..SearchOptions::default()
        };
        let max_cap_seen = AtomicU64::new(0);
        let report = search(&f, &opts, |cuts, p, b| {
            max_cap_seen.fetch_max(b.cycle_cap, Ordering::Relaxed);
            if b.cycle_cap <= 1000 {
                // Pretend every candidate is too slow at the base budget.
                return ProfileOutcome::TimedOut;
            }
            op_count_profile(cuts, p, b)
        })
        .unwrap();
        assert_eq!(max_cap_seen.load(Ordering::Relaxed), 4000);
        assert!(report.candidates[report.best].train_cycles().is_some());
    }
}
