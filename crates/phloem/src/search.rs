//! Profile-guided pipeline search (Sec. V, Fig. 8).
//!
//! The static cost model's ranking is approximate — cache misses and
//! loop lengths are input-dependent. In PGO mode, Phloem selects more
//! than N-1 candidate decoupling points from the highest-ranked ones,
//! builds candidate pipelines from *combinations* of those points
//! ("no fewer than fifty different pipelines for each benchmark"),
//! profiles each on small training inputs, and keeps the best.
//!
//! Profiling is delegated to a caller-supplied closure (each benchmark
//! has its own host driver); candidates are profiled in parallel.

use crate::{analyze, decouple_with_cuts, CompileOptions};
use phloem_ir::{Function, LoadId, Pipeline};
use serde::{Deserialize, Serialize};

/// Options for the profile-guided search.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Maximum *compute* stages per pipeline (the SMT thread budget).
    pub max_stages: usize,
    /// Candidate decoupling points drawn from the top of the ranking.
    pub top_k: usize,
    /// Compilation options (passes etc.).
    pub compile: CompileOptions,
    /// Worker threads used to profile candidates.
    pub workers: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_stages: 4,
            top_k: 6,
            compile: CompileOptions::default(),
            workers: 8,
        }
    }
}

/// One profiled candidate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Candidate {
    /// The cut loads defining the pipeline.
    pub cuts: Vec<LoadId>,
    /// Total stage count *including* reference accelerators (the metric
    /// of Fig. 13).
    pub total_stages: usize,
    /// Compute stages only.
    pub compute_stages: usize,
    /// Gmean training cycles (lower is better); `None` if profiling
    /// failed.
    pub train_cycles: Option<f64>,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// All candidates (compiled ones), with profile results.
    pub candidates: Vec<Candidate>,
    /// Index of the best candidate in `candidates`.
    pub best: usize,
    /// The best pipeline, recompiled.
    pub pipeline: Pipeline,
}

/// Enumerates all legal pipelines from combinations of the top-k
/// candidate points (sizes 1 ..= max_stages-1). Returns `(cuts,
/// pipeline)` pairs for the combinations that compile.
pub fn enumerate_pipelines(func: &Function, opts: &SearchOptions) -> Vec<(Vec<LoadId>, Pipeline)> {
    let a = analyze(func);
    let cand: Vec<LoadId> = a.candidates().into_iter().take(opts.top_k).collect();
    let mut out = Vec::new();
    let n = cand.len();
    // All non-empty subsets of the candidate pool, capped by stage budget.
    for mask in 1u32..(1 << n) {
        let cuts: Vec<LoadId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| cand[i])
            .collect();
        if cuts.len() > opts.max_stages.saturating_sub(1) {
            continue;
        }
        if let Ok(p) = decouple_with_cuts(func, &cuts, &opts.compile) {
            out.push((cuts, p));
        }
    }
    out
}

/// Runs the profile-guided search. `profile` runs one pipeline on the
/// training inputs and returns its gmean cycles (`None` on failure).
///
/// # Panics
/// Panics if no candidate compiles and profiles successfully.
pub fn search(
    func: &Function,
    opts: &SearchOptions,
    profile: impl Fn(&Pipeline) -> Option<f64> + Sync,
) -> SearchReport {
    let pipelines = enumerate_pipelines(func, opts);
    assert!(!pipelines.is_empty(), "no candidate pipeline compiles");
    // Each worker owns a disjoint contiguous slice of the result vector,
    // so no locking is needed: `chunks_mut` proves the disjointness to
    // the borrow checker, and scoped threads tie the lifetimes down.
    let mut results: Vec<Option<f64>> = vec![None; pipelines.len()];
    let workers = opts.workers.max(1).min(pipelines.len());
    let chunk = pipelines.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in results.chunks_mut(chunk).enumerate() {
            let pipelines = &pipelines;
            let profile = &profile;
            scope.spawn(move || {
                for (slot, (_, p)) in out.iter_mut().zip(&pipelines[w * chunk..]) {
                    *slot = profile(p);
                }
            });
        }
    });

    let mut candidates = Vec::with_capacity(pipelines.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, ((cuts, p), cycles)) in pipelines.iter().zip(&results).enumerate() {
        candidates.push(Candidate {
            cuts: cuts.clone(),
            total_stages: p.total_stages(),
            compute_stages: p.compute_stages(),
            train_cycles: *cycles,
        });
        if let Some(c) = cycles {
            if best.map(|(_, b)| *c < b).unwrap_or(true) {
                best = Some((i, *c));
            }
        }
    }
    let (best, _) = best.expect("at least one candidate must profile successfully");
    let pipeline = pipelines.into_iter().nth(best).unwrap().1;
    SearchReport {
        candidates,
        best,
        pipeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, Expr, FunctionBuilder, MemState};

    /// Small irregular kernel: out[0] += b[a[i]] for i < len[0].
    fn kernel() -> Function {
        let mut b = FunctionBuilder::new("gather");
        let a = b.array_i32("a");
        let bb = b.array_i32("b");
        let out = b.array_i64("out");
        let lenq = b.array_i32("len");
        let n = b.var_i64("n");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        let y = b.var_i64("y");
        let sum = b.var_i64("sum");
        let ln = b.load(lenq, Expr::i64(0));
        b.assign(n, ln);
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let la = f.load(a, Expr::var(i));
            f.assign(x, la);
            let lb = f.load(bb, Expr::var(x));
            f.assign(y, lb);
            f.assign(sum, Expr::add(Expr::var(sum), Expr::var(y)));
        });
        b.store(out, Expr::i64(0), Expr::var(sum));
        b.build()
    }

    #[test]
    fn enumeration_covers_combinations() {
        let f = kernel();
        let pipes = enumerate_pipelines(&f, &SearchOptions::default());
        // Candidates: a[i], b[x], len[0] -> all subsets of size <= 3
        // that compile.
        assert!(pipes.len() >= 3, "got {}", pipes.len());
        let lens: Vec<usize> = pipes.iter().map(|(c, _)| c.len()).collect();
        assert!(lens.contains(&1) && lens.contains(&2));
    }

    #[test]
    fn search_picks_the_fastest_profile() {
        let f = kernel();
        // Profile = functional op count (a stand-in for cycles).
        let report = search(&f, &SearchOptions::default(), |p| {
            let mut mem = MemState::new();
            mem.alloc_i64(ArrayDecl::i32("a"), (0..64).map(|i| (i * 7) % 64));
            mem.alloc_i64(ArrayDecl::i32("b"), 0..64);
            mem.alloc(ArrayDecl::i64("out"), 1);
            mem.alloc_i64(ArrayDecl::i32("len"), [64]);
            let run = interp::run_pipeline(p, mem, &[], 24).ok()?;
            Some(run.total().total() as f64)
        });
        assert!(report.candidates.len() >= 3);
        assert!(report.candidates[report.best].train_cycles.is_some());
        // The chosen pipeline must actually be one of the candidates.
        assert!(report.pipeline.total_stages() >= 1);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let f = kernel();
        let profile = |p: &Pipeline| {
            let mut mem = MemState::new();
            mem.alloc_i64(ArrayDecl::i32("a"), (0..64).map(|i| (i * 7) % 64));
            mem.alloc_i64(ArrayDecl::i32("b"), 0..64);
            mem.alloc(ArrayDecl::i64("out"), 1);
            mem.alloc_i64(ArrayDecl::i32("len"), [64]);
            let run = interp::run_pipeline(p, mem, &[], 24).ok()?;
            Some(run.total().total() as f64)
        };
        let serial_opts = SearchOptions {
            workers: 1,
            ..SearchOptions::default()
        };
        let serial = search(&f, &serial_opts, profile);
        let parallel = search(&f, &SearchOptions::default(), profile);
        assert_eq!(serial.best, parallel.best);
        let serial_cycles: Vec<Option<f64>> =
            serial.candidates.iter().map(|c| c.train_cycles).collect();
        let parallel_cycles: Vec<Option<f64>> =
            parallel.candidates.iter().map(|c| c.train_cycles).collect();
        assert_eq!(serial_cycles, parallel_cycles);
    }
}
