//! Pass 3: reference-accelerator extraction.
//!
//! After the other passes, stages that merely shuttle values between
//! queues and memory have canonical shapes. Three patterns are offloaded
//! to Pipette's RA engines (Sec. III / IV-B):
//!
//! * **Indirect**: `while(1) { x = deq(qi); t = base[x]; enq(qo, t) }`
//! * **Paired indirect** (e.g. BFS's `nodes[v]` / `nodes[v+1]`): the
//!   stage loads `base[x]` and `base[x+1]`; the producer is rewritten to
//!   enqueue both indices ("the producer simply enqueues v and then
//!   v+1") and the consumers read both values from the RA's single
//!   output queue — yielding *chained* RAs when the consumer is a SCAN.
//! * **Scan**: `while(1) { lo = deq(qi); hi = deq(qi); for j in lo..hi
//!   { t = base[j]; enq(qo, t) } }`
//!
//! Control values arriving on the input queue are forwarded to the
//! output, so end-of-stream plumbing survives the conversion.

use phloem_ir::{
    ArrayDecl, ArrayId, Expr, Pipeline, QueueId, RaConfig, RaMode, Stage, StageKind, Stmt, VarId,
};

/// Outcome of matching one stage.
enum RaMatch {
    Indirect {
        base: ArrayId,
        qin: QueueId,
        qout: QueueId,
    },
    Paired {
        base: ArrayId,
        qin: QueueId,
        q1: QueueId,
        q2: QueueId,
        offset: i64,
    },
    Scan {
        base: ArrayId,
        qin: QueueId,
        qout: QueueId,
        end_ctrl: Option<u32>,
    },
}

fn as_var(e: &Expr) -> Option<VarId> {
    if let Expr::Var(v) = e {
        Some(*v)
    } else {
        None
    }
}

fn as_load(e: &Expr) -> Option<(ArrayId, VarId)> {
    if let Expr::Load { array, index, .. } = e {
        as_var(index).map(|v| (*array, v))
    } else {
        None
    }
}

/// Matches `while(1) { body }` — or `for (v = 0; v < bound; v++) { body }`
/// where the body never reads `v` (the trip count is redundant with the
/// stream) — where the stage has no other statements except trailing
/// `enq_ctrl`s that CV forwarding subsumes.
fn loop_body(stage: &Stage) -> Option<&[Stmt]> {
    let body = &stage.program.func.body;
    if body.is_empty() {
        return None;
    }
    let inner = match &body[0] {
        Stmt::While {
            cond: Expr::Const(_),
            body: inner,
            ..
        } => inner,
        Stmt::For {
            var, body: inner, ..
        } => {
            let mut uses_var = false;
            for s in inner {
                s.for_each(&mut |s| {
                    if s.header_reads().contains(var) {
                        uses_var = true;
                    }
                });
            }
            if uses_var {
                return None;
            }
            inner
        }
        _ => return None,
    };
    // Anything after the loop must be ctrl forwarding (subsumed by the
    // RA's forward_ctrl) into a queue this stage writes inside the loop.
    if !body[1..].iter().all(|s| matches!(s, Stmt::EnqCtrl { .. })) {
        return None;
    }
    Some(inner)
}

fn match_stage(stage: &Stage) -> Option<RaMatch> {
    if !matches!(stage.kind, StageKind::Compute) {
        return None;
    }
    let inner = loop_body(stage)?;
    // Scan: deq lo; deq hi; for j in lo..hi { t = base[j]; enq(qo, t) } [; enq_ctrl]
    if let [Stmt::Deq { var: lo, queue: q1 }, Stmt::Deq { var: hi, queue: q2 }, Stmt::For {
        var,
        start,
        end,
        body,
        ..
    }, rest @ ..] = inner
    {
        if q1 == q2 && as_var(start) == Some(*lo) && as_var(end) == Some(*hi) && rest.len() <= 1 {
            if let [Stmt::Assign { var: t, expr }, Stmt::Enq { queue: qo, value }] = &body[..] {
                if let Some((base, idx)) = as_load(expr) {
                    if idx == *var && as_var(value) == Some(*t) {
                        let end_ctrl = match rest {
                            [Stmt::EnqCtrl { queue, ctrl }] if queue == qo => Some(*ctrl),
                            [] => None,
                            _ => return None,
                        };
                        return Some(RaMatch::Scan {
                            base,
                            qin: *q1,
                            qout: *qo,
                            end_ctrl,
                        });
                    }
                }
            }
        }
    }
    // Indirect / paired: deq v; loads of base[v(+k)] each enq'd.
    if let [Stmt::Deq { var: v, queue: qin }, rest @ ..] = inner {
        // Single: t = base[v]; enq(qo, t)
        if let [Stmt::Assign { var: t, expr }, Stmt::Enq { queue: qo, value }] = rest {
            if let Some((base, idx)) = as_load(expr) {
                if idx == *v && as_var(value) == Some(*t) {
                    return Some(RaMatch::Indirect {
                        base,
                        qin: *qin,
                        qout: *qo,
                    });
                }
            }
        }
        // Paired: t1 = base[v]; enq(q1, t1); v2 = v + k; t2 = base[v2]; enq(q2, t2)
        if let [Stmt::Assign { var: t1, expr: e1 }, Stmt::Enq {
            queue: q1,
            value: val1,
        }, Stmt::Assign { var: v2, expr: e2 }, Stmt::Assign { var: t2, expr: e3 }, Stmt::Enq {
            queue: q2,
            value: val2,
        }] = rest
        {
            let l1 = as_load(e1);
            let l3 = as_load(e3);
            let off = match e2 {
                Expr::Binary(phloem_ir::BinOp::Add, a, b) => match (&**a, &**b) {
                    (Expr::Var(base_v), Expr::Const(c)) if base_v == v => c.as_i64().ok(),
                    _ => None,
                },
                _ => None,
            };
            if let (Some((a1, i1)), Some((a2, i2)), Some(off)) = (l1, l3, off) {
                if a1 == a2
                    && i1 == *v
                    && i2 == *v2
                    && as_var(val1) == Some(*t1)
                    && as_var(val2) == Some(*t2)
                {
                    return Some(RaMatch::Paired {
                        base: a1,
                        qin: *qin,
                        q1: *q1,
                        q2: *q2,
                        offset: off,
                    });
                }
            }
        }
    }
    None
}

fn rewrite_queue(stmts: &mut [Stmt], from: QueueId, to: QueueId) {
    for s in stmts {
        match s {
            Stmt::Enq { queue, .. } | Stmt::EnqCtrl { queue, .. } | Stmt::Deq { queue, .. }
                if *queue == from =>
            {
                *queue = to;
            }
            Stmt::EnqSel { queues, .. } => {
                for q in queues {
                    if *q == from {
                        *q = to;
                    }
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                rewrite_queue(then_body, from, to);
                rewrite_queue(else_body, from, to);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => rewrite_queue(body, from, to),
            _ => {}
        }
    }
}

/// Duplicates every `enq(qin, v)` as `enq(qin, v); enq(qin, v+off)` in
/// the producer of a paired RA.
fn duplicate_enqs(stmts: &mut Vec<Stmt>, qin: QueueId, off: i64) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Enq { queue, value } if *queue == qin => {
                let v = value.clone();
                stmts.insert(
                    i + 1,
                    Stmt::Enq {
                        queue: qin,
                        value: Expr::add(v, Expr::i64(off)),
                    },
                );
                i += 2;
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                duplicate_enqs(then_body, qin, off);
                duplicate_enqs(else_body, qin, off);
                i += 1;
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                duplicate_enqs(body, qin, off);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Extracts reference accelerators from a compiled pipeline, in place.
/// Stops once `max_ras` RAs exist.
pub(crate) fn extract(pipeline: &mut Pipeline, arrays: &[ArrayDecl], max_ras: usize) {
    let mut ras = pipeline.ra_stages();
    let mut i = 0;
    while i < pipeline.stages.len() {
        if ras >= max_ras {
            break;
        }
        let Some(m) = match_stage(&pipeline.stages[i]) else {
            i += 1;
            continue;
        };
        let core = pipeline.stages[i].core;
        let name = pipeline.stages[i].program.func.name.clone();
        match m {
            RaMatch::Indirect { base, qin, qout } => {
                let cfg = RaConfig {
                    name,
                    mode: RaMode::Indirect,
                    base,
                    in_queue: qin,
                    out_queue: qout,
                    forward_ctrl: true,
                    scan_end_ctrl: None,
                };
                pipeline.stages[i] = make_ra(cfg, arrays, core);
                ras += 1;
            }
            RaMatch::Scan {
                base,
                qin,
                qout,
                end_ctrl,
            } => {
                let cfg = RaConfig {
                    name,
                    mode: RaMode::Scan,
                    base,
                    in_queue: qin,
                    out_queue: qout,
                    forward_ctrl: true,
                    scan_end_ctrl: end_ctrl,
                };
                pipeline.stages[i] = make_ra(cfg, arrays, core);
                ras += 1;
            }
            RaMatch::Paired {
                base,
                qin,
                q1,
                q2,
                offset,
            } => {
                // Producer sends both indices; both consumers read the
                // RA's single output queue (q1 reused as the output).
                let cfg = RaConfig {
                    name,
                    mode: RaMode::Indirect,
                    base,
                    in_queue: qin,
                    out_queue: q1,
                    forward_ctrl: true,
                    scan_end_ctrl: None,
                };
                for (j, st) in pipeline.stages.iter_mut().enumerate() {
                    if j == i {
                        continue;
                    }
                    duplicate_enqs(&mut st.program.func.body, qin, offset);
                    if q2 != q1 {
                        rewrite_queue(&mut st.program.func.body, q2, q1);
                        for h in &mut st.program.handlers {
                            if h.queue == q2 {
                                h.queue = q1;
                            }
                            rewrite_queue(&mut h.body, q2, q1);
                        }
                    }
                }
                pipeline.stages[i] = make_ra(cfg, arrays, core);
                ras += 1;
            }
        }
        i += 1;
    }
}

fn make_ra(cfg: RaConfig, arrays: &[ArrayDecl], core: usize) -> Stage {
    let program = phloem_ir::pipeline::ra_stage_program(&cfg, arrays);
    Stage {
        program,
        kind: StageKind::Ra(cfg),
        core,
    }
}
