//! Normalization to fine-grain three-address form.
//!
//! Phloem's IR "represents fine-grain operations" so that *any two
//! operations in a program can be decoupled* (Sec. V). This pass brings a
//! frontend function into that form:
//!
//! * every `Assign` right-hand side is *shallow*: a constant, variable,
//!   one unary/binary op over leaves, or one load with a leaf index;
//! * `Store`/`Enq`/`If`/`For` operand expressions are leaves;
//! * `while (cond)` loops become `while (true)` with an explicit
//!   re-evaluated exit test `if (!cond) break;` so loop-exit conditions
//!   are ordinary staged values.
//!
//! Load-site ids are preserved, so cost-model rankings computed before
//! or after normalization agree.

use phloem_ir::{BranchId, Expr, Function, Stmt, Ty, UnOp, VarDecl, VarId};

struct Normalizer {
    vars: Vec<VarDecl>,
    next_branch: u32,
    next_temp: u32,
}

impl Normalizer {
    fn temp(&mut self) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: format!("_t{}", self.next_temp),
            ty: Ty::I64,
        });
        self.next_temp += 1;
        id
    }

    fn branch(&mut self) -> BranchId {
        let id = BranchId(self.next_branch);
        self.next_branch += 1;
        id
    }

    /// Reduces `e` to a leaf (Var/Const), emitting prefix atoms.
    fn leaf(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Const(_) | Expr::Var(_) => e.clone(),
            _ => {
                let shallow = self.shallow(e, out);
                let t = self.temp();
                out.push(Stmt::Assign {
                    var: t,
                    expr: shallow,
                });
                Expr::Var(t)
            }
        }
    }

    /// Reduces `e` to a shallow expression (operands are leaves),
    /// emitting prefix atoms.
    fn shallow(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Const(_) | Expr::Var(_) => e.clone(),
            Expr::Unary(op, a) => {
                let la = self.leaf(a, out);
                Expr::Unary(*op, Box::new(la))
            }
            Expr::Binary(op, a, b) => {
                let la = self.leaf(a, out);
                let lb = self.leaf(b, out);
                Expr::Binary(*op, Box::new(la), Box::new(lb))
            }
            Expr::Load { id, array, index } => {
                let li = self.leaf(index, out);
                Expr::Load {
                    id: *id,
                    array: *array,
                    index: Box::new(li),
                }
            }
        }
    }

    fn body(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::Assign { var, expr } => {
                    let shallow = self.shallow(expr, &mut out);
                    out.push(Stmt::Assign {
                        var: *var,
                        expr: shallow,
                    });
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    let li = self.leaf(index, &mut out);
                    let lv = self.leaf(value, &mut out);
                    out.push(Stmt::Store {
                        array: *array,
                        index: li,
                        value: lv,
                    });
                }
                Stmt::AtomicRmw {
                    op,
                    array,
                    index,
                    value,
                    old,
                } => {
                    let li = self.leaf(index, &mut out);
                    let lv = self.leaf(value, &mut out);
                    out.push(Stmt::AtomicRmw {
                        op: *op,
                        array: *array,
                        index: li,
                        value: lv,
                        old: *old,
                    });
                }
                Stmt::If {
                    id,
                    cond,
                    then_body,
                    else_body,
                } => {
                    let lc = self.leaf(cond, &mut out);
                    out.push(Stmt::If {
                        id: *id,
                        cond: lc,
                        then_body: self.body(then_body),
                        else_body: self.body(else_body),
                    });
                }
                Stmt::For {
                    id,
                    var,
                    start,
                    end,
                    body,
                } => {
                    let ls = self.leaf(start, &mut out);
                    let le = self.leaf(end, &mut out);
                    out.push(Stmt::For {
                        id: *id,
                        var: *var,
                        start: ls,
                        end: le,
                        body: self.body(body),
                    });
                }
                Stmt::While { id, cond, body } => {
                    let is_const_true =
                        matches!(cond, Expr::Const(v) if v.as_bool().unwrap_or(false));
                    if is_const_true {
                        out.push(Stmt::While {
                            id: *id,
                            cond: Expr::i64(1),
                            body: self.body(body),
                        });
                    } else {
                        // while (c) {B}  =>  while (1) { atoms; cn = !c;
                        //                    if (cn) break; B }
                        let mut inner = Vec::new();
                        let lc = self.leaf(cond, &mut inner);
                        let cn = self.temp();
                        inner.push(Stmt::Assign {
                            var: cn,
                            expr: Expr::Unary(UnOp::Not, Box::new(lc)),
                        });
                        let exit_id = self.branch();
                        inner.push(Stmt::if_then(
                            exit_id,
                            Expr::Var(cn),
                            vec![Stmt::Break { levels: 1 }],
                        ));
                        inner.extend(self.body(body));
                        out.push(Stmt::While {
                            id: *id,
                            cond: Expr::i64(1),
                            body: inner,
                        });
                    }
                }
                Stmt::Break { levels } => out.push(Stmt::Break { levels: *levels }),
                Stmt::Enq { queue, value } => {
                    let lv = self.leaf(value, &mut out);
                    out.push(Stmt::Enq {
                        queue: *queue,
                        value: lv,
                    });
                }
                Stmt::EnqSel {
                    queues,
                    select,
                    value,
                } => {
                    let lsel = self.leaf(select, &mut out);
                    let lv = self.leaf(value, &mut out);
                    out.push(Stmt::EnqSel {
                        queues: queues.clone(),
                        select: lsel,
                        value: lv,
                    });
                }
                Stmt::EnqCtrl { queue, ctrl } => out.push(Stmt::EnqCtrl {
                    queue: *queue,
                    ctrl: *ctrl,
                }),
                Stmt::Deq { var, queue } => out.push(Stmt::Deq {
                    var: *var,
                    queue: *queue,
                }),
            }
        }
        out
    }
}

/// Normalizes a function to three-address form. Semantics-preserving.
pub fn normalize(func: &Function) -> Function {
    let mut n = Normalizer {
        vars: func.vars.clone(),
        next_branch: func.next_branch_id().0,
        next_temp: 0,
    };
    let body = n.body(&func.body);
    Function {
        name: func.name.clone(),
        vars: n.vars,
        arrays: func.arrays.clone(),
        params: func.params.clone(),
        body,
    }
}

/// True if an expression is a leaf (Var/Const).
pub fn is_leaf(e: &Expr) -> bool {
    matches!(e, Expr::Const(_) | Expr::Var(_))
}

/// True if an expression is shallow (leaf, or one op over leaves).
pub fn is_shallow(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Unary(_, a) => is_leaf(a),
        Expr::Binary(_, a, b) => is_leaf(a) && is_leaf(b),
        Expr::Load { index, .. } => is_leaf(index),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, FunctionBuilder, MemState, Value};

    fn check_normal_form(body: &[Stmt]) {
        for s in body {
            s.for_each(&mut |s| match s {
                Stmt::Assign { expr, .. } => assert!(is_shallow(expr), "{expr:?}"),
                Stmt::Store { index, value, .. } => {
                    assert!(is_leaf(index) && is_leaf(value));
                }
                Stmt::If { cond, .. } => assert!(is_leaf(cond)),
                Stmt::For { start, end, .. } => assert!(is_leaf(start) && is_leaf(end)),
                Stmt::While { cond, .. } => {
                    assert!(matches!(cond, Expr::Const(_)), "whiles become while(1)")
                }
                Stmt::Enq { value, .. } => assert!(is_leaf(value)),
                _ => {}
            });
        }
    }

    fn sample() -> (Function, MemState, phloem_ir::ArrayId) {
        // out[0] = sum over i<n of b[a[i]+1]*2, with a while-based tail.
        let mut b = FunctionBuilder::new("t");
        let n = b.param_i64("n");
        let a = b.array_i64("a");
        let bb = b.array_i64("b");
        let out = b.array_i64("out");
        let i = b.var_i64("i");
        let s = b.var_i64("s");
        let k = b.var_i64("k");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
            let inner = f.load(a, Expr::var(i));
            let l = f.load(bb, Expr::add(inner, Expr::i64(1)));
            f.assign(s, Expr::add(Expr::var(s), Expr::mul(l, Expr::i64(2))));
        });
        b.assign(k, Expr::i64(0));
        b.while_loop(Expr::lt(Expr::var(k), Expr::i64(3)), |f| {
            f.assign(s, Expr::add(Expr::var(s), Expr::i64(100)));
            f.assign(k, Expr::add(Expr::var(k), Expr::i64(1)));
        });
        b.store(out, Expr::i64(0), Expr::var(s));
        let f = b.build();
        let mut mem = MemState::new();
        mem.alloc_i64(ArrayDecl::i64("a"), [2, 0, 1]);
        mem.alloc_i64(ArrayDecl::i64("b"), [10, 20, 30, 40]);
        let out_id = mem.alloc(ArrayDecl::i64("out"), 1);
        (f, mem, out_id)
    }

    #[test]
    fn normal_form_is_reached() {
        let (f, _, _) = sample();
        let nf = normalize(&f);
        nf.validate().unwrap();
        check_normal_form(&nf.body);
    }

    #[test]
    fn normalization_preserves_semantics() {
        let (f, mem, out) = sample();
        let nf = normalize(&f);
        let r1 = interp::run_serial(&f, mem.clone(), &[("n", Value::I64(3))]).unwrap();
        let r2 = interp::run_serial(&nf, mem, &[("n", Value::I64(3))]).unwrap();
        assert_eq!(r1.mem.i64_vec(out), r2.mem.i64_vec(out));
        // a = [2,0,1] -> b[3]+b[1]+b[2] = 40+20+30, doubled, plus 3*100.
        assert_eq!(r1.mem.i64_vec(out), vec![(40 + 20 + 30) * 2 + 300]);
    }

    #[test]
    fn load_ids_survive() {
        let (f, _, _) = sample();
        let nf = normalize(&f);
        let mut before = Vec::new();
        let mut after = Vec::new();
        let collect = |body: &[Stmt], out: &mut Vec<phloem_ir::LoadId>| {
            for s in body {
                s.for_each(&mut |s| {
                    let mut visit = |e: &Expr| e.for_each_load(&mut |id, _| out.push(id));
                    match s {
                        Stmt::Assign { expr, .. } => visit(expr),
                        Stmt::Store { index, value, .. } => {
                            visit(index);
                            visit(value);
                        }
                        Stmt::If { cond, .. } | Stmt::While { cond, .. } => visit(cond),
                        Stmt::For { start, end, .. } => {
                            visit(start);
                            visit(end);
                        }
                        Stmt::Enq { value, .. } => visit(value),
                        _ => {}
                    }
                });
            }
        };
        collect(&f.body, &mut before);
        collect(&nf.body, &mut after);
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn idempotent() {
        let (f, _, _) = sample();
        let n1 = normalize(&f);
        let n2 = normalize(&n1);
        // A second normalization adds no new temps.
        assert_eq!(n1.vars.len(), n2.vars.len());
    }
}
