//! # phloem-compiler
//!
//! A reproduction of **Phloem** (Nguyen & Sanchez, HPCA 2023): a compiler
//! that automatically transforms *serial* irregular programs into
//! efficient *fine-grain pipeline-parallel* programs for Pipette-style
//! hardware.
//!
//! The compiler implements the paper's design as a series of simple
//! passes:
//!
//! 1. [`analysis`] — the static cost model that ranks candidate
//!    decoupling points (indirect loads in deep loops score highest;
//!    adjacent accesses are grouped; Sec. V).
//! 2. [`decouple`] — slicing into stages with queue communication ("add
//!    queues"), rematerialization ("recompute"), control values,
//!    control-value handlers, and inter-stage DCE (Sec. IV-B, passes 1-2
//!    and 4-6).
//! 3. [`ra`] — reference-accelerator extraction including chained RAs
//!    (pass 3).
//! 4. [`search`] — the profile-guided optimization mode that enumerates
//!    candidate pipelines and profiles them on training inputs.
//! 5. [`replicate`] — `#pragma replicate` / `#pragma distribute`
//!    data-parallel pipeline replication (Sec. IV-C).
//!
//! ```no_run
//! use phloem_compiler::{compile_static, CompileOptions};
//! # let func = phloem_ir::Function::new("empty");
//! let pipeline = compile_static(&func, 4, &CompileOptions::default())?;
//! # Ok::<(), phloem_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod decouple;
mod emit;
pub mod normalize;
pub mod options;
pub mod ra;
pub mod replicate;
pub mod search;

pub use analysis::{analyze, AccessKind, Analysis, LoadInfo};
pub use decouple::DecoupleOptions;
pub use options::{CompileError, PassConfig};

use decouple::{assign_stages, partition_comm, plan, TreeBuilder};
use emit::emit_stage;
use phloem_ir::{Expr, Function, LoadId, Pipeline, Stmt};

/// Top-level compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Pass switches (Fig. 6 ablations).
    pub passes: PassConfig,
    /// SMT threads per core.
    pub smt_threads: usize,
    /// Hardware queue budget.
    pub max_queues: u16,
    /// RA engines available.
    pub max_ras: usize,
    /// First core for placement.
    pub start_core: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            passes: PassConfig::all(),
            smt_threads: 4,
            max_queues: 16,
            max_ras: 4,
            start_core: 0,
        }
    }
}

/// Decouples `func` at exactly the given cut loads (in any order; they
/// are sorted into pipeline order automatically).
///
/// # Errors
/// Returns a [`CompileError`] when the cuts are illegal (races, missing
/// loads, unsupported shapes) or exceed hardware limits.
pub fn decouple_with_cuts(
    func: &Function,
    cuts: &[LoadId],
    opts: &CompileOptions,
) -> Result<Pipeline, CompileError> {
    func.validate()
        .map_err(|e| CompileError::Unsupported(e.to_string()))?;
    let nf = normalize::normalize(func);
    let mut tb = TreeBuilder::default();
    let mut tree = tb.build(&nf.body)?;

    // Order cuts by their position in the program.
    let positions = load_positions(&nf.body);
    let mut sorted: Vec<(usize, LoadId)> = Vec::with_capacity(cuts.len());
    for c in cuts {
        let p = positions
            .iter()
            .find(|(l, _)| l == c)
            .ok_or(CompileError::UnknownCut(*c))?
            .1;
        if sorted.iter().any(|(_, l)| l == c) {
            return Err(CompileError::Unsupported(format!("duplicate cut {c:?}")));
        }
        sorted.push((p, *c));
    }
    sorted.sort();
    let mut cut_pairs: Vec<(LoadId, u32)> = sorted
        .iter()
        .enumerate()
        .map(|(i, (_, l))| (*l, i as u32 + 1))
        .collect();
    // Adjacency grouping (Sec. V): loads adjacent to a cut load (e.g.
    // nodes[v+1] next to nodes[v]) are almost surely cache hits and are
    // kept in the cut's stage rather than being separated from it.
    let a = analyze(func);
    for info in &a.loads {
        if let Some(primary) = info.adjacent_primary {
            if let Some(&(_, stage)) = cut_pairs.iter().find(|(l, _)| *l == primary) {
                cut_pairs.push((info.id, stage));
            }
        }
    }

    let nstages = assign_stages(&mut tree, &nf.params, &cut_pairs)?;
    let (mut the_plan, forced) = plan(&tree, &nf.params, nstages, opts.passes)?;
    let groups = decouple::def_groups(&tree);
    partition_comm(&mut the_plan, &forced, &groups, opts.max_queues)?;

    let mut pipe = Pipeline::new(func.name.clone());
    let mut placed = 0usize;
    for s in 0..nstages {
        if let Some(p) = emit_stage(&the_plan, &tree, &nf, s, &func.name)? {
            let core = opts.start_core + placed / opts.smt_threads;
            pipe.add_stage(p, core);
            placed += 1;
        }
    }
    let limits = phloem_ir::ValidateLimits {
        queues_per_core: opts.max_queues,
    };
    if opts.passes.validate_between_passes {
        phloem_ir::validate_pipeline(&pipe, &limits, "emit")
            .map_err(CompileError::InvalidPipeline)?;
    }
    let mut last_pass = "emit";
    if opts.passes.use_ra {
        ra::extract(&mut pipe, &nf.arrays, opts.max_ras);
        last_pass = "ra-extract";
        if opts.passes.validate_between_passes {
            phloem_ir::validate_pipeline(&pipe, &limits, last_pass)
                .map_err(CompileError::InvalidPipeline)?;
        }
    }
    pipe.check(opts.max_queues, opts.smt_threads, opts.max_ras)
        .map_err(|e| CompileError::Unsupported(e.to_string()))?;
    phloem_ir::validate_pipeline(&pipe, &limits, last_pass)
        .map_err(CompileError::InvalidPipeline)?;
    Ok(pipe)
}

/// Static compilation mode (Sec. V): ranks decoupling points with the
/// cost model and cuts at the top `n_stages - 1`.
///
/// # Errors
/// See [`decouple_with_cuts`]; additionally falls back to fewer stages
/// if a cut combination is illegal.
pub fn compile_static(
    func: &Function,
    n_stages: usize,
    opts: &CompileOptions,
) -> Result<Pipeline, CompileError> {
    let a = analyze(func);
    let cand = a.candidates();
    let take = (n_stages.saturating_sub(1)).min(cand.len());
    let mut cuts: Vec<LoadId> = cand.into_iter().take(take).collect();
    loop {
        match decouple_with_cuts(func, &cuts, opts) {
            Ok(p) => return Ok(p),
            Err(e) if cuts.is_empty() => return Err(e),
            Err(_) => {
                cuts.pop();
            }
        }
    }
}

fn load_positions(body: &[Stmt]) -> Vec<(LoadId, usize)> {
    // Position = preorder atom index, matching TreeBuilder.
    let mut out = Vec::new();
    let mut pos = 0usize;
    fn walk(body: &[Stmt], pos: &mut usize, out: &mut Vec<(LoadId, usize)>) {
        for s in body {
            match s {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, pos, out);
                    walk(else_body, pos, out);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, pos, out),
                atom => {
                    if let Stmt::Assign {
                        expr: Expr::Load { id, .. },
                        ..
                    } = atom
                    {
                        out.push((*id, *pos));
                    }
                    *pos += 1;
                }
            }
        }
    }
    walk(body, &mut pos, &mut out);
    out
}
