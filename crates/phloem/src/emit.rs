//! Emission: materializing one stage program per pipeline stage from the
//! decoupling [`Plan`].
//!
//! Every stage receives a copy of the control skeleton it participates
//! in. Atoms it owns are emitted verbatim (followed by enqueues of values
//! consumers need); atoms owned upstream become dequeues (or local
//! recomputation). Loops are emitted per their planned mode: `Bounds`
//! (local or dequeued bounds), `Cv` (`while (true)` + control values), or
//! `Transparent` (skipped entirely — pass 6). End-of-loop `NEXT` CVs and
//! the final `DONE` are enqueued by the stage producing the consumer's
//! carrier queue.

use crate::decouple::{next_tag, LoopMode, Node, Plan, DONE};
use crate::options::CompileError;
use phloem_ir::{
    BinOp, BranchId, CtrlHandler, Expr, Function, HandlerEnd, QueueId, StageProgram, Stmt, Ty,
    UnOp, VarDecl, VarId,
};

pub(crate) struct Emitter<'p> {
    plan: &'p Plan,
    s: u32,
    /// Emitted-loop stack: (source loop tag, mode).
    loop_stack: Vec<(usize, LoopMode)>,
    /// Source-loop stack: (tag, emitted?).
    src_stack: Vec<(usize, bool)>,
    /// Loop-stack snapshot at each carrier dequeue site, keyed by def pos.
    carrier_sites: Vec<(usize, Vec<(usize, LoopMode)>)>,
    /// Nonzero while emitting the branches of a loop-exit test: its
    /// `break`s are loop skeleton and every stage that emits the loop
    /// must replicate them, owner or not.
    exit_depth: usize,
    /// Scratch variable for inline control-tag checks.
    ctrl_tmp: Option<VarId>,
    extra_vars: Vec<VarDecl>,
    base_vars: usize,
    next_branch: u32,
    error: Option<CompileError>,
}

impl<'p> Emitter<'p> {
    fn fresh_branch(&mut self) -> BranchId {
        let b = BranchId(self.next_branch);
        self.next_branch += 1;
        b
    }

    fn ctrl_tmp(&mut self) -> VarId {
        if let Some(v) = self.ctrl_tmp {
            return v;
        }
        let v = VarId((self.base_vars + self.extra_vars.len()) as u32);
        self.extra_vars.push(VarDecl {
            name: "_cv".into(),
            ty: Ty::I64,
        });
        self.ctrl_tmp = Some(v);
        v
    }

    /// Loops whose carrier is the def at `pos` (for this stage).
    fn carried_loops(&self, pos: usize) -> Vec<usize> {
        self.plan
            .carrier_pos
            .iter()
            .filter(|((_, u), p)| *u == self.s && **p == pos)
            .map(|((t, _), _)| *t)
            .collect()
    }

    fn is_carrier(&self, pos: usize) -> bool {
        self.plan.done_carrier.get(&self.s) == Some(&pos) || !self.carried_loops(pos).is_empty()
    }

    /// The CV dispatch targets at a carrier dequeue of `pos`: the loops
    /// this queue carries that expect a NEXT, innermost first.
    fn ctrl_targets(&self, pos: usize) -> Vec<(usize, u32)> {
        let carried = self.carried_loops(pos);
        let mut out = Vec::new();
        let depth = self.loop_stack.len();
        for (i, (tag, mode)) in self.loop_stack.iter().enumerate().rev() {
            if *mode == LoopMode::Cv
                && carried.contains(tag)
                && self.plan.need_next.contains(&(*tag, self.s))
            {
                out.push((*tag, (depth - i) as u32));
            }
        }
        out
    }

    fn emit_ctrl_check(&mut self, x: VarId, pos: usize, out: &mut Vec<Stmt>) {
        // if (is_control(x)) { t = ctrl_tag(x); nested tag dispatch }
        let targets = self.ctrl_targets(pos);
        let all = self.loop_stack.len() as u32;
        let t = self.ctrl_tmp();
        let mut inner: Vec<Stmt> = vec![Stmt::Break { levels: all }];
        for (tag, levels) in targets.into_iter().rev() {
            let id = self.fresh_branch();
            inner = vec![Stmt::If {
                id,
                cond: Expr::bin(BinOp::Eq, Expr::var(t), Expr::i64(next_tag(tag) as i64)),
                then_body: vec![Stmt::Break { levels }],
                else_body: inner,
            }];
        }
        let mut body = vec![Stmt::Assign {
            var: t,
            expr: Expr::un(UnOp::CtrlTag, Expr::var(x)),
        }];
        body.extend(inner);
        let id = self.fresh_branch();
        out.push(Stmt::If {
            id,
            cond: Expr::is_ctrl(Expr::var(x)),
            then_body: body,
            else_body: vec![],
        });
    }

    fn innermost_emitted_is_bounds(&self) -> bool {
        self.loop_stack
            .last()
            .map(|(_, m)| *m == LoopMode::Bounds)
            .unwrap_or(false)
    }

    fn emit_seq(&mut self, nodes: &[Node], out: &mut Vec<Stmt>) {
        for n in nodes {
            match n {
                Node::Atom {
                    stmt,
                    stage,
                    def,
                    pos,
                } => self.emit_atom(stmt, *stage, *def, *pos, out),
                Node::If {
                    tag,
                    id,
                    cond,
                    then,
                    els,
                    exit,
                } => {
                    if *exit {
                        // Loop-exit skeleton: emitted only in Bounds mode.
                        if self.innermost_emitted_is_bounds() {
                            self.exit_depth += 1;
                            let mut tb = Vec::new();
                            self.emit_seq(then, &mut tb);
                            let mut eb = Vec::new();
                            self.emit_seq(els, &mut eb);
                            self.exit_depth -= 1;
                            out.push(Stmt::If {
                                id: *id,
                                cond: cond.clone(),
                                then_body: tb,
                                else_body: eb,
                            });
                        } else if crate::decouple::node_present(self.plan, n, self.s) {
                            self.error.get_or_insert(CompileError::Unsupported(
                                "stage-owned work inside a loop-exit test of a \
                                 control-value loop"
                                    .into(),
                            ));
                        }
                        continue;
                    }
                    if !crate::decouple::node_present(self.plan, n, self.s) {
                        continue;
                    }
                    if self.plan.dropped.contains(&(*tag, self.s)) {
                        self.emit_seq(then, out);
                        continue;
                    }
                    let mut tb = Vec::new();
                    self.emit_seq(then, &mut tb);
                    let mut eb = Vec::new();
                    self.emit_seq(els, &mut eb);
                    if tb.is_empty() && eb.is_empty() {
                        continue;
                    }
                    out.push(Stmt::If {
                        id: *id,
                        cond: cond.clone(),
                        then_body: tb,
                        else_body: eb,
                    });
                }
                Node::For {
                    tag,
                    id,
                    var,
                    lo,
                    hi,
                    body,
                } => {
                    self.emit_loop(n, *tag, *id, Some((var, lo, hi)), body, out);
                }
                Node::While { tag, id, body } => {
                    self.emit_loop(n, *tag, *id, None, body, out);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_loop(
        &mut self,
        node: &Node,
        tag: usize,
        id: BranchId,
        header: Option<(&VarId, &Expr, &Expr)>,
        body: &[Node],
        out: &mut Vec<Stmt>,
    ) {
        if !crate::decouple::node_present(self.plan, node, self.s) {
            return;
        }
        let mode = self
            .plan
            .modes
            .get(&(tag, self.s))
            .copied()
            .unwrap_or(LoopMode::Bounds);
        match mode {
            LoopMode::Transparent => {
                self.src_stack.push((tag, false));
                self.emit_seq(body, out);
                self.src_stack.pop();
            }
            LoopMode::Bounds => {
                self.loop_stack.push((tag, LoopMode::Bounds));
                self.src_stack.push((tag, true));
                let mut b = Vec::new();
                self.emit_seq(body, &mut b);
                self.src_stack.pop();
                self.loop_stack.pop();
                match header {
                    Some((var, lo, hi)) => out.push(Stmt::For {
                        id,
                        var: *var,
                        start: lo.clone(),
                        end: hi.clone(),
                        body: b,
                    }),
                    None => out.push(Stmt::While {
                        id,
                        cond: Expr::i64(1),
                        body: b,
                    }),
                }
            }
            LoopMode::Cv => {
                self.loop_stack.push((tag, LoopMode::Cv));
                self.src_stack.push((tag, true));
                let mut b = Vec::new();
                self.emit_seq(body, &mut b);
                self.src_stack.pop();
                self.loop_stack.pop();
                out.push(Stmt::While {
                    id,
                    cond: Expr::i64(1),
                    body: b,
                });
            }
        }
        // Producer duties: signal this loop's end to consumers that need
        // its boundary.
        if let Some(duties) = self.plan.next_duties.get(&(tag, self.s)) {
            for (pos, consumer) in duties {
                out.push(Stmt::EnqCtrl {
                    queue: self.plan.queue(*pos, *consumer),
                    ctrl: next_tag(tag),
                });
            }
        }
    }

    fn emit_atom(
        &mut self,
        stmt: &Stmt,
        stage: u32,
        def: Option<VarId>,
        pos: usize,
        out: &mut Vec<Stmt>,
    ) {
        if let Stmt::Break { levels } = stmt {
            // Inside a loop-exit test the break is skeleton, replicated
            // by every stage emitting the loop; elsewhere it belongs to
            // its owner alone.
            if stage != self.s && self.exit_depth == 0 {
                return;
            }
            // Translate source loop levels to emitted loop levels.
            if self.innermost_emitted_is_bounds() {
                let src_len = self.src_stack.len();
                if (*levels as usize) > src_len {
                    self.error
                        .get_or_insert(CompileError::Internal("break beyond loop stack".into()));
                    return;
                }
                let slice = &self.src_stack[src_len - *levels as usize..];
                if !slice.last().map(|(_, e)| *e).unwrap_or(false) {
                    self.error.get_or_insert(CompileError::Unsupported(
                        "break targets a loop this stage does not emit".into(),
                    ));
                    return;
                }
                let emitted = slice.iter().filter(|(_, e)| *e).count() as u32;
                out.push(Stmt::Break { levels: emitted });
            }
            return;
        }
        if stage == self.s {
            out.push(stmt.clone());
            if let Some(v) = def {
                for ((p, consumer), q) in self.plan.comm.range((pos, 0)..(pos + 1, 0)) {
                    debug_assert_eq!(*p, pos);
                    out.push(Stmt::Enq {
                        queue: *q,
                        value: Expr::var(v),
                    });
                    let _ = consumer;
                }
            }
            return;
        }
        let Some(v) = def else { return };
        if self.plan.is_comm(pos, self.s) {
            let q = self.plan.queue(pos, self.s);
            out.push(Stmt::Deq { var: v, queue: q });
            if self.is_carrier(pos) {
                if self.plan.passes.use_handlers {
                    self.carrier_sites.push((pos, self.loop_stack.clone()));
                } else {
                    self.emit_ctrl_check(v, pos, out);
                }
            }
        } else if self.plan.recomp.contains(&(pos, self.s)) {
            let d = &self.plan.defs[&pos];
            if let Some(e) = &d.expr {
                out.push(Stmt::Assign {
                    var: v,
                    expr: e.clone(),
                });
            }
        }
    }
}

/// Emits the stage program for stage `s`. Returns `None` if the stage has
/// no content (it will be compacted away).
pub(crate) fn emit_stage(
    plan: &Plan,
    tree: &[Node],
    base: &Function,
    s: u32,
    name: &str,
) -> Result<Option<StageProgram>, CompileError> {
    let mut em = Emitter {
        plan,
        s,
        loop_stack: Vec::new(),
        src_stack: Vec::new(),
        carrier_sites: Vec::new(),
        exit_depth: 0,
        ctrl_tmp: None,
        extra_vars: Vec::new(),
        base_vars: base.vars.len(),
        next_branch: base.next_branch_id().0 + 1,
        error: None,
    };
    let mut body = Vec::new();
    em.emit_seq(tree, &mut body);
    if let Some(e) = em.error.take() {
        return Err(e);
    }

    // Trailing DONE duties.
    if let Some(duties) = plan.done_duties.get(&s) {
        for (pos, consumer) in duties {
            body.push(Stmt::EnqCtrl {
                queue: plan.queue(*pos, *consumer),
                ctrl: DONE,
            });
        }
    }
    if body.is_empty() {
        return Ok(None);
    }

    // Handlers (pass 5): one per (carrier queue, control value).
    let mut handlers = Vec::new();
    if plan.passes.use_handlers {
        for (pos, site) in &em.carrier_sites {
            let q: QueueId = plan.queue(*pos, s);
            let depth = site.len() as u32;
            let carried: Vec<usize> = plan
                .carrier_pos
                .iter()
                .filter(|((_, u), p)| *u == s && *p == pos)
                .map(|((t, _), _)| *t)
                .collect();
            for (i, (tag, mode)) in site.iter().enumerate() {
                if *mode == LoopMode::Cv
                    && carried.contains(tag)
                    && plan.need_next.contains(&(*tag, s))
                {
                    handlers.push(CtrlHandler {
                        queue: q,
                        ctrl: Some(next_tag(*tag)),
                        bind: None,
                        body: vec![],
                        end: HandlerEnd::BreakLoops(depth - i as u32),
                    });
                }
            }
            if plan.done_carrier.get(&s) == Some(pos) {
                handlers.push(CtrlHandler {
                    queue: q,
                    ctrl: Some(DONE),
                    bind: None,
                    body: vec![],
                    end: HandlerEnd::BreakLoops(depth),
                });
            }
        }
    }

    let mut vars = base.vars.clone();
    vars.extend(em.extra_vars);
    let func = Function {
        name: format!("{name}:s{s}"),
        vars,
        arrays: base.arrays.clone(),
        params: base.params.clone(),
        body,
    };
    Ok(Some(StageProgram { func, handlers }))
}
