//! Decoupling: slicing a serial loop nest into pipeline stages.
//!
//! Given N-1 *cut loads*, every atom is assigned to a stage (the stage of
//! its dependences, its controlling conditions, and — for accesses to
//! written arrays — its race group, per Fig. 4). Values defined in one
//! stage and used in a later one flow through queues; the planner then
//! applies the paper's passes 2 and 4-6 to shrink communication:
//!
//! * **recompute** (pass 2): cheap pure defs are rematerialized in the
//!   consumer instead of queued;
//! * **control values** (pass 4): loops whose bounds would need queues
//!   become `while (true)` streams terminated by in-band CVs;
//! * **control-value handlers** (pass 5): CV checks move out of inner
//!   loops into hardware handlers;
//! * **inter-stage DCE** (pass 6): loop-boundary CVs nobody needs are
//!   never sent, letting consumers collapse loop nests into flat streams
//!   (*transparent* loops below).
//!
//! Reference-accelerator extraction (pass 3) runs afterwards in
//! [`crate::ra`].

use crate::options::{CompileError, PassConfig};
use phloem_ir::{ArrayId, BranchId, Expr, LoadId, QueueId, Stmt, VarId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Control value tag signalling end-of-pipeline.
pub const DONE: u32 = 0;

/// Control value tag for the end of loop `tag` (one per loop site).
pub fn next_tag(loop_tag: usize) -> u32 {
    1 + loop_tag as u32
}

/// Options for [`crate::decouple_with_cuts`].
#[derive(Clone, Debug)]
pub struct DecoupleOptions {
    /// Pass ablation switches.
    pub passes: PassConfig,
    /// Pipeline name.
    pub name: String,
    /// SMT threads per core (stages spill to the next core beyond this).
    pub smt_threads: usize,
    /// Hardware queue budget.
    pub max_queues: u16,
    /// First core to place stages on.
    pub start_core: usize,
}

impl Default for DecoupleOptions {
    fn default() -> Self {
        DecoupleOptions {
            passes: PassConfig::all(),
            name: "pipeline".into(),
            smt_threads: 4,
            max_queues: 16,
            start_core: 0,
        }
    }
}

/// The decoupled program tree with stage annotations.
#[derive(Debug)]
pub(crate) enum Node {
    Atom {
        stmt: Stmt,
        stage: u32,
        def: Option<VarId>,
        pos: usize,
    },
    If {
        tag: usize,
        id: BranchId,
        cond: Expr,
        then: Vec<Node>,
        els: Vec<Node>,
        exit: bool,
    },
    For {
        tag: usize,
        id: BranchId,
        var: VarId,
        lo: Expr,
        hi: Expr,
        body: Vec<Node>,
    },
    While {
        tag: usize,
        id: BranchId,
        body: Vec<Node>,
    },
}

impl Node {
    pub(crate) fn is_loop(&self) -> bool {
        matches!(self, Node::For { .. } | Node::While { .. })
    }

    pub(crate) fn tag(&self) -> Option<usize> {
        match self {
            Node::If { tag, .. } | Node::For { tag, .. } | Node::While { tag, .. } => Some(*tag),
            Node::Atom { .. } => None,
        }
    }
}

#[derive(Default)]
pub(crate) struct TreeBuilder {
    next_tag: usize,
    next_pos: usize,
}

impl TreeBuilder {
    pub(crate) fn build(&mut self, stmts: &[Stmt]) -> Result<Vec<Node>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::If {
                    id,
                    cond,
                    then_body,
                    else_body,
                } => {
                    let exit = then_body
                        .iter()
                        .chain(else_body)
                        .any(|s| matches!(s, Stmt::Break { .. }));
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    out.push(Node::If {
                        tag,
                        id: *id,
                        cond: cond.clone(),
                        then: self.build(then_body)?,
                        els: self.build(else_body)?,
                        exit,
                    });
                }
                Stmt::For {
                    id,
                    var,
                    start,
                    end,
                    body,
                } => {
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    out.push(Node::For {
                        tag,
                        id: *id,
                        var: *var,
                        lo: start.clone(),
                        hi: end.clone(),
                        body: self.build(body)?,
                    });
                }
                Stmt::While { id, body, .. } => {
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    out.push(Node::While {
                        tag,
                        id: *id,
                        body: self.build(body)?,
                    });
                }
                Stmt::Deq { .. }
                | Stmt::Enq { .. }
                | Stmt::EnqSel { .. }
                | Stmt::EnqCtrl { .. } => {
                    return Err(CompileError::Unsupported(
                        "queue operations in source code".into(),
                    ));
                }
                Stmt::AtomicRmw { .. } => {
                    return Err(CompileError::Unsupported(
                        "atomic operations in source code".into(),
                    ));
                }
                other => {
                    let pos = self.next_pos;
                    self.next_pos += 1;
                    out.push(Node::Atom {
                        stmt: other.clone(),
                        stage: 0,
                        def: other.write(),
                        pos,
                    });
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Stage assignment
// ---------------------------------------------------------------------

struct Stager {
    var_stage: HashMap<VarId, u32>,
    free: HashSet<VarId>,
    overrides: HashMap<LoadId, u32>,
    /// Minimum stage for *any* access (loads and stores) to a written
    /// array: all of its accesses must share one stage (Fig. 4).
    array_floor: HashMap<ArrayId, u32>,
    is_cut: HashSet<LoadId>,
    changed: bool,
    error: Option<CompileError>,
}

impl Stager {
    fn leaf_stage(&self, e: &Expr) -> u32 {
        match e {
            Expr::Var(v) if !self.free.contains(v) => self.var_stage.get(v).copied().unwrap_or(0),
            _ => 0,
        }
    }

    fn expr_stage(&self, e: &Expr) -> u32 {
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        vars.iter()
            .filter(|v| !self.free.contains(v))
            .map(|v| self.var_stage.get(v).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    fn load_of(stmt: &Stmt) -> Option<LoadId> {
        if let Stmt::Assign {
            expr: Expr::Load { id, .. },
            ..
        } = stmt
        {
            Some(*id)
        } else {
            None
        }
    }

    fn assign(&mut self, nodes: &mut [Node], ctrl: u32) {
        let mut ctrl_run = ctrl;
        for n in nodes {
            match n {
                Node::Atom {
                    stmt, stage, def, ..
                } => {
                    let dep = match stmt {
                        Stmt::Assign { expr, .. } => self.expr_stage(expr),
                        Stmt::Store { index, value, .. } => {
                            self.expr_stage(index).max(self.expr_stage(value))
                        }
                        _ => 0,
                    };
                    let mut s = dep.max(ctrl_run);
                    if let Stmt::Store { array, .. } = stmt {
                        if let Some(&f) = self.array_floor.get(array) {
                            s = s.max(f);
                        }
                    }
                    if let Some(lid) = Self::load_of(stmt) {
                        if let Some(&o) = self.overrides.get(&lid) {
                            if dep > o || ctrl_run > o {
                                let what = if self.is_cut.contains(&lid) {
                                    "cut point depends on a later stage"
                                } else {
                                    "a read of a written array cannot run \
                                     before the stage that writes it"
                                };
                                self.error
                                    .get_or_insert(CompileError::RaceViolation(format!(
                                        "{what} (load {lid:?}: dep stage {dep}, \
                                         ctrl {ctrl_run}, forced {o})"
                                    )));
                            }
                            s = s.max(o);
                        }
                    }
                    if s > *stage {
                        *stage = s;
                        self.changed = true;
                    }
                    if let Some(d) = def {
                        let prev = self.var_stage.get(d).copied().unwrap_or(0);
                        let newv = prev.max(*stage);
                        if prev != newv || !self.var_stage.contains_key(d) {
                            self.var_stage.insert(*d, newv);
                            if prev != newv {
                                self.changed = true;
                            }
                        }
                    }
                }
                Node::If {
                    cond,
                    then,
                    els,
                    exit,
                    ..
                } => {
                    let cs = self.leaf_stage(cond);
                    let inner = ctrl_run.max(cs);
                    self.assign(then, inner);
                    self.assign(els, inner);
                    if *exit {
                        // Statements after a loop-exit test are control
                        // dependent on it.
                        ctrl_run = ctrl_run.max(cs);
                    }
                }
                Node::For {
                    var, lo, hi, body, ..
                } => {
                    let bs = self.leaf_stage(lo).max(self.leaf_stage(hi));
                    let added = self.free.insert(*var);
                    self.assign(body, ctrl_run.max(bs));
                    if added {
                        self.free.remove(var);
                    }
                }
                Node::While { body, .. } => {
                    self.assign(body, ctrl_run);
                }
            }
        }
    }
}

fn for_each_atom<'a>(nodes: &'a [Node], f: &mut impl FnMut(&'a Node)) {
    for n in nodes {
        match n {
            Node::Atom { .. } => f(n),
            Node::If { then, els, .. } => {
                for_each_atom(then, f);
                for_each_atom(els, f);
            }
            Node::For { body, .. } | Node::While { body, .. } => for_each_atom(body, f),
        }
    }
}

pub(crate) fn max_stage(nodes: &[Node]) -> u32 {
    let mut m = 0;
    for_each_atom(nodes, &mut |n| {
        if let Node::Atom { stage, .. } = n {
            m = m.max(*stage);
        }
    });
    m
}

/// Assigns stages in place; returns the stage count (before compaction).
pub(crate) fn assign_stages(
    tree: &mut [Node],
    params: &[VarId],
    cuts: &[(LoadId, u32)],
) -> Result<u32, CompileError> {
    let mut written = HashSet::new();
    for_each_atom(tree, &mut |n| {
        if let Node::Atom {
            stmt: Stmt::Store { array, .. },
            ..
        } = n
        {
            written.insert(*array);
        }
    });
    let mut all_loads: Vec<(LoadId, ArrayId)> = Vec::new();
    for_each_atom(tree, &mut |n| {
        if let Node::Atom {
            stmt:
                Stmt::Assign {
                    expr: Expr::Load { id, array, .. },
                    ..
                },
            ..
        } = n
        {
            all_loads.push((*id, *array));
        }
    });

    let mut stager = Stager {
        var_stage: HashMap::new(),
        free: params.iter().copied().collect(),
        overrides: cuts.iter().copied().collect(),
        array_floor: HashMap::new(),
        is_cut: cuts.iter().map(|(l, _)| *l).collect(),
        changed: true,
        error: None,
    };
    for _round in 0..24 {
        let mut inner = 0;
        while stager.changed {
            stager.changed = false;
            stager.assign(tree, 0);
            if let Some(e) = stager.error.take() {
                return Err(e);
            }
            inner += 1;
            if inner > 64 {
                return Err(CompileError::Internal("staging did not converge".into()));
            }
        }
        // Written-array grouping (the Fig. 4 race rule): all accesses to
        // a written array land in the stage of its latest access.
        let mut acc: HashMap<ArrayId, u32> = HashMap::new();
        for_each_atom(tree, &mut |n| {
            if let Node::Atom { stmt, stage, .. } = n {
                let arr = match stmt {
                    Stmt::Store { array, .. } => Some(*array),
                    Stmt::Assign {
                        expr: Expr::Load { array, .. },
                        ..
                    } => Some(*array),
                    _ => None,
                };
                if let Some(a) = arr {
                    if written.contains(&a) {
                        let e = acc.entry(a).or_insert(0);
                        *e = (*e).max(*stage);
                    }
                }
            }
        });
        let mut changed = false;
        for &(lid, arr) in &all_loads {
            if let Some(&s) = acc.get(&arr) {
                let cur = stager.overrides.get(&lid).copied().unwrap_or(0);
                if cur < s {
                    stager.overrides.insert(lid, s);
                    changed = true;
                }
            }
        }
        // Stores must also move up to the group's stage (a cut can pull
        // a load past a store of the same array).
        for (&arr, &s) in &acc {
            let cur = stager.array_floor.get(&arr).copied().unwrap_or(0);
            if cur < s {
                stager.array_floor.insert(arr, s);
                changed = true;
            }
        }
        if !changed {
            return Ok(max_stage(tree) + 1);
        }
        stager.changed = true;
    }
    Err(CompileError::Internal(
        "write-constraint fixpoint did not converge".into(),
    ))
}

// ---------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------

/// Per-def-atom information.
#[derive(Clone, Debug)]
pub(crate) struct DefInfo {
    pub var: VarId,
    pub stage: u32,
    pub expr: Option<Expr>,
}

/// How a loop is realized in one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LoopMode {
    /// `for` (or `while` + exit test) with locally available bounds.
    Bounds,
    /// `while (true)` terminated by in-band control values.
    Cv,
    /// Not emitted: its single nested stream flows through (pass-6 DCE).
    Transparent,
}

/// The full communication/control plan shared by all stages.
#[derive(Debug, Default)]
pub(crate) struct Plan {
    /// Communicated pairs `(def pos, consumer stage) -> queue`.
    pub comm: BTreeMap<(usize, u32), QueueId>,
    /// Recomputed pairs `(def pos, consumer stage)`.
    pub recomp: BTreeSet<(usize, u32)>,
    /// Def atoms by position.
    pub defs: BTreeMap<usize, DefInfo>,
    /// Def positions of each var.
    pub defs_of_var: BTreeMap<VarId, Vec<usize>>,
    /// Stages using each var (data + structural uses).
    pub uses: BTreeMap<VarId, BTreeSet<u32>>,
    /// Loop mode per (loop tag, stage); present loops only.
    pub modes: HashMap<(usize, u32), LoopMode>,
    /// Consumers that need the end-of-loop CV: (loop tag, stage).
    pub need_next: BTreeSet<(usize, u32)>,
    /// Dropped filter-ifs: (if tag, stage).
    pub dropped: BTreeSet<(usize, u32)>,
    /// Carrier def position per (CV loop tag, consumer stage).
    pub carrier_pos: HashMap<(usize, u32), usize>,
    /// The def position whose queue delivers DONE, per consumer stage.
    pub done_carrier: HashMap<u32, usize>,
    /// Stages whose outermost emitted loop is CV (they end on DONE).
    pub done_need: BTreeSet<u32>,
    /// NEXT duties: (loop tag, producer stage) -> [(carrier def pos, consumer)].
    pub next_duties: BTreeMap<(usize, u32), Vec<(usize, u32)>>,
    /// DONE duties: producer stage -> [(carrier def pos, consumer)].
    pub done_duties: BTreeMap<u32, Vec<(usize, u32)>>,
    /// Free variables (params; loop vars are handled structurally).
    pub free: HashSet<VarId>,
    /// Loop variables (local to every participant of their loop).
    pub loop_vars: HashSet<VarId>,
    /// Loop tag owning each induction variable.
    pub loop_of_var: HashMap<VarId, usize>,
    /// Number of stages (before compaction; used by diagnostics).
    #[allow(dead_code)]
    pub nstages: u32,
    /// Pass switches.
    pub passes: PassConfig,
}

impl Plan {
    pub fn is_comm(&self, pos: usize, s: u32) -> bool {
        self.comm.contains_key(&(pos, s))
    }

    pub fn queue(&self, pos: usize, s: u32) -> QueueId {
        self.comm[&(pos, s)]
    }

    /// Is var `v` free (param or loop variable)?
    pub fn is_free(&self, v: VarId) -> bool {
        self.free.contains(&v) || self.loop_vars.contains(&v)
    }
}

fn leaf_var(e: &Expr) -> Option<VarId> {
    if let Expr::Var(v) = e {
        Some(*v)
    } else {
        None
    }
}

/// Is this atom emitted for stage `s` (given current uses)?
fn atom_present(plan: &Plan, stage: u32, def: Option<VarId>, s: u32) -> bool {
    if stage == s {
        return true;
    }
    if let Some(v) = def {
        return plan.uses.get(&v).map(|u| u.contains(&s)).unwrap_or(false);
    }
    false
}

pub(crate) fn node_present(plan: &Plan, n: &Node, s: u32) -> bool {
    match n {
        Node::Atom {
            stage, def, stmt, ..
        } => {
            if matches!(stmt, Stmt::Break { .. }) {
                return false; // skeleton; emitted with its exit-if
            }
            atom_present(plan, *stage, *def, s)
        }
        Node::If {
            then, els, exit, ..
        } => {
            if *exit {
                // Exit tests are skeleton: present wherever the loop is.
                return false;
            }
            then.iter().any(|c| node_present(plan, c, s))
                || els.iter().any(|c| node_present(plan, c, s))
        }
        Node::For { body, .. } | Node::While { body, .. } => {
            body.iter().any(|c| node_present(plan, c, s))
        }
    }
}

/// All defs of `v` are available at stage `s` without a queue or with one
/// that is already planned (preliminary version used during planning:
/// a def is local only if its stage is `s`).
fn var_local(plan: &Plan, v: VarId, s: u32) -> bool {
    if plan.is_free(v) {
        return true;
    }
    match plan.defs_of_var.get(&v) {
        None => true, // never defined: implicit zero everywhere
        Some(ds) => ds.iter().all(|p| plan.defs[p].stage == s),
    }
}

/// First def position inside a subtree whose value stage `s` consumes.
fn first_use_inside(plan: &Plan, nodes: &[Node], s: u32) -> Option<usize> {
    let mut best: Option<usize> = None;
    for_each_atom(nodes, &mut |n| {
        if let Node::Atom {
            def: Some(v),
            pos,
            stage,
            ..
        } = n
        {
            if *stage != s
                && plan.uses.get(v).map(|u| u.contains(&s)).unwrap_or(false)
                && best.map(|b| *pos < b).unwrap_or(true)
            {
                best = Some(*pos);
            }
        }
    });
    best
}

pub(crate) struct Planner<'t> {
    pub tree: &'t [Node],
    pub plan: Plan,
    /// Forced queue pairs (carriers must never be recomputed).
    pub forced_comm: BTreeSet<(usize, u32)>,
    /// Loops that must stay emitted for a stage (producer duties).
    pub force_emit: BTreeSet<(usize, u32)>,
    pub error: Option<CompileError>,
}

impl<'t> Planner<'t> {
    /// Effective "stream" mode of a loop for stage `s` (resolving
    /// transparent chains).
    fn streamy(&self, n: &Node, s: u32) -> bool {
        let Some(tag) = n.tag() else { return false };
        match self.plan.modes.get(&(tag, s)) {
            Some(LoopMode::Cv) => true,
            Some(LoopMode::Transparent) => {
                let body = match n {
                    Node::For { body, .. } | Node::While { body, .. } => body,
                    _ => return false,
                };
                body.iter()
                    .filter(|c| node_present(&self.plan, c, s))
                    .all(|c| self.streamy(c, s))
            }
            _ => false,
        }
    }

    /// Plans structures in `nodes` for stage `s`, innermost-first.
    /// `direct_loop: true` when `nodes` is a loop body whose direct
    /// children are eligible for drop-if.
    fn plan_body(&mut self, nodes: &'t [Node], s: u32) {
        for n in nodes {
            match n {
                Node::Atom { .. } => {}
                Node::If {
                    then, els, exit, ..
                } => {
                    self.plan_body(then, s);
                    self.plan_body(els, s);
                    let _ = exit;
                }
                Node::For { body, .. } | Node::While { body, .. } => {
                    if node_present(&self.plan, n, s) {
                        self.plan_loop(n, body, s);
                    }
                }
            }
        }
    }

    fn exit_cond_vars(body: &[Node]) -> Vec<VarId> {
        body.iter()
            .filter_map(|n| match n {
                Node::If {
                    cond, exit: true, ..
                } => leaf_var(cond),
                _ => None,
            })
            .collect()
    }

    fn register_if_conds(&mut self, nodes: &'t [Node], s: u32) {
        // Register condition uses for all *kept* present ifs in this
        // subtree (dropped ifs were excluded before this call).
        for n in nodes {
            if let Node::If {
                tag,
                cond,
                then,
                els,
                exit,
                ..
            } = n
            {
                if !exit
                    && !self.plan.dropped.contains(&(*tag, s))
                    && node_present(&self.plan, n, s)
                {
                    if let Some(v) = leaf_var(cond) {
                        if !var_local(&self.plan, v, s) {
                            self.plan.uses.entry(v).or_default().insert(s);
                        }
                    }
                }
                self.register_if_conds(then, s);
                self.register_if_conds(els, s);
            }
        }
    }

    fn plan_loop(&mut self, node: &'t Node, body: &'t [Node], s: u32) {
        // Children first.
        self.plan_body(body, s);

        let Some(tag) = node.tag() else {
            self.error.get_or_insert(CompileError::Internal(
                "loop node without a structure tag".into(),
            ));
            return;
        };
        let passes = self.plan.passes;

        // Does stage `s` read this loop's induction variable (directly,
        // or via a def it may recompute locally)? CV mode loses the
        // induction variable, so such loops must keep `for` structure.
        let needs_var = match node {
            Node::For { var, .. } => {
                let mut found = false;
                fn scan(nodes: &[Node], var: VarId, s: u32, found: &mut bool) {
                    for n in nodes {
                        match n {
                            Node::Atom { stmt, stage, .. } => {
                                // Only atoms the stage *owns* need the
                                // variable; values it consumes arrive via
                                // queues (loop-var-reading defs are never
                                // recomputed cross-stage, see
                                // `partition_comm`).
                                if *stage == s && stmt.header_reads().contains(&var) {
                                    *found = true;
                                }
                            }
                            Node::If { then, els, .. } => {
                                scan(then, var, s, found);
                                scan(els, var, s, found);
                            }
                            Node::For { body, .. } | Node::While { body, .. } => {
                                scan(body, var, s, found)
                            }
                        }
                    }
                }
                scan(body, *var, s, &mut found);
                found
            }
            _ => false,
        };

        // Present direct children.
        let present: Vec<&Node> = body
            .iter()
            .filter(|c| node_present(&self.plan, c, s))
            .collect();

        // Transparency (pass 6): the loop's only content for `s` is a
        // single nested stream.
        if passes.isdce
            && !needs_var
            && !self.force_emit.contains(&(tag, s))
            && present.len() == 1
            && present[0].is_loop()
            && self.streamy(present[0], s)
        {
            self.plan.modes.insert((tag, s), LoopMode::Transparent);
            return;
        }

        // Drop-if (filter pattern): sole present child is an if whose
        // condition lives upstream.
        let mut force_cv = false;
        if passes.use_cv && present.len() == 1 {
            if let Node::If {
                tag: if_tag,
                cond,
                els,
                exit: false,
                ..
            } = present[0]
            {
                let cond_nonlocal = leaf_var(cond)
                    .map(|v| !var_local(&self.plan, v, s))
                    .unwrap_or(false);
                let els_present = els.iter().any(|c| node_present(&self.plan, c, s));
                if cond_nonlocal && !els_present {
                    self.plan.dropped.insert((*if_tag, s));
                    force_cv = true;
                }
            }
        }

        // Register kept-if condition uses inside this loop body (direct
        // and nested ifs not owned by deeper loops are all handled when
        // their innermost enclosing loop is planned; to keep it simple we
        // register for the whole subtree minus nested loops' bodies —
        // registering twice is harmless since `uses` is a set).
        self.register_if_conds(body, s);

        // Loop bound (or while-exit condition) variables.
        let bound_vars: Vec<VarId> = match node {
            Node::For { lo, hi, .. } => {
                [leaf_var(lo), leaf_var(hi)].into_iter().flatten().collect()
            }
            Node::While { .. } => Self::exit_cond_vars(body),
            _ => unreachable!(),
        };
        let bounds_local = bound_vars.iter().all(|v| var_local(&self.plan, *v, s));

        // Stream-consumer mode: a stage that consumes values prefers CV
        // termination even with a locally known trip count (needed
        // upstream of distribute boundaries).
        let force_stream = passes.stream_consumers
            && passes.use_cv
            && !needs_var
            && first_use_inside(&self.plan, body, s).is_some();
        if bounds_local && !force_cv && !force_stream {
            self.plan.modes.insert((tag, s), LoopMode::Bounds);
            return;
        }

        // CV mode if allowed and a carrier stream exists.
        if passes.use_cv && !needs_var {
            if let Some(carrier) = first_use_inside(&self.plan, body, s) {
                self.plan.modes.insert((tag, s), LoopMode::Cv);
                self.forced_comm.insert((carrier, s));
                self.plan.carrier_pos.insert((tag, s), carrier);
                return;
            }
        }
        if force_cv {
            self.error.get_or_insert(CompileError::Internal(
                "drop-if without a carrier stream".into(),
            ));
        }

        // Fall back to communicated bounds.
        for v in &bound_vars {
            if !var_local(&self.plan, *v, s) {
                self.plan.uses.entry(*v).or_default().insert(s);
            }
        }
        self.plan.modes.insert((tag, s), LoopMode::Bounds);
    }

    /// Phase B for stage `s`: NEXT/DONE needs and producer duties.
    fn plan_ctrl(&mut self, nodes: &'t [Node], s: u32, enclosing_emitted: bool) {
        for n in nodes {
            match n {
                Node::Atom { .. } => {}
                Node::If { then, els, .. } => {
                    self.plan_ctrl(then, s, enclosing_emitted);
                    self.plan_ctrl(els, s, enclosing_emitted);
                }
                Node::For { tag, body, .. } | Node::While { tag, body, .. } => {
                    if !node_present(&self.plan, n, s) {
                        continue;
                    }
                    match self.plan.modes.get(&(*tag, s)) {
                        Some(LoopMode::Transparent) => {
                            self.plan_ctrl(body, s, enclosing_emitted);
                        }
                        Some(LoopMode::Cv) => {
                            if enclosing_emitted {
                                self.plan.need_next.insert((*tag, s));
                            }
                            self.plan_ctrl(body, s, true);
                        }
                        _ => {
                            self.plan_ctrl(body, s, true);
                        }
                    }
                }
            }
        }
    }

    /// Determines DONE routing for stage `s` and registers NEXT/DONE
    /// duties on the producers of the relevant carrier queues.
    fn finish_stage(&mut self, s: u32) {
        // DONE need: the outermost emitted structure is a CV loop; DONE
        // arrives on *that* loop's carrier (where the stage blocks after
        // all inner streams drained).
        let mut cur: &[Node] = self.tree;
        while let Some(first) = cur
            .iter()
            .find(|n| n.is_loop() && node_present(&self.plan, n, s))
        {
            let Some(tag) = first.tag() else {
                self.error.get_or_insert(CompileError::Internal(
                    "loop node without a structure tag".into(),
                ));
                return;
            };
            match self.plan.modes.get(&(tag, s)) {
                Some(LoopMode::Transparent) => {
                    cur = match first {
                        Node::For { body, .. } | Node::While { body, .. } => body,
                        _ => unreachable!(),
                    };
                }
                Some(LoopMode::Cv) => {
                    self.plan.done_need.insert(s);
                    let Some(&pos) = self.plan.carrier_pos.get(&(tag, s)) else {
                        self.error.get_or_insert(CompileError::Internal(
                            "CV-mode loop without a carrier stream".into(),
                        ));
                        return;
                    };
                    self.plan.done_carrier.insert(s, pos);
                    break;
                }
                _ => break,
            }
        }

        // Register duties on producers.
        if let Some(&pos) = self.plan.done_carrier.get(&s) {
            let Some(def) = self.plan.defs.get(&pos) else {
                self.error.get_or_insert(CompileError::Internal(
                    "carrier position has no defining atom".into(),
                ));
                return;
            };
            let producer = def.stage;
            self.plan
                .done_duties
                .entry(producer)
                .or_default()
                .push((pos, s));
        }
        let needs: Vec<usize> = self
            .plan
            .need_next
            .iter()
            .filter(|(_, u)| *u == s)
            .map(|(t, _)| *t)
            .collect();
        for tag in needs {
            let Some(&pos) = self.plan.carrier_pos.get(&(tag, s)) else {
                self.error.get_or_insert(CompileError::Internal(
                    "NEXT-needing loop without a carrier stream".into(),
                ));
                return;
            };
            let Some(def) = self.plan.defs.get(&pos) else {
                self.error.get_or_insert(CompileError::Internal(
                    "carrier position has no defining atom".into(),
                ));
                return;
            };
            let producer = def.stage;
            self.plan
                .next_duties
                .entry((tag, producer))
                .or_default()
                .push((pos, s));
            self.force_emit.insert((tag, producer));
        }
    }
}

/// Runs planning over all stages; fills everything in [`Plan`] except
/// the final comm/recompute partition and queue ids (see
/// [`partition_comm`]).
pub(crate) fn plan(
    tree: &[Node],
    params: &[VarId],
    nstages: u32,
    passes: PassConfig,
) -> Result<(Plan, BTreeSet<(usize, u32)>), CompileError> {
    let mut plan = Plan {
        free: params.iter().copied().collect(),
        nstages,
        passes,
        ..Default::default()
    };
    // Collect defs, loop vars, and data uses.
    fn collect(plan: &mut Plan, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Atom {
                    stmt,
                    stage,
                    def,
                    pos,
                } => {
                    if let Some(v) = def {
                        let expr = match stmt {
                            Stmt::Assign { expr, .. } => Some(expr.clone()),
                            _ => None,
                        };
                        plan.defs.insert(
                            *pos,
                            DefInfo {
                                var: *v,
                                stage: *stage,
                                expr,
                            },
                        );
                        plan.defs_of_var.entry(*v).or_default().push(*pos);
                    }
                }
                Node::If { then, els, .. } => {
                    collect(plan, then);
                    collect(plan, els);
                }
                Node::For { var, tag, body, .. } => {
                    plan.loop_vars.insert(*var);
                    plan.loop_of_var.insert(*var, *tag);
                    collect(plan, body);
                }
                Node::While { body, .. } => collect(plan, body),
            }
        }
    }
    collect(&mut plan, tree);

    fn data_uses(plan: &mut Plan, nodes: &[Node]) {
        let mut pending: Vec<(VarId, u32)> = Vec::new();
        for_each_atom_local(nodes, &mut |stmt: &Stmt, stage: u32| {
            for r in stmt.header_reads() {
                pending.push((r, stage));
            }
        });
        for (r, s) in pending {
            if plan.is_free(r) {
                continue;
            }
            let has_nonlocal_def = plan
                .defs_of_var
                .get(&r)
                .map(|ds| ds.iter().any(|p| plan.defs[p].stage != s))
                .unwrap_or(false);
            if has_nonlocal_def {
                plan.uses.entry(r).or_default().insert(s);
            }
        }
    }
    fn for_each_atom_local(nodes: &[Node], f: &mut impl FnMut(&Stmt, u32)) {
        for n in nodes {
            match n {
                Node::Atom { stmt, stage, .. } => f(stmt, *stage),
                Node::If { then, els, .. } => {
                    for_each_atom_local(then, f);
                    for_each_atom_local(els, f);
                }
                Node::For { body, .. } | Node::While { body, .. } => for_each_atom_local(body, f),
            }
        }
    }
    data_uses(&mut plan, tree);

    let mut planner = Planner {
        tree,
        plan,
        forced_comm: BTreeSet::new(),
        force_emit: BTreeSet::new(),
        error: None,
    };
    for s in (0..nstages).rev() {
        planner.plan_body(tree, s);
        planner.plan_ctrl(tree, s, false);
        planner.finish_stage(s);
        if let Some(e) = planner.error.take() {
            return Err(e);
        }
    }
    Ok((planner.plan, planner.forced_comm))
}

/// Computes a straight-line group id per def position: consecutive atoms
/// in the same body (with no intervening control structure) share a
/// group. Values defined in one group and consumed by the same stage can
/// share a queue — the hardware sees them in producer program order
/// either way, and this is what lets adjacent loads (`nodes[v]`,
/// `nodes[v+1]`) feed a single reference accelerator.
pub(crate) fn def_groups(tree: &[Node]) -> HashMap<usize, usize> {
    let mut groups = HashMap::new();
    let mut next_group = 0usize;
    fn walk(nodes: &[Node], groups: &mut HashMap<usize, usize>, next_group: &mut usize) {
        let mut current: Option<usize> = None;
        for n in nodes {
            match n {
                Node::Atom { pos, def, .. } => {
                    if def.is_some() {
                        let g = *current.get_or_insert_with(|| {
                            let g = *next_group;
                            *next_group += 1;
                            g
                        });
                        groups.insert(*pos, g);
                    }
                }
                Node::If { then, els, .. } => {
                    current = None;
                    walk(then, groups, next_group);
                    walk(els, groups, next_group);
                }
                Node::For { body, .. } | Node::While { body, .. } => {
                    current = None;
                    walk(body, groups, next_group);
                }
            }
        }
    }
    walk(tree, &mut groups, &mut next_group);
    groups
}

/// Partitions uses into queues vs. recomputation (pass 2) and assigns
/// queue ids, merging same-group same-stage defs bound for the same
/// consumer into one queue.
pub(crate) fn partition_comm(
    plan: &mut Plan,
    forced: &BTreeSet<(usize, u32)>,
    groups: &HashMap<usize, usize>,
    max_queues: u16,
) -> Result<(), CompileError> {
    let recompute_on = plan.passes.recompute;
    let mut decided_comm: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut decided_recomp: BTreeSet<(usize, u32)> = BTreeSet::new();

    let defs: Vec<(usize, DefInfo)> = plan.defs.iter().map(|(p, d)| (*p, d.clone())).collect();
    for (pos, d) in &defs {
        let consumers: Vec<u32> = plan
            .uses
            .get(&d.var)
            .map(|set| set.iter().copied().filter(|s| *s != d.stage).collect())
            .unwrap_or_default();
        for s in consumers {
            let pair = (*pos, s);
            let can_recompute = recompute_on
                && !forced.contains(&pair)
                && match &d.expr {
                    Some(e) if !matches!(e, Expr::Load { .. }) => {
                        let mut vars = Vec::new();
                        e.collect_vars(&mut vars);
                        // Loop-variable-derived values may only be
                        // rematerialized where the consumer emits that
                        // loop with counted (`for`) structure — CV
                        // streams lose induction variables.
                        vars.iter().all(|v| match plan.loop_of_var.get(v) {
                            Some(tag) => plan.modes.get(&(*tag, s)) == Some(&LoopMode::Bounds),
                            None => !plan.loop_vars.contains(v),
                        }) && vars.iter().all(|v| {
                            plan.is_free(*v)
                                || plan
                                    .defs_of_var
                                    .get(v)
                                    .map(|ds| {
                                        ds.iter().all(|p2| {
                                            plan.defs[p2].stage == s
                                                || decided_comm.contains(&(*p2, s))
                                                || decided_recomp.contains(&(*p2, s))
                                        })
                                    })
                                    .unwrap_or(true)
                        })
                    }
                    _ => false,
                };
            if can_recompute {
                decided_recomp.insert(pair);
            } else {
                // Loop-carried values (accumulators: the def reads its
                // own variable) cannot be streamed — communicating one
                // per iteration serializes the stages on the reduction
                // chain and doubles traffic (e.g. SDDMM's dense dot
                // product). Reject the cut set; the search falls back.
                let self_carried = d
                    .expr
                    .as_ref()
                    .map(|e| {
                        let mut vars = Vec::new();
                        e.collect_vars(&mut vars);
                        vars.contains(&d.var)
                    })
                    .unwrap_or(false);
                if self_carried {
                    return Err(CompileError::Unsupported(format!(
                        "cut would stream the loop-carried value `{}`                          across stages",
                        plan.defs[pos].var.0
                    )));
                }
                decided_comm.insert(pair);
            }
        }
    }
    // Assign queue ids, sharing one queue among a straight-line group's
    // defs (same producer stage) bound for the same consumer.
    let mut queue_of: BTreeMap<(usize, u32, u32), QueueId> = BTreeMap::new();
    let mut next_q = 0u16;
    for pair in &decided_comm {
        let (pos, consumer) = *pair;
        let group = groups.get(&pos).copied().unwrap_or(usize::MAX - pos);
        let producer = plan.defs[&pos].stage;
        let key = (group, producer, consumer);
        let q = *queue_of.entry(key).or_insert_with(|| {
            let q = QueueId(next_q);
            next_q += 1;
            q
        });
        plan.comm.insert(*pair, q);
    }
    if next_q as usize > max_queues as usize {
        return Err(CompileError::TooManyQueues(
            next_q as usize,
            max_queues as usize,
        ));
    }
    plan.recomp = decided_recomp;
    Ok(())
}
