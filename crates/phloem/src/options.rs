//! Compilation options: the pass-ablation switches of Fig. 6 and
//! compile-time errors.

use phloem_ir::LoadId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of Phloem's six passes run (Sec. IV-B). Pass 1 (add queues) is
/// the decoupling itself and always runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Pass 2: rematerialize cheap values instead of queueing them.
    pub recompute: bool,
    /// Pass 3: offload load-only stages to reference accelerators
    /// (requires control values + handlers in our codegen, matching the
    /// paper's ordering where RAs are applied last).
    pub use_ra: bool,
    /// Pass 4: replace communicated loop bounds with in-band control
    /// values.
    pub use_cv: bool,
    /// Pass 5: use hardware control-value handlers instead of inline
    /// `is_control` checks.
    pub use_handlers: bool,
    /// Pass 6: inter-stage dead code elimination of superfluous control
    /// values (collapses loops whose boundaries no stage needs).
    pub isdce: bool,
    /// Force consumer stages to be stream-terminated (control values
    /// instead of counted loops) even when trip counts are locally
    /// available. Required when the pipeline will be replicated with a
    /// `#pragma distribute` boundary: distribution changes each
    /// replica's item count, so consumers must not count iterations.
    pub stream_consumers: bool,
    /// Debug mode: run the pipeline validator after every pass boundary
    /// (emit, RA extraction, replication) instead of only on the final
    /// pipeline, so a miscompile bisects to the pass that introduced it
    /// (the returned error names that pass).
    #[serde(default)]
    pub validate_between_passes: bool,
}

impl PassConfig {
    /// All passes on (the full Phloem pipeline).
    pub fn all() -> PassConfig {
        PassConfig {
            recompute: true,
            use_ra: true,
            use_cv: true,
            use_handlers: true,
            isdce: true,
            stream_consumers: false,
            validate_between_passes: false,
        }
    }

    /// Pass 1 only: every value goes through a queue (Fig. 6 "Q").
    pub fn queues_only() -> PassConfig {
        PassConfig {
            recompute: false,
            use_ra: false,
            use_cv: false,
            use_handlers: false,
            isdce: false,
            stream_consumers: false,
            validate_between_passes: false,
        }
    }

    /// All passes plus stream-terminated consumers (for replication
    /// with a distribute boundary).
    pub fn all_streaming() -> PassConfig {
        PassConfig {
            stream_consumers: true,
            ..Self::all()
        }
    }

    /// Passes 1-2 (Fig. 6 "R,Q").
    pub fn with_recompute() -> PassConfig {
        PassConfig {
            recompute: true,
            ..Self::queues_only()
        }
    }

    /// Passes 1-2 + control values, no handlers, no DCE (Fig. 6 "CV,R,Q"
    /// — the configuration the paper shows can *hurt*).
    pub fn with_cv() -> PassConfig {
        PassConfig {
            recompute: true,
            use_cv: true,
            ..Self::queues_only()
        }
    }

    /// + inter-stage DCE (Fig. 6 "DCE,CV,R,Q").
    pub fn with_dce() -> PassConfig {
        PassConfig {
            isdce: true,
            ..Self::with_cv()
        }
    }

    /// + control-value handlers (Fig. 6 "CH,DCE,CV,R,Q").
    pub fn with_handlers() -> PassConfig {
        PassConfig {
            use_handlers: true,
            ..Self::with_dce()
        }
    }

    /// Short label for plots ("Q", "R,Q", ... "RA,CH,DCE,CV,R,Q").
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.use_ra {
            parts.push("RA");
        }
        if self.use_handlers {
            parts.push("CH");
        }
        if self.isdce {
            parts.push("DCE");
        }
        if self.use_cv {
            parts.push("CV");
        }
        if self.recompute {
            parts.push("R");
        }
        parts.push("Q");
        parts.join(",")
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Errors raised while decoupling a function.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The requested cut would let a stage read data another stage
    /// writes (the Fig. 4 race).
    RaceViolation(String),
    /// A source construct the decoupler does not support.
    Unsupported(String),
    /// The pipeline needs more queues than the hardware provides.
    TooManyQueues(usize, usize),
    /// A cut load id does not exist in the function.
    UnknownCut(LoadId),
    /// The produced pipeline violates a queue-protocol invariant (see
    /// [`phloem_ir::validate`]); the error names the pass that
    /// introduced it.
    InvalidPipeline(phloem_ir::PipelineError),
    /// Internal invariant violation (a compiler bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::RaceViolation(s) => write!(f, "race violation: {s}"),
            CompileError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            CompileError::TooManyQueues(need, have) => {
                write!(f, "pipeline needs {need} queues, hardware has {have}")
            }
            CompileError::UnknownCut(id) => write!(f, "unknown cut load {id:?}"),
            CompileError::InvalidPipeline(e) => write!(f, "invalid pipeline: {e}"),
            CompileError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}
