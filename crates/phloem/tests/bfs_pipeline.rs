//! End-to-end decoupling tests on the paper's running example: one BFS
//! round (Fig. 1 / Fig. 5). Every pass configuration must preserve the
//! serial semantics, and the fully-optimized pipeline must have the
//! paper's structure: fetch -> chained RAs (nodes, edges) -> update.

use phloem_compiler::{analyze, compile_static, decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::{
    interp, ArrayDecl, Expr, Function, FunctionBuilder, LoadId, MemState, StageKind, Value,
};
use phloem_workloads::graph;

/// One BFS round over the fringe. Reads `fringe_len[0]`, writes
/// `out_len[0]` and updates `dist`/`next_fringe`.
fn bfs_round() -> Function {
    let mut b = FunctionBuilder::new("bfs_round");
    let cd = b.param_i64("cur_dist");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let dist = b.array_i32("dist");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let od = b.var_i64("od");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    b.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lv = f.load(fringe, Expr::var(i));
        f.assign(v, lv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let ln = f.load(edges, Expr::var(j));
            f.assign(ngh, ln);
            let lo = f.load(dist, Expr::var(ngh));
            f.assign(od, lo);
            f.if_then(
                Expr::bin(phloem_ir::BinOp::Gt, Expr::var(od), Expr::var(cd)),
                |f| {
                    f.store(dist, Expr::var(ngh), Expr::var(cd));
                    f.store(nf, Expr::var(len), Expr::var(ngh));
                    f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                },
            );
        });
    });
    b.store(olen, Expr::i64(0), Expr::var(len));
    b.build()
}

struct BfsMem {
    mem: MemState,
    dist: phloem_ir::ArrayId,
    next_fringe: phloem_ir::ArrayId,
    out_len: phloem_ir::ArrayId,
}

fn build_mem(g: &phloem_workloads::Graph, fringe: &[i64]) -> BfsMem {
    let mut mem = MemState::new();
    let n = g.num_vertices;
    let mut fr = fringe.to_vec();
    fr.resize(n.max(fringe.len()), 0);
    let _f = mem.alloc_i64(ArrayDecl::i32("fringe"), fr);
    let _n = mem.alloc_i64(ArrayDecl::i32("nodes"), g.offsets.iter().copied());
    let _e = mem.alloc_i64(ArrayDecl::i32("edges"), g.edges.iter().copied());
    let mut dist0 = vec![i64::MAX; n];
    for &r in fringe {
        dist0[r as usize] = 0;
    }
    let dist = mem.alloc_i64(ArrayDecl::i32("dist"), dist0);
    let next_fringe = mem.alloc(ArrayDecl::i32("next_fringe"), g.num_edges().max(4));
    let _fl = mem.alloc_i64(ArrayDecl::i32("fringe_len"), [fringe.len() as i64]);
    let out_len = mem.alloc(ArrayDecl::i32("out_len"), 1);
    BfsMem {
        mem,
        dist,
        next_fringe,
        out_len,
    }
}

fn serial_result(g: &phloem_workloads::Graph) -> (Vec<i64>, Vec<i64>, i64) {
    let f = bfs_round();
    let m = build_mem(g, &[0]);
    let run = interp::run_serial(&f, m.mem, &[("cur_dist", Value::I64(1))]).unwrap();
    let len = run.mem.i64_vec(m.out_len)[0];
    (
        run.mem.i64_vec(m.dist),
        run.mem.i64_vec(m.next_fringe)[..len as usize].to_vec(),
        len,
    )
}

fn pipeline_result(
    g: &phloem_workloads::Graph,
    cuts: &[LoadId],
    passes: PassConfig,
) -> (Vec<i64>, Vec<i64>, i64, phloem_ir::Pipeline) {
    let f = bfs_round();
    let opts = CompileOptions {
        passes,
        ..Default::default()
    };
    let pipe = decouple_with_cuts(&f, cuts, &opts)
        .unwrap_or_else(|e| panic!("compile failed ({}): {e}", passes.label()));
    let m = build_mem(g, &[0]);
    let run = interp::run_pipeline(&pipe, m.mem, &[("cur_dist", Value::I64(1))], 24)
        .unwrap_or_else(|e| panic!("run failed ({}): {e}", passes.label()));
    let len = run.mem.i64_vec(m.out_len)[0];
    (
        run.mem.i64_vec(m.dist),
        run.mem.i64_vec(m.next_fringe)[..len as usize].to_vec(),
        len,
        pipe,
    )
}

/// The paper's cuts: nodes (pair), edges (scan), dist (update stage).
fn paper_cuts(f: &Function) -> Vec<LoadId> {
    let a = analyze(f);
    // loads: flen, fringe, nodes, nodes+1, edges, dist
    vec![a.loads[2].id, a.loads[4].id, a.loads[5].id]
}

#[test]
fn all_pass_configs_preserve_semantics() {
    let g = graph::power_law(600, 3, 42);
    let (sd, sf, sl) = serial_result(&g);
    assert!(sl > 0, "root must have neighbors");
    let f = bfs_round();
    let cuts = paper_cuts(&f);
    for passes in [
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
    ] {
        let (pd, pf, pl, _) = pipeline_result(&g, &cuts, passes);
        assert_eq!(pl, sl, "next fringe length ({})", passes.label());
        assert_eq!(pd, sd, "distances ({})", passes.label());
        assert_eq!(pf, sf, "fringe contents ({})", passes.label());
    }
}

#[test]
fn fewer_cuts_also_work() {
    let g = graph::mesh(18, 7);
    let (sd, _, sl) = serial_result(&g);
    let f = bfs_round();
    let cuts = paper_cuts(&f);
    for k in 1..=2 {
        let (pd, _, pl, _) = pipeline_result(&g, &cuts[..k], PassConfig::all());
        assert_eq!((pl, pd), (sl, sd.clone()), "with {k} cuts");
    }
}

#[test]
fn full_pipeline_has_papers_structure() {
    let g = graph::mesh(10, 3);
    let f = bfs_round();
    let cuts = paper_cuts(&f);
    let (_, _, _, pipe) = pipeline_result(&g, &cuts, PassConfig::all());
    // 4 stages total where the two middle ones became chained RAs:
    // fetch-fringe -> RA(nodes, INDIRECT) -> RA(edges, SCAN) -> update.
    assert_eq!(
        pipe.total_stages(),
        4,
        "{}",
        phloem_ir::pretty::pipeline_to_string(&pipe)
    );
    assert_eq!(
        pipe.ra_stages(),
        2,
        "{}",
        phloem_ir::pretty::pipeline_to_string(&pipe)
    );
    let kinds: Vec<&StageKind> = pipe.stages.iter().map(|s| &s.kind).collect();
    assert!(matches!(kinds[0], StageKind::Compute));
    let (StageKind::Ra(ra1), StageKind::Ra(ra2)) = (kinds[1], kinds[2]) else {
        panic!(
            "middle stages must be RAs: {}",
            phloem_ir::pretty::pipeline_to_string(&pipe)
        );
    };
    assert_eq!(ra1.mode, phloem_ir::RaMode::Indirect);
    assert_eq!(ra2.mode, phloem_ir::RaMode::Scan);
    // Chained: the first RA's output feeds the second.
    assert_eq!(ra1.out_queue, ra2.in_queue);
    assert!(matches!(kinds[3], StageKind::Compute));
}

#[test]
fn static_compilation_picks_good_cuts() {
    let g = graph::power_law(400, 3, 5);
    let (sd, _, sl) = serial_result(&g);
    let f = bfs_round();
    let pipe = compile_static(&f, 4, &CompileOptions::default()).expect("static compile");
    assert!(pipe.compute_stages() >= 2);
    let m = build_mem(&g, &[0]);
    let run = interp::run_pipeline(&pipe, m.mem, &[("cur_dist", Value::I64(1))], 24).unwrap();
    assert_eq!(run.mem.i64_vec(m.out_len)[0], sl);
    assert_eq!(run.mem.i64_vec(m.dist), sd);
}

#[test]
fn race_cut_is_rejected() {
    // Cutting *between* the dist load and the dist store (i.e. forcing
    // the load into an earlier stage than the store) must be impossible:
    // the write-constraint keeps them co-staged, and cutting at a load
    // whose group would then precede its dependences errors out.
    let f = bfs_round();
    let a = analyze(&f);
    // Cut at dist only: legal (update stage reads + writes dist itself).
    let pipe = decouple_with_cuts(&f, &[a.loads[5].id], &CompileOptions::default());
    assert!(pipe.is_ok(), "{pipe:?}");
}
