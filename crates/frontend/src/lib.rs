//! # phloem-frontend
//!
//! **PhloemC**: the C-subset frontend of this Phloem (HPCA 2023)
//! reproduction. The paper's compiler consumes serial C with
//! `restrict`-qualified pointers and the pragmas of Table II; this crate
//! parses that dialect and lowers it to [`phloem_ir::Function`]s that
//! `phloem-compiler` decouples.
//!
//! ```
//! use phloem_frontend::compile_c;
//!
//! let src = r#"
//!     #pragma phloem
//!     void saxpy(long n, double a,
//!                double* restrict x, double* restrict y) {
//!         for (long i = 0; i < n; i++) {
//!             y[i] = a * x[i] + y[i];
//!         }
//!     }
//! "#;
//! let funcs = compile_c(src)?;
//! assert_eq!(funcs[0].func.name, "saxpy");
//! assert!(funcs[0].pragmas.phloem);
//! # Ok::<(), phloem_frontend::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Tok, Token};
pub use parser::{parse_program, CFunction, ParseError, Pragmas};

/// Parses a PhloemC translation unit.
///
/// # Errors
/// Returns a [`ParseError`] with a source line on malformed input.
pub fn compile_c(src: &str) -> Result<Vec<CFunction>, ParseError> {
    parse_program(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, MemState, Value};

    /// The paper's BFS kernel (Fig. 2 left), one fringe round, in C.
    pub const BFS_C: &str = r#"
        #pragma phloem
        void bfs_round(long cur_dist,
                       int* restrict fringe, int* restrict nodes,
                       int* restrict edges, int* restrict dist,
                       int* restrict next_fringe, int* restrict fringe_len,
                       int* restrict out_len) {
            long nl = fringe_len[0];
            long len = 0;
            for (long i = 0; i < nl; i++) {
                long v = fringe[i];
                long s = nodes[v];
                long e = nodes[v + 1];
                for (long j = s; j < e; j++) {
                    long ngh = edges[j];
                    long od = dist[ngh];
                    if (od > cur_dist) {
                        dist[ngh] = cur_dist;
                        next_fringe[len] = ngh;
                        len++;
                    }
                }
            }
            out_len[0] = len;
        }
    "#;

    #[test]
    fn bfs_c_parses_and_runs() {
        let funcs = compile_c(BFS_C).unwrap();
        let f = &funcs[0].func;
        assert!(funcs[0].pragmas.phloem);
        // Tiny graph: 0-1, 0-2, 1-2.
        let mut mem = MemState::new();
        let mut fr = vec![0i64; 3];
        fr[0] = 0;
        mem.alloc_i64(ArrayDecl::i32("fringe"), fr);
        mem.alloc_i64(ArrayDecl::i32("nodes"), [0, 2, 4, 6]);
        mem.alloc_i64(ArrayDecl::i32("edges"), [1, 2, 0, 2, 0, 1]);
        let dist = mem.alloc_i64(ArrayDecl::i32("dist"), [0, i64::MAX, i64::MAX]);
        mem.alloc(ArrayDecl::i32("next_fringe"), 8);
        mem.alloc_i64(ArrayDecl::i32("fringe_len"), [1]);
        let out_len = mem.alloc(ArrayDecl::i32("out_len"), 1);
        let run = interp::run_serial(f, mem, &[("cur_dist", Value::I64(1))]).unwrap();
        assert_eq!(run.mem.i64_vec(out_len), vec![2]);
        assert_eq!(run.mem.i64_vec(dist), vec![0, 1, 1]);
    }

    #[test]
    fn c_frontend_matches_builder_semantics_through_phloem() {
        // The parsed kernel must be decouple-able like the builder one.
        let funcs = compile_c(BFS_C).unwrap();
        let pipe = phloem_compiler_smoke(&funcs[0].func);
        assert!(pipe >= 2);
    }

    // Avoid a dev-dependency cycle: just check the function's loads give
    // the compiler enough candidates (the real end-to-end test lives in
    // the workspace-level integration tests).
    fn phloem_compiler_smoke(f: &phloem_ir::Function) -> usize {
        f.next_load_id().0 as usize
    }

    #[test]
    fn pragmas_parse() {
        let src = r#"
            #pragma phloem
            #pragma replicate(4)
            #pragma distribute
            void f(long n, int* restrict a, int* restrict b) {
                for (long i = 0; i < n; i++) {
                    #pragma decouple
                    long x = a[i];
                    b[i] = x;
                }
            }
        "#;
        let funcs = compile_c(src).unwrap();
        let p = &funcs[0].pragmas;
        assert!(p.phloem && p.distribute);
        assert_eq!(p.replicate, Some(4));
        assert_eq!(p.decouple_loads.len(), 1);
    }

    #[test]
    fn restrict_is_required() {
        let err = compile_c("void f(int* a) { a[0] = 1; }").unwrap_err();
        assert!(err.msg.contains("restrict"), "{err}");
    }

    #[test]
    fn useful_errors() {
        assert!(compile_c("void f() { x = 1; }")
            .unwrap_err()
            .msg
            .contains("undeclared"));
        assert!(compile_c("long f() {}").is_err());
        assert!(compile_c("void f() { g(); }").is_err());
        assert!(
            compile_c("void f(long n) { for (long i = 0; i < n; i += 2) { } }")
                .unwrap_err()
                .msg
                .contains("unit-stride")
        );
    }

    #[test]
    fn while_break_and_compound_ops() {
        let src = r#"
            void f(long n, long seed, int* restrict out) {
                long k = 0;
                long acc = seed;
                while (1) {
                    acc = (acc * 1103515245 + 12345) % 2147483648;
                    acc |= 1;
                    k++;
                    if (k >= n) {
                        break;
                    }
                }
                out[0] = acc;
                out[1] = k;
            }
        "#;
        let funcs = compile_c(src).unwrap();
        let mut mem = MemState::new();
        let out = mem.alloc(ArrayDecl::i64("out"), 2);
        let run = interp::run_serial(
            &funcs[0].func,
            mem,
            &[("n", Value::I64(5)), ("seed", Value::I64(7))],
        )
        .unwrap();
        assert_eq!(run.mem.i64_vec(out)[1], 5);
        assert_eq!(run.mem.i64_vec(out)[0] % 2, 1);
    }

    #[test]
    fn floats_and_double_arrays() {
        let src = r#"
            void scale(long n, double a, double* restrict x) {
                for (long i = 0; i < n; i++) {
                    x[i] *= a;
                }
            }
        "#;
        let funcs = compile_c(src).unwrap();
        let mut mem = MemState::new();
        let x = mem.alloc_f64(ArrayDecl::f64("x"), [1.0, 2.0]);
        let run = interp::run_serial(
            &funcs[0].func,
            mem,
            &[("n", Value::I64(2)), ("a", Value::F64(0.5))],
        )
        .unwrap();
        assert_eq!(run.mem.f64_vec(x), vec![0.5, 1.0]);
    }
}
