//! Recursive-descent parser lowering PhloemC directly to [`Function`]s.
//!
//! Supported subset (everything the paper's kernels use):
//!
//! * `void f(long n, double a, int* restrict xs, ...)` — scalars are
//!   `long`/`int` (64-bit) or `double`; pointers are arrays and **must**
//!   be `restrict`-qualified (Sec. IV-A: "the programmer must provide
//!   precise aliasing information").
//! * declarations with optional initializers, assignments, `op=`
//!   compound assignments, `x++`;
//! * `if`/`else`, `while`, `break`, and canonical counted `for` loops
//!   (`for (long i = e1; i < e2; i++)`);
//! * expressions with C precedence. `&&`/`||` lower to bitwise ops over
//!   0/1 values (no short-circuit — conditions must be side-effect
//!   free, which the grammar already guarantees).

use crate::lexer::{lex, Tok, Token};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, Expr, Function, FunctionBuilder, LoadId, Ty, UnOp, VarId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Pragma annotations attached to a function (Table II).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pragmas {
    /// `#pragma phloem`: mark for automatic pipeline parallelization.
    pub phloem: bool,
    /// `#pragma replicate(N)`: replicate the pipeline N times.
    pub replicate: Option<usize>,
    /// `#pragma distribute`: insert a data-centric distribute boundary.
    pub distribute: bool,
    /// Loads marked by `#pragma decouple` (forced cut points).
    pub decouple_loads: Vec<LoadId>,
}

/// A parsed function plus its pragmas.
#[derive(Clone, Debug)]
pub struct CFunction {
    /// The lowered IR function.
    pub func: Function,
    /// Its pragma annotations.
    pub pragmas: Pragmas,
}

/// Parse error with a line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Message.
    pub msg: String,
    /// 1-based source line (0 = end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Copy)]
enum Sym {
    Var(VarId),
    Array(ArrayId),
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    scopes: Vec<HashMap<String, Sym>>,
    pending_decouple: bool,
    pragmas: Pragmas,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            line: self.toks.get(self.pos).map(|t| t.line).unwrap_or(0),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.check_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn check_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.check_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek()))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Sym> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(*s);
            }
        }
        None
    }

    fn define(&mut self, name: &str, sym: Sym) {
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), sym);
    }

    // -- types ---------------------------------------------------------

    /// Parses a scalar type keyword if present: long/int -> I64,
    /// double/float -> F64.
    fn scalar_type(&mut self) -> Option<Ty> {
        for (kw, ty) in [
            ("long", Ty::I64),
            ("int", Ty::I64),
            ("double", Ty::F64),
            ("float", Ty::F64),
        ] {
            if self.eat_ident(kw) {
                return Some(ty);
            }
        }
        None
    }

    // -- expressions ----------------------------------------------------

    fn primary(&mut self, b: &mut FunctionBuilder) -> PResult<Expr> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::i64(v)),
            Some(Tok::Float(v)) => Ok(Expr::f64(v)),
            Some(Tok::Punct("(")) => {
                let e = self.expr(b)?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.check_punct("(") {
                    return self.err(format!(
                        "function calls are not supported in PhloemC (`{name}`)"
                    ));
                }
                match self.lookup(&name) {
                    Some(Sym::Var(v)) => Ok(Expr::var(v)),
                    Some(Sym::Array(a)) => {
                        self.expect_punct("[")?;
                        let idx = self.expr(b)?;
                        self.expect_punct("]")?;
                        if self.pending_decouple {
                            self.pending_decouple = false;
                            self.pragmas.decouple_loads.push(b.peek_next_load_id());
                        }
                        Ok(b.load(a, idx))
                    }
                    None => self.err(format!("undeclared identifier `{name}`")),
                }
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    fn unary(&mut self, b: &mut FunctionBuilder) -> PResult<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::un(UnOp::Neg, self.unary(b)?));
        }
        if self.eat_punct("!") {
            return Ok(Expr::un(UnOp::Not, self.unary(b)?));
        }
        if self.eat_punct("~") {
            return Ok(Expr::un(UnOp::BitNot, self.unary(b)?));
        }
        self.primary(b)
    }

    fn binary(&mut self, b: &mut FunctionBuilder, min_level: usize) -> PResult<Expr> {
        // Precedence levels, loosest first.
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::Or)],
            &[("&&", BinOp::And)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        if min_level >= LEVELS.len() {
            return self.unary(b);
        }
        let mut lhs = self.binary(b, min_level + 1)?;
        'outer: loop {
            for (p, op) in LEVELS[min_level] {
                if self.check_punct(p) {
                    self.pos += 1;
                    let rhs = self.binary(b, min_level + 1)?;
                    lhs = Expr::bin(*op, lhs, rhs);
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn expr(&mut self, b: &mut FunctionBuilder) -> PResult<Expr> {
        self.binary(b, 0)
    }

    // -- statements -----------------------------------------------------

    fn block(&mut self, b: &mut FunctionBuilder) -> PResult<()> {
        self.expect_punct("{")?;
        self.scopes.push(HashMap::new());
        while !self.check_punct("}") {
            if self.peek().is_none() {
                return self.err("unexpected end of input in block");
            }
            self.stmt(b)?;
        }
        self.scopes.pop();
        self.expect_punct("}")
    }

    fn compound_op(p: &str) -> Option<BinOp> {
        match p {
            "+=" => Some(BinOp::Add),
            "-=" => Some(BinOp::Sub),
            "*=" => Some(BinOp::Mul),
            "/=" => Some(BinOp::Div),
            "|=" => Some(BinOp::Or),
            "&=" => Some(BinOp::And),
            "^=" => Some(BinOp::Xor),
            _ => None,
        }
    }

    fn stmt(&mut self, b: &mut FunctionBuilder) -> PResult<()> {
        // Pragmas inside bodies: only `decouple` is meaningful here.
        if let Some(Tok::Pragma(p)) = self.peek() {
            let p = p.clone();
            self.pos += 1;
            if p.trim() == "decouple" {
                self.pending_decouple = true;
                return self.stmt(b);
            }
            return self.err(format!("unexpected `#pragma {p}` inside a body"));
        }
        // Declaration.
        let save = self.pos;
        if let Some(ty) = self.scalar_type() {
            let name = self.expect_ident()?;
            let v = b.var(name.clone(), ty);
            self.define(&name, Sym::Var(v));
            if self.eat_punct("=") {
                let e = self.expr(b)?;
                b.assign(v, e);
            }
            return self.expect_punct(";");
        }
        self.pos = save;

        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr(b)?;
            self.expect_punct(")")?;
            if !self.peek_is_block() {
                return self.err("if body must be a `{ ... }` block");
            }
            b.push_scope();
            self.block(b)?;
            let then_body = b.pop_scope();
            let else_body = if self.eat_ident("else") {
                if !self.peek_is_block() {
                    return self.err("else body must be a `{ ... }` block");
                }
                b.push_scope();
                self.block(b)?;
                b.pop_scope()
            } else {
                Vec::new()
            };
            let id = b.new_branch();
            b.stmt(phloem_ir::Stmt::If {
                id,
                cond,
                then_body,
                else_body,
            });
            return Ok(());
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr(b)?;
            self.expect_punct(")")?;
            if !self.peek_is_block() {
                return self.err("while body must be a `{ ... }` block");
            }
            b.push_scope();
            self.block(b)?;
            let body = b.pop_scope();
            let id = b.new_branch();
            b.stmt(phloem_ir::Stmt::While { id, cond, body });
            return Ok(());
        }
        if self.eat_ident("for") {
            return self.for_stmt(b);
        }
        if self.eat_ident("break") {
            b.break_out(1);
            return self.expect_punct(";");
        }

        // Assignment / compound assignment / increment.
        let name = self.expect_ident()?;
        match self.lookup(&name) {
            Some(Sym::Var(v)) => {
                if self.eat_punct("++") {
                    b.assign(v, Expr::add(Expr::var(v), Expr::i64(1)));
                } else if let Some(Tok::Punct(p)) = self.peek() {
                    if let Some(op) = Self::compound_op(p) {
                        self.pos += 1;
                        let e = self.expr(b)?;
                        b.assign(v, Expr::bin(op, Expr::var(v), e));
                    } else {
                        self.expect_punct("=")?;
                        let e = self.expr(b)?;
                        b.assign(v, e);
                    }
                } else {
                    return self.err("expected assignment");
                }
                self.expect_punct(";")
            }
            Some(Sym::Array(a)) => {
                self.expect_punct("[")?;
                let idx = self.expr(b)?;
                self.expect_punct("]")?;
                if let Some(Tok::Punct(p)) = self.peek() {
                    if let Some(op) = Self::compound_op(p) {
                        // arr[i] op= e  =>  arr[i] = arr[i] op e
                        self.pos += 1;
                        let e = self.expr(b)?;
                        let cur = b.load(a, idx.clone());
                        b.store(a, idx, Expr::bin(op, cur, e));
                        return self.expect_punct(";");
                    }
                }
                self.expect_punct("=")?;
                let e = self.expr(b)?;
                b.store(a, idx, e);
                self.expect_punct(";")
            }
            None => self.err(format!("undeclared identifier `{name}`")),
        }
    }

    fn peek_is_block(&self) -> bool {
        self.check_punct("{")
    }

    /// Canonical counted loop:
    /// `for (long i = e1; i < e2; i++) { ... }` (or an existing `i`).
    fn for_stmt(&mut self, b: &mut FunctionBuilder) -> PResult<()> {
        self.expect_punct("(")?;
        let declared_ty = self.scalar_type();
        let name = self.expect_ident()?;
        let var = match declared_ty {
            Some(ty) => {
                let v = b.var(name.clone(), ty);
                self.define(&name, Sym::Var(v));
                v
            }
            None => match self.lookup(&name) {
                Some(Sym::Var(v)) => v,
                _ => return self.err(format!("`{name}` is not a scalar variable")),
            },
        };
        self.expect_punct("=")?;
        let start = self.expr(b)?;
        self.expect_punct(";")?;
        let cname = self.expect_ident()?;
        if cname != name {
            return self.err("for-loop condition must test the induction variable");
        }
        self.expect_punct("<")?;
        let end = self.expr(b)?;
        self.expect_punct(";")?;
        let iname = self.expect_ident()?;
        if iname != name {
            return self.err("for-loop increment must bump the induction variable");
        }
        if !self.eat_punct("++") {
            self.expect_punct("+=")?;
            match self.bump() {
                Some(Tok::Int(1)) => {}
                _ => return self.err("only unit-stride for loops are supported"),
            }
        }
        self.expect_punct(")")?;
        if !self.peek_is_block() {
            return self.err("for body must be a `{ ... }` block");
        }
        b.push_scope();
        self.block(b)?;
        let body = b.pop_scope();
        let id = b.new_branch();
        b.stmt(phloem_ir::Stmt::For {
            id,
            var,
            start,
            end,
            body,
        });
        Ok(())
    }

    // -- functions ------------------------------------------------------

    fn function(&mut self) -> PResult<CFunction> {
        self.pragmas = Pragmas::default();
        while let Some(Tok::Pragma(p)) = self.peek() {
            let p = p.clone();
            self.pos += 1;
            let p = p.trim().to_string();
            if p == "phloem" {
                self.pragmas.phloem = true;
            } else if p == "distribute" {
                self.pragmas.distribute = true;
            } else if let Some(rest) = p.strip_prefix("replicate") {
                let n = rest
                    .trim()
                    .trim_start_matches('(')
                    .trim_end_matches(')')
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| ParseError {
                        msg: format!("bad replicate count in `#pragma {p}`"),
                        line: self.toks.get(self.pos).map(|t| t.line).unwrap_or(0),
                    })?;
                self.pragmas.replicate = Some(n);
            } else {
                return self.err(format!("unknown `#pragma {p}`"));
            }
        }
        if !self.eat_ident("void") {
            return self.err("functions must return void");
        }
        let name = self.expect_ident()?;
        let mut b = FunctionBuilder::new(name);
        self.scopes.push(HashMap::new());
        self.expect_punct("(")?;
        if !self.check_punct(")") {
            loop {
                self.parse_param(&mut b)?;
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.block(&mut b)?;
        self.scopes.pop();
        let func = b.build();
        func.validate().map_err(|e| ParseError {
            msg: format!("internal lowering error: {e}"),
            line: 0,
        })?;
        Ok(CFunction {
            func,
            pragmas: std::mem::take(&mut self.pragmas),
        })
    }

    fn parse_param(&mut self, b: &mut FunctionBuilder) -> PResult<()> {
        self.eat_ident("const");
        let base = match self.scalar_type() {
            Some(t) => t,
            None => return self.err("expected parameter type"),
        };
        // Remember whether this was a 4-byte int for array widths.
        let was_int = matches!(
            self.toks.get(self.pos - 1),
            Some(Token {
                kind: Tok::Ident(s),
                ..
            }) if s == "int" || s == "float"
        );
        if self.eat_punct("*") {
            if !self.eat_ident("restrict") {
                return self.err(
                    "pointer parameters must be `restrict`-qualified \
                     (Phloem requires precise aliasing information)",
                );
            }
            let name = self.expect_ident()?;
            let decl = match (base, was_int) {
                (Ty::I64, true) => ArrayDecl::i32(name.clone()),
                (Ty::I64, false) => ArrayDecl::i64(name.clone()),
                (Ty::F64, _) => ArrayDecl::f64(name.clone()),
            };
            let a = b.array(decl);
            self.define(&name, Sym::Array(a));
        } else {
            let name = self.expect_ident()?;
            let v = match base {
                Ty::I64 => b.param_i64(name.clone()),
                Ty::F64 => b.param_f64(name.clone()),
            };
            self.define(&name, Sym::Var(v));
        }
        Ok(())
    }
}

/// Parses a PhloemC translation unit (one or more functions).
///
/// # Errors
/// Returns a [`ParseError`] with a source line on malformed input.
pub fn parse_program(src: &str) -> Result<Vec<CFunction>, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        msg: e.msg,
        line: e.line,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        scopes: vec![HashMap::new()],
        pending_decouple: false,
        pragmas: Pragmas::default(),
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.function()?);
    }
    if out.is_empty() {
        return Err(ParseError {
            msg: "no functions found".into(),
            line: 0,
        });
    }
    Ok(out)
}
