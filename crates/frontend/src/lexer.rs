//! Lexer for PhloemC (a C subset; see the crate docs).

use std::fmt;

/// A token with its source line (for diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A `#pragma <rest of line>` directive.
    Pragma(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Message.
    pub msg: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=", "*=",
    "/=", "|=", "&=", "^=", "->", "(", ")", "{", "}", "[", "]", ";", ",", "=", "<", ">", "+", "-",
    "*", "/", "%", "!", "&", "|", "^", "~",
];

/// Tokenizes PhloemC source.
///
/// # Errors
/// Returns a [`LexError`] on unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        // Pragmas (line-based).
        if c == '#' {
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let rest = text
                .trim_start_matches('#')
                .trim_start()
                .strip_prefix("pragma")
                .map(|r| r.trim().to_string())
                .ok_or(LexError {
                    msg: format!("unsupported directive `{text}`"),
                    line,
                })?;
            out.push(Token {
                kind: Tok::Pragma(rest),
                line,
            });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || (is_float
                        && (bytes[i] == '+' || bytes[i] == '-')
                        && matches!(bytes[i - 1], 'e' | 'E')))
            {
                if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let kind = if is_float {
                Tok::Float(text.parse().map_err(|_| LexError {
                    msg: format!("bad float `{text}`"),
                    line,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LexError {
                    msg: format!("bad integer `{text}`"),
                    line,
                })?)
            };
            out.push(Token { kind, line });
            continue;
        }
        // Punctuation (longest match).
        let mut matched = false;
        for p in PUNCTS {
            if bytes[i..].iter().take(p.len()).collect::<String>() == **p {
                out.push(Token {
                    kind: Tok::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                msg: format!("unexpected character `{c}`"),
                line,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_code_and_pragmas() {
        let toks = lex("#pragma phloem\nvoid f(long n) { n += 1; } // tail\n").unwrap();
        assert!(matches!(&toks[0].kind, Tok::Pragma(p) if p == "phloem"));
        assert!(matches!(&toks[1].kind, Tok::Ident(s) if s == "void"));
        assert!(toks.iter().any(|t| t.kind == Tok::Punct("+=")));
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex("42 3.5 1e-3").unwrap();
        assert_eq!(toks[0].kind, Tok::Int(42));
        assert_eq!(toks[1].kind, Tok::Float(3.5));
        assert_eq!(toks[2].kind, Tok::Float(1e-3));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("/* a\nb */ x").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("@").is_err());
        assert!(lex("#define X 1").is_err());
    }
}
