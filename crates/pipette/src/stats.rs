//! Run statistics: per-thread execution counters, the Fig. 10 cycle
//! breakdown, and roll-ups across pipeline invocations.

use crate::cache::CacheStats;
use crate::energy::EnergyBreakdown;
use phloem_ir::Time;
use serde::{Deserialize, Serialize};

/// Counters for one hardware thread (stage or RA).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Stage name.
    pub name: String,
    /// True for reference-accelerator stages.
    pub is_ra: bool,
    /// Micro-ops issued.
    pub uops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredictions.
    pub mispredicts: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Queue enqueues.
    pub enqs: u64,
    /// Queue dequeues.
    pub deqs: u64,
    /// Cycles lost blocked on full/empty queues (sum of the full/empty
    /// splits below).
    pub queue_stall_cycles: u64,
    /// Cycles lost waiting for a slot in a full downstream queue.
    pub queue_full_stall_cycles: u64,
    /// Cycles lost waiting for data in an empty upstream queue.
    pub queue_empty_stall_cycles: u64,
    /// Cycles lost to backend stalls (memory deps, window-full).
    pub backend_stall_cycles: u64,
    /// Cycles lost to frontend causes (misprediction penalties).
    pub frontend_stall_cycles: u64,
    /// Fruitless re-polls of a blocked thread with no intervening event
    /// on the awaited queue. The event-driven scheduler parks blocked
    /// threads on wait-lists, so this is structurally zero; a polling
    /// scheduler would accumulate one per thread per scan round.
    pub stall_polls: u64,
    /// Times this thread was moved from a wait-list back to the ready
    /// set by a queue event.
    pub wakeups: u64,
    /// Wakeups that re-blocked without progress (the awaited entry or
    /// slot was claimed by another thread first).
    pub spurious_wakeups: u64,
    /// Time of the thread's last completed operation.
    pub finish_time: Time,
}

/// Occupancy and traffic counters for one hardware queue.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Configured depth.
    pub capacity: usize,
    /// Successful enqueues.
    pub enqs: u64,
    /// Successful dequeues.
    pub deqs: u64,
    /// Highest occupancy observed.
    pub max_occupancy: usize,
    /// `occupancy_hist[k]` counts enq/deq operations that left the queue
    /// holding `k` entries (length `capacity + 1`).
    pub occupancy_hist: Vec<u64>,
}

impl QueueStats {
    /// Creates zeroed stats for a queue of the given depth.
    pub fn new(capacity: usize) -> QueueStats {
        QueueStats {
            capacity,
            occupancy_hist: vec![0; capacity + 1],
            ..Default::default()
        }
    }

    /// Records the occupancy left behind by one enq/deq.
    pub fn record(&mut self, occupancy: usize) {
        self.max_occupancy = self.max_occupancy.max(occupancy);
        if let Some(slot) = self.occupancy_hist.get_mut(occupancy) {
            *slot += 1;
        }
    }

    /// Operation-weighted mean occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        let samples: u64 = self.occupancy_hist.iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .occupancy_hist
            .iter()
            .enumerate()
            .map(|(k, c)| k as u64 * c)
            .sum();
        weighted as f64 / samples as f64
    }

    /// Merges another queue's counters into this one (positional roll-up
    /// across invocations).
    pub fn merge(&mut self, other: &QueueStats) {
        self.capacity = self.capacity.max(other.capacity);
        self.enqs += other.enqs;
        self.deqs += other.deqs;
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
        if self.occupancy_hist.len() < other.occupancy_hist.len() {
            self.occupancy_hist.resize(other.occupancy_hist.len(), 0);
        }
        for (mine, theirs) in self.occupancy_hist.iter_mut().zip(&other.occupancy_hist) {
            *mine += theirs;
        }
    }
}

/// The Fig. 10 cycle-breakdown categories, in core-cycle units summed
/// over compute threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles spent issuing micro-ops (uops / issue width).
    pub issue: f64,
    /// Backend stalls (memory latency, window-full).
    pub backend: f64,
    /// Full/empty queue stalls.
    pub queue: f64,
    /// Other (frontend / misprediction) stalls.
    pub other: f64,
}

impl CycleBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.issue + self.backend + self.queue + self.other
    }
}

/// Statistics from one run (or an accumulated session).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// End-to-end cycles (makespan, including launch overheads).
    pub cycles: Time,
    /// Per-thread counters (one entry per stage of the last pipeline;
    /// accumulated by stage index across invocations in a session).
    pub threads: Vec<ThreadStats>,
    /// Per-queue occupancy/traffic counters (queue-id indexed;
    /// accumulated across invocations in a session).
    pub queues: Vec<QueueStats>,
    /// Cache hierarchy counters.
    pub cache: CacheStats,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Pipeline launches performed.
    pub invocations: u64,
}

impl RunStats {
    /// Total micro-ops across compute threads (excludes RAs).
    pub fn compute_uops(&self) -> u64 {
        self.threads
            .iter()
            .filter(|t| !t.is_ra)
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .sum()
    }

    /// Total instructions including RA operations.
    pub fn total_ops(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .sum()
    }

    /// Builds the Fig. 10 breakdown from per-thread counters.
    pub fn cycle_breakdown(&self, issue_width: u64) -> CycleBreakdown {
        let mut b = CycleBreakdown::default();
        for t in self.threads.iter().filter(|t| !t.is_ra) {
            let ops = t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs;
            b.issue += ops as f64 / issue_width as f64;
            b.backend += t.backend_stall_cycles as f64;
            b.queue += t.queue_stall_cycles as f64;
            b.other += t.frontend_stall_cycles as f64;
        }
        b
    }

    /// Accumulates another run's statistics (stage-indexed threads are
    /// merged positionally; used by sessions running many invocations).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.invocations += other.invocations;
        self.cache = other.cache; // hierarchy counters are cumulative already
        self.energy = other.energy;
        if self.threads.len() < other.threads.len() {
            self.threads
                .resize(other.threads.len(), ThreadStats::default());
        }
        for (mine, theirs) in self.threads.iter_mut().zip(&other.threads) {
            if mine.name.is_empty() {
                mine.name = theirs.name.clone();
                mine.is_ra = theirs.is_ra;
            }
            mine.uops += theirs.uops;
            mine.branches += theirs.branches;
            mine.mispredicts += theirs.mispredicts;
            mine.loads += theirs.loads;
            mine.stores += theirs.stores;
            mine.enqs += theirs.enqs;
            mine.deqs += theirs.deqs;
            mine.queue_stall_cycles += theirs.queue_stall_cycles;
            mine.queue_full_stall_cycles += theirs.queue_full_stall_cycles;
            mine.queue_empty_stall_cycles += theirs.queue_empty_stall_cycles;
            mine.backend_stall_cycles += theirs.backend_stall_cycles;
            mine.frontend_stall_cycles += theirs.frontend_stall_cycles;
            mine.stall_polls += theirs.stall_polls;
            mine.wakeups += theirs.wakeups;
            mine.spurious_wakeups += theirs.spurious_wakeups;
            mine.finish_time = mine.finish_time.max(theirs.finish_time);
        }
        if self.queues.len() < other.queues.len() {
            self.queues
                .resize_with(other.queues.len(), QueueStats::default);
        }
        for (mine, theirs) in self.queues.iter_mut().zip(&other.queues) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_skips_ras() {
        let stats = RunStats {
            cycles: 100,
            threads: vec![
                ThreadStats {
                    name: "s0".into(),
                    uops: 60,
                    backend_stall_cycles: 10,
                    ..Default::default()
                },
                ThreadStats {
                    name: "ra".into(),
                    is_ra: true,
                    uops: 1000,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let b = stats.cycle_breakdown(6);
        assert_eq!(b.issue, 10.0);
        assert_eq!(b.backend, 10.0);
    }

    #[test]
    fn breakdown_total_sums_all_categories() {
        let b = CycleBreakdown {
            issue: 1.0,
            backend: 2.0,
            queue: 3.0,
            other: 4.0,
        };
        assert_eq!(b.total(), 10.0);
    }

    #[test]
    fn queue_stats_record_ignores_out_of_range_occupancy() {
        let mut q = QueueStats::new(2);
        q.record(0);
        q.record(2);
        q.record(99); // beyond capacity: dropped, not a panic
        assert_eq!(q.occupancy_hist, vec![1, 0, 1]);
        // max_occupancy still tracks the raw value (diagnostic).
        assert_eq!(q.max_occupancy, 99);
    }

    #[test]
    fn queue_stats_merge_adds_counters_and_grows_the_histogram() {
        let mut a = QueueStats::new(2);
        a.enqs = 3;
        a.deqs = 2;
        a.record(1);
        let mut b = QueueStats::new(4);
        b.enqs = 10;
        b.deqs = 20;
        b.record(4);
        a.merge(&b);
        assert_eq!(a.capacity, 4);
        assert_eq!(a.enqs, 13);
        assert_eq!(a.deqs, 22);
        assert_eq!(a.max_occupancy, 4);
        assert_eq!(a.occupancy_hist, vec![0, 1, 0, 0, 1]);
        // Mean over both samples: (1 + 4) / 2.
        assert!((a.mean_occupancy() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_occupancy_of_an_untouched_queue_is_zero() {
        assert_eq!(QueueStats::new(8).mean_occupancy(), 0.0);
    }

    #[test]
    fn accumulate_merges_threads_positionally_and_keeps_maxima() {
        let t = |name: &str, uops, stall, finish| ThreadStats {
            name: name.into(),
            uops,
            backend_stall_cycles: stall,
            finish_time: finish,
            wakeups: 1,
            ..Default::default()
        };
        let mut acc = RunStats {
            cycles: 100,
            invocations: 1,
            threads: vec![t("s0", 10, 5, 90)],
            queues: vec![QueueStats::new(2)],
            ..Default::default()
        };
        let other = RunStats {
            cycles: 80,
            invocations: 2,
            threads: vec![t("s0", 7, 3, 95), t("ra", 100, 0, 70)],
            queues: vec![QueueStats::new(2), QueueStats::new(2)],
            ..Default::default()
        };
        acc.accumulate(&other);
        // Makespan keeps the max, invocations add.
        assert_eq!(acc.cycles, 100);
        assert_eq!(acc.invocations, 3);
        // Positional merge: counters add, finish keeps the max, the new
        // thread slot appears with the incoming name.
        assert_eq!(acc.threads.len(), 2);
        assert_eq!(acc.threads[0].uops, 17);
        assert_eq!(acc.threads[0].backend_stall_cycles, 8);
        assert_eq!(acc.threads[0].finish_time, 95);
        assert_eq!(acc.threads[0].wakeups, 2);
        assert_eq!(acc.threads[1].name, "ra");
        assert_eq!(acc.queues.len(), 2);
    }

    #[test]
    fn accumulate_near_u64_max_saturates_finish_and_cycle_maxima() {
        // The max-based fields must survive extreme counter values
        // without wrapping (additions are the caller's contract; the
        // max/merge paths are ours).
        let big = ThreadStats {
            name: "s0".into(),
            finish_time: u64::MAX,
            ..Default::default()
        };
        let mut acc = RunStats {
            cycles: u64::MAX,
            threads: vec![big.clone()],
            ..Default::default()
        };
        acc.accumulate(&RunStats {
            cycles: 1,
            threads: vec![ThreadStats {
                name: "s0".into(),
                finish_time: 1,
                ..Default::default()
            }],
            ..Default::default()
        });
        assert_eq!(acc.cycles, u64::MAX);
        assert_eq!(acc.threads[0].finish_time, u64::MAX);
    }
}
