//! Run statistics: per-thread execution counters, the Fig. 10 cycle
//! breakdown, and roll-ups across pipeline invocations.

use crate::cache::CacheStats;
use crate::energy::EnergyBreakdown;
use phloem_ir::Time;
use serde::{Deserialize, Serialize};

/// Counters for one hardware thread (stage or RA).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Stage name.
    pub name: String,
    /// True for reference-accelerator stages.
    pub is_ra: bool,
    /// Micro-ops issued.
    pub uops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredictions.
    pub mispredicts: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Queue enqueues.
    pub enqs: u64,
    /// Queue dequeues.
    pub deqs: u64,
    /// Cycles lost blocked on full/empty queues.
    pub queue_stall_cycles: u64,
    /// Cycles lost to backend stalls (memory deps, window-full).
    pub backend_stall_cycles: u64,
    /// Cycles lost to frontend causes (misprediction penalties).
    pub frontend_stall_cycles: u64,
    /// Time of the thread's last completed operation.
    pub finish_time: Time,
}

/// The Fig. 10 cycle-breakdown categories, in core-cycle units summed
/// over compute threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles spent issuing micro-ops (uops / issue width).
    pub issue: f64,
    /// Backend stalls (memory latency, window-full).
    pub backend: f64,
    /// Full/empty queue stalls.
    pub queue: f64,
    /// Other (frontend / misprediction) stalls.
    pub other: f64,
}

impl CycleBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.issue + self.backend + self.queue + self.other
    }
}

/// Statistics from one run (or an accumulated session).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// End-to-end cycles (makespan, including launch overheads).
    pub cycles: Time,
    /// Per-thread counters (one entry per stage of the last pipeline;
    /// accumulated by stage index across invocations in a session).
    pub threads: Vec<ThreadStats>,
    /// Cache hierarchy counters.
    pub cache: CacheStats,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Pipeline launches performed.
    pub invocations: u64,
}

impl RunStats {
    /// Total micro-ops across compute threads (excludes RAs).
    pub fn compute_uops(&self) -> u64 {
        self.threads
            .iter()
            .filter(|t| !t.is_ra)
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .sum()
    }

    /// Total instructions including RA operations.
    pub fn total_ops(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .sum()
    }

    /// Builds the Fig. 10 breakdown from per-thread counters.
    pub fn cycle_breakdown(&self, issue_width: u64) -> CycleBreakdown {
        let mut b = CycleBreakdown::default();
        for t in self.threads.iter().filter(|t| !t.is_ra) {
            let ops = t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs;
            b.issue += ops as f64 / issue_width as f64;
            b.backend += t.backend_stall_cycles as f64;
            b.queue += t.queue_stall_cycles as f64;
            b.other += t.frontend_stall_cycles as f64;
        }
        b
    }

    /// Accumulates another run's statistics (stage-indexed threads are
    /// merged positionally; used by sessions running many invocations).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.invocations += other.invocations;
        self.cache = other.cache; // hierarchy counters are cumulative already
        self.energy = other.energy;
        if self.threads.len() < other.threads.len() {
            self.threads
                .resize(other.threads.len(), ThreadStats::default());
        }
        for (mine, theirs) in self.threads.iter_mut().zip(&other.threads) {
            if mine.name.is_empty() {
                mine.name = theirs.name.clone();
                mine.is_ra = theirs.is_ra;
            }
            mine.uops += theirs.uops;
            mine.branches += theirs.branches;
            mine.mispredicts += theirs.mispredicts;
            mine.loads += theirs.loads;
            mine.stores += theirs.stores;
            mine.enqs += theirs.enqs;
            mine.deqs += theirs.deqs;
            mine.queue_stall_cycles += theirs.queue_stall_cycles;
            mine.backend_stall_cycles += theirs.backend_stall_cycles;
            mine.frontend_stall_cycles += theirs.frontend_stall_cycles;
            mine.finish_time = mine.finish_time.max(theirs.finish_time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_skips_ras() {
        let stats = RunStats {
            cycles: 100,
            threads: vec![
                ThreadStats {
                    name: "s0".into(),
                    uops: 60,
                    backend_stall_cycles: 10,
                    ..Default::default()
                },
                ThreadStats {
                    name: "ra".into(),
                    is_ra: true,
                    uops: 1000,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let b = stats.cycle_breakdown(6);
        assert_eq!(b.issue, 10.0);
        assert_eq!(b.backend, 10.0);
    }
}
