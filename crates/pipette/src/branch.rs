//! Branch predictor model: per-thread tables of 2-bit saturating
//! counters indexed by static branch site.
//!
//! Data-dependent branches (e.g. `if (A[i] > 0)` over alternating data)
//! mispredict close to 50% of the time, which is the serialization effect
//! the paper's introduction describes; loop backedges predict well.

use phloem_ir::BranchId;

/// Counter value for a site never seen before: weakly-taken, so loops
/// start predicted taken.
const INIT: u8 = 2;

/// One thread's predictor state. Branch sites are numbered densely per
/// stage function, so the counter table is a flat array indexed by
/// `BranchId` (grown on demand) — one predict/update per simulated
/// branch makes this a per-atom host hot path, and the hash-map table
/// it replaces spent more host time hashing the site id than the whole
/// 2-bit update costs.
#[derive(Clone, Debug, Default)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    /// Dynamic branches predicted.
    pub branches: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl BranchPredictor {
    /// Creates an empty predictor.
    pub fn new() -> BranchPredictor {
        BranchPredictor::default()
    }

    /// Predicts and updates for one dynamic branch; returns true if the
    /// prediction was wrong.
    pub fn mispredicted(&mut self, site: BranchId, taken: bool) -> bool {
        self.branches += 1;
        let i = site.0 as usize;
        if i >= self.counters.len() {
            self.counters.resize(i + 1, INIT);
        }
        let c = &mut self.counters[i];
        let predicted_taken = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_loop_predicts_well() {
        let mut p = BranchPredictor::new();
        let site = BranchId(0);
        let mut wrong = 0;
        for i in 0..1000 {
            let taken = i % 100 != 99; // loop of trip count 100
            if p.mispredicted(site, taken) {
                wrong += 1;
            }
        }
        assert!(wrong <= 25, "backedges must predict well, got {wrong}");
    }

    #[test]
    fn alternating_branch_mispredicts_often() {
        let mut p = BranchPredictor::new();
        let site = BranchId(1);
        let mut wrong = 0;
        for i in 0..1000 {
            if p.mispredicted(site, i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 400, "alternating data must hurt, got {wrong}");
    }
}
