//! Hardware FIFO queues: bounded depth, timed entries, slot recycling,
//! and occupancy accounting.
//!
//! A queue entry carries the cycle at which its value becomes *ready*
//! (when the producer's enqueue completes) and the producing core (so
//! cross-core dequeues pay the interconnect latency). Slots are
//! recycled in FIFO order: entry `k` may only be enqueued once the
//! dequeue that freed slot `k - cap` has completed, which is what makes
//! back-pressure visible in simulated time.
//!
//! Every successful enqueue/dequeue is also reported to the scheduler as
//! a [`QueueEvent`], which is how threads parked on a full/empty queue
//! get woken without polling.

use crate::stats::QueueStats;
use phloem_ir::{QueueId, Time, Value};
use std::collections::VecDeque;
use std::fmt;

/// A queue state change that can unblock waiting threads. Carries the
/// operation's completion time so wakeup trace events get grid-identical
/// timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum QueueEvent {
    /// A value was enqueued (wakes threads blocked on *empty*).
    Enq(QueueId, Time),
    /// A value was dequeued (wakes threads blocked on *full*).
    Deq(QueueId, Time),
}

/// One-line occupancy description of a queue, e.g. `q3 full 24/24`.
///
/// The single formatting path for queue occupancy in diagnostics: the
/// watchdog snapshot, deadlock wait-cycle edges, and trap messages all
/// render through this `Display` impl, so the format cannot drift
/// between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct QueueOcc {
    /// Architectural queue index.
    pub(crate) id: u16,
    /// Current entries held.
    pub(crate) len: usize,
    /// Physical capacity.
    pub(crate) cap: usize,
}

impl fmt::Display for QueueOcc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fill = if self.len >= self.cap {
            "full"
        } else if self.len == 0 {
            "empty"
        } else {
            "partial"
        };
        write!(f, "q{} {} {}/{}", self.id, fill, self.len, self.cap)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct QueueEntry {
    pub(crate) value: Value,
    /// Cycle at which the value is available to a same-core consumer.
    pub(crate) ready: Time,
    /// Core of the producing thread.
    pub(crate) core: usize,
}

#[derive(Clone, Debug)]
pub(crate) struct HwQueue {
    entries: VecDeque<QueueEntry>,
    cap: usize,
    /// Completion times of past dequeues; slot for entry `k` frees at
    /// `deq_ring[(k - cap) % cap]`.
    deq_ring: Vec<Time>,
    enq_count: u64,
    deq_count: u64,
    /// `deq_count % cap`, maintained incrementally (the ring cursors
    /// keep the per-op path free of the `%` a non-power-of-two capacity
    /// would otherwise cost).
    deq_pos: usize,
    /// `(enq_count - cap) % cap` once `enq_count >= cap` (the slot the
    /// next enqueue waits on); 0 before the ring wraps.
    free_pos: usize,
    pub(crate) stats: QueueStats,
}

impl HwQueue {
    pub(crate) fn new(cap: usize) -> HwQueue {
        HwQueue {
            entries: VecDeque::with_capacity(cap),
            cap,
            deq_ring: vec![0; cap],
            enq_count: 0,
            deq_count: 0,
            deq_pos: 0,
            free_pos: 0,
            stats: QueueStats::new(cap),
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Ordinal of the next successful enqueue (count so far). Fault
    /// windows key on this: it is identical across schedulers/engines.
    pub(crate) fn enq_ord(&self) -> u64 {
        self.enq_count
    }

    /// Ordinal of the next successful dequeue (count so far).
    pub(crate) fn deq_ord(&self) -> u64 {
        self.deq_count
    }

    /// Earliest cycle at which the next enqueue's slot is free.
    pub(crate) fn slot_free_time(&self) -> Time {
        if self.enq_count >= self.cap as u64 {
            debug_assert_eq!(
                self.free_pos as u64,
                (self.enq_count - self.cap as u64) % self.cap as u64
            );
            self.deq_ring[self.free_pos]
        } else {
            0
        }
    }

    /// Appends an entry; the caller must have checked [`Self::is_full`].
    pub(crate) fn push(&mut self, entry: QueueEntry) {
        debug_assert!(!self.is_full());
        self.entries.push_back(entry);
        self.enq_count += 1;
        if self.enq_count > self.cap as u64 {
            self.free_pos += 1;
            if self.free_pos == self.cap {
                self.free_pos = 0;
            }
        }
        self.stats.enqs += 1;
        self.stats.record(self.entries.len());
    }

    /// Removes the head entry and recycles its slot at `free_at` (the
    /// dequeue's completion time).
    ///
    /// # Panics
    /// Panics if the queue is empty (callers check [`Self::is_empty`]).
    pub(crate) fn pop(&mut self, free_at: Time) -> QueueEntry {
        let entry = self.entries.pop_front().expect("nonempty");
        debug_assert_eq!(self.deq_pos as u64, self.deq_count % self.cap as u64);
        self.deq_ring[self.deq_pos] = free_at;
        self.deq_pos += 1;
        if self.deq_pos == self.cap {
            self.deq_pos = 0;
        }
        self.deq_count += 1;
        self.stats.deqs += 1;
        self.stats.record(self.entries.len());
        entry
    }

    /// Peeks the head entry without removing it.
    pub(crate) fn front(&self) -> Option<&QueueEntry> {
        self.entries.front()
    }

    /// Occupancy snapshot for diagnostics rendering.
    pub(crate) fn occ(&self, id: u16) -> QueueOcc {
        QueueOcc {
            id,
            len: self.len(),
            cap: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle_in_fifo_order() {
        let mut q = HwQueue::new(2);
        assert_eq!(q.slot_free_time(), 0);
        q.push(QueueEntry {
            value: Value::I64(1),
            ready: 10,
            core: 0,
        });
        q.push(QueueEntry {
            value: Value::I64(2),
            ready: 20,
            core: 0,
        });
        assert!(q.is_full());
        // Third entry reuses the first slot, which frees at deq time.
        let e = q.pop(55);
        assert_eq!(e.value, Value::I64(1));
        assert_eq!(q.slot_free_time(), 55);
    }

    #[test]
    fn occupancy_stats_track_levels() {
        let mut q = HwQueue::new(4);
        for k in 0..3 {
            q.push(QueueEntry {
                value: Value::I64(k),
                ready: 0,
                core: 0,
            });
        }
        q.pop(1);
        assert_eq!(q.stats.max_occupancy, 3);
        assert_eq!(q.stats.enqs, 3);
        assert_eq!(q.stats.deqs, 1);
        // Levels left behind: 1, 2, 3 (enqs), 2 (deq).
        assert_eq!(q.stats.occupancy_hist, vec![0, 1, 2, 1, 0]);
        assert!((q.stats.mean_occupancy() - 2.0).abs() < 1e-12);
    }

    /// Pins the one shared occupancy format used by every stall-shaped
    /// diagnostic (watchdog snapshot, deadlock edges).
    #[test]
    fn occupancy_display_format_is_pinned() {
        let mut q = HwQueue::new(2);
        assert_eq!(q.occ(3).to_string(), "q3 empty 0/2");
        q.push(QueueEntry {
            value: Value::I64(1),
            ready: 0,
            core: 0,
        });
        assert_eq!(q.occ(3).to_string(), "q3 partial 1/2");
        q.push(QueueEntry {
            value: Value::I64(2),
            ready: 0,
            core: 0,
        });
        assert_eq!(q.occ(3).to_string(), "q3 full 2/2");
    }
}
