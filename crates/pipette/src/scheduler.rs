//! The event-driven SMT scheduler.
//!
//! ## From polling to wakeups
//!
//! The original scheduler scanned every unfinished thread each round and
//! re-stepped it even when it was still blocked on the same queue — for
//! a pipeline with one hot stage and several drained ones, most `step`
//! calls were fruitless polls. This scheduler keeps each thread in one
//! of three states:
//!
//! * **Ready** — will run a slice at its position in the round scan;
//! * **Waiting(reason)** — parked on the wait-list of the queue named by
//!   its [`BlockReason`]; *never stepped* until a queue event wakes it;
//! * **Finished** — the stage program terminated.
//!
//! Every successful enqueue wakes the waiters of that queue's
//! empty-list, every successful dequeue wakes its full-list (see
//! [`QueueEvent`]). Events are drained after *every* slice, so a thread
//! woken by an earlier-indexed thread still runs within the same round —
//! exactly when the polling scheduler would have reached it.
//!
//! ## Cycle-exactness invariant
//!
//! Simulated cycle counts are bit-identical to the polling scheduler's:
//!
//! 1. A blocked `try_enq`/`try_deq` returns before touching timing state
//!    (see `timing.rs`), so a fruitless poll is a timing no-op.
//! 2. A parked thread is skipped only while the awaited queue cannot
//!    have changed in its favour (no enqueue since it found the queue
//!    empty / no dequeue since it found it full); the skipped polls are
//!    exactly the no-ops of (1).
//! 3. All other `World` calls happen in the identical order: the round
//!    scan is index-ordered, slices are [`SLICE`]-bounded as before, and
//!    wakeups only clear the skip condition — they never reorder.
//!
//! The per-thread `stall_polls` counter records re-polls of a parked
//! thread with no intervening event; by construction it stays zero
//! here, while the polling scheduler would have counted one per parked
//! thread per round. `tests/properties.rs` asserts both the zero and
//! the cycle-exactness against a reference polling implementation.

use crate::queue::QueueEvent;
use crate::timing::{AdvanceEvent, TimingWorld, WAIT_EMPTY, WAIT_FULL};
use crate::trace::{TraceEvent, TraceVerdict, EV_FAULT, EV_SCHED, EV_WATCHDOG};
use crate::watchdog::{self, ThreadCond};
use phloem_ir::{BlockReason, Pipeline, QueueId, StageExec, StageProgram, StepResult, Stmt, Trap};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Maximum atoms a thread executes before yielding to the next one
/// (preserves the SMT interleaving granularity of the seed model).
pub(crate) const SLICE: u32 = 128;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Waiting(BlockReason),
    Finished,
}

/// Which scheduling strategy drives the stage interpreters.
///
/// Both produce **bit-identical simulated cycles** (blocked queue polls
/// have no timing side effects); they differ only in host work and in
/// the `stall_polls` counter. `Polling` is the seed simulator's
/// round-robin re-polling host loop, kept as the reference
/// implementation for differential tests and host-throughput baselines
/// (`BENCH_simspeed.json`). Both kinds share the calendar-ring issue
/// tracker; its dense reference layout is selected independently via
/// [`crate::MachineConfig::fast_forward`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Wait-list based: blocked threads are parked and only re-stepped
    /// after an event on the awaited queue. `stall_polls` stays zero.
    #[default]
    EventDriven,
    /// The seed model: round-robin re-polling of every unfinished
    /// thread (every fruitless re-poll increments `stall_polls`).
    Polling,
}

/// Runs all stage interpreters to completion of the compute stages.
///
/// Generic over the execution engine ([`StageExec`]): the scheduler only
/// needs stepping, finish state, and a name, so the same wait-list logic
/// drives both the tree-walking and the flat bytecode interpreter.
///
/// # Errors
/// Propagates traps; reports deadlock (with the wait cycle) when a full
/// round makes no progress while compute stages remain.
pub(crate) fn run<E: StageExec>(
    world: &mut TimingWorld<'_>,
    interps: &mut [E],
    is_compute: &[bool],
    pipeline: &Pipeline,
    kind: SchedulerKind,
) -> Result<(), Trap> {
    let n = interps.len();
    let nq = world.queues.len();
    let mut state: Vec<ThreadState> = interps
        .iter()
        .map(|it| {
            if it.is_finished() {
                ThreadState::Finished
            } else {
                ThreadState::Ready
            }
        })
        .collect();
    let mut wait_empty: Vec<Vec<usize>> = vec![Vec::new(); nq];
    let mut wait_full: Vec<Vec<usize>> = vec![Vec::new(); nq];
    let mut woken = vec![false; n];
    let mut killed = vec![false; n];
    // Scratch buffer for draining the world's event log without
    // re-allocating every slice.
    let mut events: Vec<QueueEvent> = Vec::new();

    loop {
        let mut progressed = false;
        let mut compute_live = false;
        for i in 0..n {
            if state[i] == ThreadState::Finished {
                continue;
            }
            // Fault injection: kill thresholds key on the atom count,
            // checked at round boundaries — both grid-identical — and
            // are tested *before* the parked-skip so a parked thread
            // dies at the same round under either scheduler.
            if let Some(at) = world.fault_kill_at(i) {
                if interps[i].steps() >= at {
                    killed[i] = true;
                    state[i] = ThreadState::Finished;
                    progressed = true;
                    let at_atoms = interps[i].steps();
                    world.emit(EV_FAULT, || TraceEvent::FaultKill {
                        thread: i as u32,
                        at_atoms,
                    });
                    continue;
                }
            }
            if is_compute[i] {
                compute_live = true;
            }
            let was_parked = matches!(state[i], ThreadState::Waiting(_));
            if was_parked && kind == SchedulerKind::EventDriven {
                // Parked: the awaited queue has not changed in this
                // thread's favour, so a poll would be a timing no-op.
                // (Re-stepping here is what `stall_polls` counts in
                // polling mode.)
                continue;
            }
            let was_woken = std::mem::replace(&mut woken[i], false);
            let (steps, outcome) = interps[i].run_slice(world, SLICE)?;
            if steps > 0 {
                progressed = true;
            }
            match outcome {
                StepResult::Finished => {
                    progressed = true;
                    state[i] = ThreadState::Finished;
                    world.note_finish(i);
                    let at = world.threads[i].finish_time;
                    world.emit(EV_SCHED, || TraceEvent::Finish {
                        thread: i as u32,
                        at,
                    });
                }
                StepResult::Blocked(BlockReason::Budget) => {
                    // Slice preemption: still runnable next round.
                    state[i] = ThreadState::Ready;
                }
                StepResult::Blocked(b) => {
                    if was_parked && steps == 0 {
                        // Polling mode only: fruitless re-poll of an
                        // already-blocked thread.
                        world.threads[i].stats.stall_polls += 1;
                    }
                    let reparked = was_parked && steps == 0 && state[i] == ThreadState::Waiting(b);
                    state[i] = ThreadState::Waiting(b);
                    if !reparked {
                        // A *fresh* park (not a fruitless polling-mode
                        // re-poll), so the event is grid-identical.
                        let (queue, full) = match b {
                            BlockReason::QueueFull(q) => {
                                wait_full[q.0 as usize].push(i);
                                world.wait_flags[q.0 as usize] |= WAIT_FULL;
                                (q.0, true)
                            }
                            BlockReason::QueueEmpty(q) => {
                                wait_empty[q.0 as usize].push(i);
                                world.wait_flags[q.0 as usize] |= WAIT_EMPTY;
                                (q.0, false)
                            }
                            BlockReason::Budget => unreachable!("matched above"),
                        };
                        let at = world.threads[i].cursor();
                        world.emit(EV_SCHED, || TraceEvent::Park {
                            thread: i as u32,
                            queue,
                            full,
                            at,
                        });
                    }
                    if was_woken && steps == 0 {
                        // Woken, but another thread claimed the entry or
                        // slot first.
                        world.threads[i].stats.spurious_wakeups += 1;
                        let at = world.threads[i].cursor();
                        world.emit(EV_SCHED, || TraceEvent::SpuriousWake {
                            thread: i as u32,
                            at,
                        });
                    }
                }
                StepResult::Progress => unreachable!("run_slice never returns bare Progress"),
            }
            // Wake waiters of every queue this slice touched (including,
            // possibly, thread `i` itself if it both fed and drained the
            // same queue). The world only logs events for queues whose
            // wait flag is set, so this loop is empty on most slices.
            world.drain_events_into(&mut events);
            for ev in events.drain(..) {
                let (waiters, flag, at) = match ev {
                    QueueEvent::Enq(q, at) => (&mut wait_empty[q.0 as usize], WAIT_EMPTY, at),
                    QueueEvent::Deq(q, at) => (&mut wait_full[q.0 as usize], WAIT_FULL, at),
                };
                for j in waiters.drain(..) {
                    if state[j] == ThreadState::Finished {
                        // A parked thread killed by fault injection must
                        // stay dead; never resurrect it to Ready.
                        continue;
                    }
                    state[j] = ThreadState::Ready;
                    woken[j] = true;
                    world.threads[j].stats.wakeups += 1;
                    let queue = match ev {
                        QueueEvent::Enq(q, _) | QueueEvent::Deq(q, _) => q.0,
                    };
                    world.emit(EV_SCHED, || TraceEvent::Wake {
                        thread: j as u32,
                        queue,
                        at,
                    });
                }
                let q = match ev {
                    QueueEvent::Enq(q, _) | QueueEvent::Deq(q, _) => q.0 as usize,
                };
                world.wait_flags[q] &= !flag;
            }
        }
        if !compute_live {
            if killed.iter().any(|&k| k) {
                // Every compute stage either finished or was killed: a
                // kill-bearing run must still end in a structured trap,
                // never a silent success.
                let at = world.last_progress();
                world.emit(EV_WATCHDOG, || TraceEvent::Verdict {
                    verdict: TraceVerdict::Killed,
                    at,
                });
                return Err(watchdog::killed_trap(
                    world,
                    interps,
                    &conds(&state, &killed),
                    &pipeline.name,
                ));
            }
            return Ok(());
        }
        if !progressed {
            let at = world.last_progress();
            world.emit(EV_WATCHDOG, || TraceEvent::Verdict {
                verdict: TraceVerdict::Deadlock,
                at,
            });
            return Err(deadlock_trap(world, interps, &state, &killed, pipeline));
        }
        // One advance point per round: reclaim issue-calendar slots
        // (the idle-cycle fast-forward) and run the watchdog verdict —
        // consolidated so fast-forward can never skip a watchdog check.
        if let Some(v) = world.advance_to(AdvanceEvent::RoundEnd) {
            // Cancellation is host-timing-driven (which round it fires
            // at depends on the wall clock), so unlike the two watchdog
            // limits it is deliberately NOT a trace event: emitting one
            // would make trace digests nondeterministic. The structured
            // trap carries the full snapshot instead.
            let tv = match v {
                watchdog::Verdict::CycleLimit => Some(TraceVerdict::CycleLimit),
                watchdog::Verdict::Livelock => Some(TraceVerdict::Livelock),
                watchdog::Verdict::Cancelled => None,
            };
            if let Some(tv) = tv {
                let at = world.last_progress();
                world.emit(EV_WATCHDOG, || TraceEvent::Verdict { verdict: tv, at });
            }
            return Err(watchdog::fire(
                v,
                world,
                interps,
                &conds(&state, &killed),
                &pipeline.name,
            ));
        }
    }
}

/// Maps scheduler thread states (plus the kill flags) to the watchdog's
/// snapshot-visible conditions.
fn conds(state: &[ThreadState], killed: &[bool]) -> Vec<ThreadCond> {
    state
        .iter()
        .zip(killed)
        .map(|(s, &k)| match (s, k) {
            (_, true) => ThreadCond::Killed,
            (ThreadState::Ready, _) => ThreadCond::Ready,
            (ThreadState::Waiting(b), _) => ThreadCond::Waiting(*b),
            (ThreadState::Finished, _) => ThreadCond::Finished,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Deadlock diagnostics
// ---------------------------------------------------------------------

/// The queues a stage enqueues into / dequeues from (program body plus
/// control-value handlers; RA stages are covered because their FSM is
/// expressed as a stage program too).
fn queue_dirs(program: &StageProgram) -> (BTreeSet<QueueId>, BTreeSet<QueueId>) {
    let mut enq = BTreeSet::new();
    let mut deq = BTreeSet::new();
    {
        let mut visit = |s: &Stmt| match s {
            Stmt::Enq { queue, .. } | Stmt::EnqCtrl { queue, .. } => {
                enq.insert(*queue);
            }
            Stmt::EnqSel { queues, .. } => {
                enq.extend(queues.iter().copied());
            }
            Stmt::Deq { queue, .. } => {
                deq.insert(*queue);
            }
            _ => {}
        };
        for s in &program.func.body {
            s.for_each(&mut visit);
        }
        for h in &program.handlers {
            for s in &h.body {
                s.for_each(&mut visit);
            }
        }
    }
    for h in &program.handlers {
        deq.insert(h.queue);
    }
    (enq, deq)
}

/// Builds the deadlock trap: the wait cycle (stage -> blocked-on queue
/// -> stage owning the other end) when one exists, plus the shared
/// diagnostics snapshot (same format as the livelock/cycle-cap traps).
fn deadlock_trap<E: StageExec>(
    world: &TimingWorld<'_>,
    interps: &[E],
    state: &[ThreadState],
    killed: &[bool],
    pipeline: &Pipeline,
) -> Trap {
    let qdesc = |q: QueueId| watchdog::qdesc(world, q);
    let dirs: Vec<_> = pipeline
        .stages
        .iter()
        .map(|s| queue_dirs(&s.program))
        .collect();
    let blocked: Vec<(usize, BlockReason)> = state
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            ThreadState::Waiting(b) => Some((i, *b)),
            _ => None,
        })
        .collect();

    // Edges: a blocked stage waits on the *live* stages that could
    // relieve it — the other end of the queue it is blocked on.
    let relievers = |reason: BlockReason| -> Vec<usize> {
        let Some(q) = reason.queue() else {
            return Vec::new();
        };
        (0..interps.len())
            .filter(|&j| state[j] != ThreadState::Finished)
            .filter(|&j| match reason {
                BlockReason::QueueEmpty(_) => dirs[j].0.contains(&q),
                BlockReason::QueueFull(_) => dirs[j].1.contains(&q),
                BlockReason::Budget => false,
            })
            .collect()
    };

    // DFS for a wait cycle among the blocked stages.
    let cycle = find_cycle(&blocked, &relievers);
    let cycle_str = match cycle {
        Some(path) => {
            let mut s = String::from("wait cycle: ");
            for (k, &i) in path.iter().enumerate() {
                let reason = blocked
                    .iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, b)| *b)
                    .expect("cycle nodes are blocked");
                let edge = match reason {
                    BlockReason::QueueFull(q) => format!("enq {}", qdesc(q)),
                    BlockReason::QueueEmpty(q) => format!("deq {}", qdesc(q)),
                    BlockReason::Budget => String::new(),
                };
                let node = |i: usize| {
                    let ra = if world.threads[i].is_ra { " (RA)" } else { "" };
                    format!("`{}`{}", interps[i].name(), ra)
                };
                s.push_str(&format!("{} --[{}]--> ", node(i), edge));
                if k + 1 == path.len() {
                    s.push_str(&node(path[0]));
                }
            }
            s
        }
        None => String::from(
            "no wait cycle (starvation: a blocked stage's counterpart stages have finished)",
        ),
    };

    Trap::Deadlock(format!(
        "pipeline `{}` deadlocked; {}; blocked stages: {}",
        pipeline.name,
        cycle_str,
        watchdog::render_snapshot(world, interps, &conds(state, killed))
    ))
}

/// Finds a cycle in the wait graph, returned as the list of stage
/// indices along it (each waits on the next, last waits on the first).
fn find_cycle(
    blocked: &[(usize, BlockReason)],
    relievers: &dyn Fn(BlockReason) -> Vec<usize>,
) -> Option<Vec<usize>> {
    let reason_of = |i: usize| blocked.iter().find(|(j, _)| *j == i).map(|(_, b)| *b);
    for &(start, _) in blocked {
        // DFS with an explicit path; only blocked stages can be part of
        // a cycle (a runnable stage would have made progress).
        let mut path: Vec<usize> = vec![start];
        let mut iters: Vec<Vec<usize>> = vec![reason_of(start).map(relievers).unwrap_or_default()];
        let mut visited = BTreeSet::new();
        visited.insert(start);
        while let Some(frontier) = iters.last_mut() {
            let Some(next) = frontier.pop() else {
                path.pop();
                iters.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&p| p == next) {
                return Some(path[pos..].to_vec());
            }
            if !visited.insert(next) {
                continue;
            }
            let Some(r) = reason_of(next) else {
                continue; // not blocked: dead end for cycle purposes
            };
            path.push(next);
            iters.push(relievers(r));
        }
    }
    None
}
