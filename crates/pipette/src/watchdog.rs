//! Forward-progress watchdog: converts livelocks and runaway runs into
//! structured traps carrying a diagnostics snapshot.
//!
//! The timing world records the completion time of the most recent
//! *progress event* — a successful enqueue, a successful dequeue, or a
//! stage finishing — globally and per thread. At every scheduler round
//! boundary the watchdog compares the simulated-time frontier (the
//! latest completion over all threads) against two limits:
//!
//! * **`cycle_cap`** — an absolute bound on session time. Crossing it
//!   raises [`Trap::CycleLimit`]. Off by default; the PGO search uses it
//!   as the per-candidate profiling budget.
//! * **`livelock_window`** — the maximum distance the frontier may run
//!   ahead of the last progress event. A stage spinning on a memory flag
//!   that will never be set (a CV-polling livelock) keeps *executing*,
//!   so deadlock detection never fires — but it stops touching queues,
//!   so this window catches it as [`Trap::Livelock`]. Pipelines without
//!   queues are exempt (a serial stage has no queue activity at all);
//!   their backstop is the op budget and the cycle cap.
//!
//! Both checks run at round boundaries, which are identical across the
//! {event-driven, polling} × {flat, tree} grid, and compare quantities
//! (completion times, atom counts) that are also grid-identical — so a
//! watchdog trap fires at the *same simulated cycle with the same
//! message* no matter how the host schedules or executes the stages.
//! `tests/sim_robustness.rs` pins this.
//!
//! The diagnostics snapshot lists every thread with its scheduler state,
//! atoms executed, and cycles since its own last progress event, plus
//! all queue occupancies. Deadlock reports append the same snapshot, so
//! all stall-shaped traps share one format.

use crate::timing::TimingWorld;
use phloem_ir::{BlockReason, StageExec, Trap};
use serde::{Deserialize, Serialize};

/// Forward-progress watchdog limits (see the module docs). Part of
/// [`crate::MachineConfig`]; the defaults are safe for every workload in
/// the repo (the slowest golden pipeline finishes in ~115 k cycles,
/// three orders of magnitude under the default window).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Absolute simulated-cycle cap for the session; `u64::MAX`
    /// disables it (the default).
    pub cycle_cap: u64,
    /// Maximum cycles the frontier may advance past the last progress
    /// event before the run is declared livelocked; `u64::MAX` disables
    /// the check.
    pub livelock_window: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            cycle_cap: u64::MAX,
            livelock_window: 4_000_000,
        }
    }
}

impl WatchdogConfig {
    /// Disables both checks (measurement baselines).
    pub fn off() -> Self {
        WatchdogConfig {
            cycle_cap: u64::MAX,
            livelock_window: u64::MAX,
        }
    }

    /// Default livelock window plus an absolute cycle cap (profiling
    /// budgets).
    pub fn with_cycle_cap(cycle_cap: u64) -> Self {
        WatchdogConfig {
            cycle_cap,
            ..Self::default()
        }
    }
}

/// Which watchdog limit fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// The session frontier crossed [`WatchdogConfig::cycle_cap`].
    CycleLimit,
    /// No progress event within [`WatchdogConfig::livelock_window`].
    Livelock,
    /// The session's host-side `CancelToken` fired (wall-clock deadline
    /// or an explicit cancel, e.g. a draining service). Unlike the two
    /// limits above this verdict is *host-timing-driven*: the simulated
    /// state at the firing round is exactly what an uncancelled run
    /// would have had there, but *which* round it fires at depends on
    /// the host clock — so it is never emitted as a trace event.
    Cancelled,
}

/// Cheap per-round check: compares the frontier against both limits.
/// Returns `None` on the hot path without building any diagnostics.
pub(crate) fn verdict(world: &TimingWorld<'_>) -> Option<Verdict> {
    let wd = world.watchdog;
    let frontier = world.frontier();
    if frontier > wd.cycle_cap {
        return Some(Verdict::CycleLimit);
    }
    if wd.livelock_window != u64::MAX
        && world.monitor_queues()
        && frontier.saturating_sub(world.last_progress()) > wd.livelock_window
    {
        return Some(Verdict::Livelock);
    }
    None
}

/// Scheduler-visible thread condition at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThreadCond {
    /// Runnable (or mid-slice) at the round boundary.
    Ready,
    /// Parked on (or re-polling) a queue.
    Waiting(BlockReason),
    /// The stage program terminated normally.
    Finished,
    /// Terminated by an injected [`crate::faults::Fault::ThreadKill`].
    Killed,
}

/// One-line occupancy description of a queue (`q3 full 24/24`): the
/// deadlock wait-cycle edges and this snapshot both render through
/// [`crate::queue::QueueOcc`]'s single `Display` impl.
pub(crate) fn qdesc(world: &TimingWorld<'_>, q: phloem_ir::QueueId) -> String {
    world.queues[q.0 as usize].occ(q.0).to_string()
}

/// Renders the shared diagnostics snapshot: per-thread state, atoms
/// executed, cycles since that thread's last progress event, and every
/// queue's occupancy. All quantities are grid-identical.
pub(crate) fn render_snapshot<E: StageExec>(
    world: &TimingWorld<'_>,
    interps: &[E],
    conds: &[ThreadCond],
) -> String {
    let frontier = world.frontier();
    let threads: Vec<String> = interps
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let what = match conds[i] {
                ThreadCond::Ready => "ready".to_string(),
                ThreadCond::Waiting(BlockReason::QueueFull(q)) => {
                    format!("enq blocked, {}", qdesc(world, q))
                }
                ThreadCond::Waiting(BlockReason::QueueEmpty(q)) => {
                    format!("deq blocked, {}", qdesc(world, q))
                }
                ThreadCond::Waiting(BlockReason::Budget) => "preempted".to_string(),
                ThreadCond::Finished => "finished".to_string(),
                ThreadCond::Killed => "killed (fault)".to_string(),
            };
            let ra = if world.threads[i].is_ra { " (RA)" } else { "" };
            let idle = frontier.saturating_sub(world.threads[i].last_progress);
            format!(
                "`{}`{}: {}, atoms={}, idle={}",
                it.name(),
                ra,
                what,
                it.steps(),
                idle
            )
        })
        .collect();
    let queues: Vec<String> = (0..world.queues.len())
        .map(|q| qdesc(world, phloem_ir::QueueId(q as u16)))
        .collect();
    let mut s = format!("snapshot @cycle {}: {}", frontier, threads.join("; "));
    if world.monitor_queues() {
        s.push_str(&format!("; queues: {}", queues.join(", ")));
    }
    s
}

/// Builds the trap for a fired watchdog verdict.
pub(crate) fn fire<E: StageExec>(
    v: Verdict,
    world: &TimingWorld<'_>,
    interps: &[E],
    conds: &[ThreadCond],
    pipeline_name: &str,
) -> Trap {
    let cycle = world.frontier();
    let detail = format!(
        "pipeline `{}` (window={}, cap={}); {}",
        pipeline_name,
        world.watchdog.livelock_window,
        world.watchdog.cycle_cap,
        render_snapshot(world, interps, conds)
    );
    match v {
        Verdict::CycleLimit => Trap::CycleLimit { cycle, detail },
        Verdict::Livelock => Trap::Livelock { cycle, detail },
        Verdict::Cancelled => Trap::Cancelled {
            cycle,
            detail: format!("reason: {}; {}", world.cancel_reason(), detail),
        },
    }
}

/// Builds the trap for a run that ended with fault-killed threads: a
/// kill can never produce a silent success, even if every surviving
/// compute stage drained cleanly.
pub(crate) fn killed_trap<E: StageExec>(
    world: &TimingWorld<'_>,
    interps: &[E],
    conds: &[ThreadCond],
    pipeline_name: &str,
) -> Trap {
    Trap::ThreadKilled {
        cycle: world.frontier(),
        detail: format!(
            "pipeline `{}`; {}",
            pipeline_name,
            render_snapshot(world, interps, conds)
        ),
    }
}
