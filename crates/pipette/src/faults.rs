//! Deterministic, seeded fault injection for the timed simulator.
//!
//! A [`FaultPlan`] perturbs one pipeline invocation with hardware-shaped
//! faults: queue-capacity squeezes, op-latency spikes (RA latency
//! variance), transient dequeue-delivery stalls, and thread kills. The
//! design invariant — enforced by `fuzzdiff --faults` across the full
//! scheduler × engine grid — is that a faulted run always terminates in
//! bounded cycles with either the correct output or a structured
//! [`phloem_ir::Trap`]: never a hang, never silent corruption.
//!
//! ## Determinism
//!
//! Every fault trigger is keyed on a quantity that is bit-identical
//! across the {event-driven, polling} × {flat, tree} grid:
//!
//! * **enqueue/dequeue ordinals** (the per-queue count of *successful*
//!   operations so far, within one invocation) — identical because both
//!   schedulers observe the identical sequence of successful queue ops;
//! * **simulated issue cycles** — identical because blocked polls are
//!   timing no-ops;
//! * **per-stage atom counts** ([`phloem_ir::StageExec::steps`]),
//!   checked at scheduler round boundaries, which both schedulers place
//!   identically.
//!
//! Faults also never *unblock-then-reblock* a parked thread behind the
//! event-driven scheduler's back: a squeeze only makes full-checks
//! stricter (the wake event for the squeezed queue still fires on every
//! dequeue), and the latency faults are pure completion-time additions
//! that never turn a successful op into a blocked one.

use phloem_ir::Time;
use serde::{Deserialize, Serialize};

/// One injected fault (see the module docs for determinism rules).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Clamp a queue's effective capacity to `cap` entries while its
    /// successful-enqueue ordinal lies in `[from_enq, until_enq)`.
    /// Models transient back-pressure (e.g. a partially power-gated
    /// queue bank); the physical slot-recycling timing is untouched.
    QueueSqueeze {
        /// Architectural queue index.
        queue: u16,
        /// Effective capacity during the window (clamped to >= 1).
        cap: usize,
        /// First enqueue ordinal affected.
        from_enq: u64,
        /// First enqueue ordinal no longer affected.
        until_enq: u64,
    },
    /// Add `extra` cycles to every uop/load completion of one thread
    /// whose issue cycle lies in `[from, until)`. Models RA latency
    /// spikes (DRAM refresh, link contention) when aimed at an RA
    /// thread, and slow-core jitter otherwise.
    LatencySpike {
        /// Hardware thread (stage index).
        thread: usize,
        /// Extra completion latency in cycles.
        extra: u64,
        /// First issue cycle affected.
        from: Time,
        /// First issue cycle no longer affected.
        until: Time,
    },
    /// Add `extra` cycles to the delivery time of dequeues on `queue`
    /// whose successful-dequeue ordinal lies in `[from_deq, until_deq)`.
    /// Models a transient stall in the queue's read port.
    DequeueStall {
        /// Architectural queue index.
        queue: u16,
        /// Extra delivery latency in cycles.
        extra: u64,
        /// First dequeue ordinal affected.
        from_deq: u64,
        /// First dequeue ordinal no longer affected.
        until_deq: u64,
    },
    /// Kill one thread once it has executed `after_atoms` interpreter
    /// atoms (checked at round boundaries). A killed thread stops
    /// executing; the run can then only end in a structured trap
    /// ([`phloem_ir::Trap::ThreadKilled`] if the survivors drain,
    /// usually a starvation deadlock otherwise) — never a silent
    /// success.
    ThreadKill {
        /// Hardware thread (stage index).
        thread: usize,
        /// Atom count at which the kill triggers.
        after_atoms: u64,
    },
}

/// A set of faults applied to subsequent invocations of a
/// [`crate::Session`] (ordinal and cycle windows are relative to each
/// invocation's own counters and launch base, so plans compose with
/// multi-invocation hosts).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected faults; effects of overlapping faults stack
    /// (capacities take the minimum, latencies add).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan over an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a seeded random plan of 1–3 faults for a pipeline with
    /// `threads` stages and `queues` architectural queues.
    /// `cycle_horizon`/`atom_horizon` bound the trigger windows and
    /// should come from an unfaulted reference run (its makespan and its
    /// largest per-stage atom count). Identical seeds yield identical
    /// plans.
    pub fn random(
        seed: u64,
        threads: usize,
        queues: usize,
        cycle_horizon: u64,
        atom_horizon: u64,
    ) -> FaultPlan {
        let mut s = seed.wrapping_mul(2).wrapping_add(1); // nonzero state
        let mut next = move || {
            // xorshift64*: small, seedable, good enough for fuzzing.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let threads = threads.max(1);
        let cyc = cycle_horizon.max(16);
        let atoms = atom_horizon.max(16);
        let n = 1 + (next() % 3) as usize;
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            // Weighted kind pick; queue-shaped faults need a queue.
            let kind = if queues == 0 { 7 } else { next() % 8 };
            let f = match kind {
                0..=2 => {
                    let from = next() % atoms;
                    Fault::QueueSqueeze {
                        queue: (next() % queues as u64) as u16,
                        cap: 1 + (next() % 3) as usize,
                        from_enq: from,
                        until_enq: from + 1 + next() % (atoms / 2 + 1),
                    }
                }
                3..=4 => {
                    let from = next() % cyc;
                    Fault::LatencySpike {
                        thread: (next() % threads as u64) as usize,
                        extra: 20 + next() % 2000,
                        from,
                        until: from + 1 + next() % (cyc / 2 + 1),
                    }
                }
                5..=6 => {
                    let from = next() % atoms;
                    Fault::DequeueStall {
                        queue: (next() % queues as u64) as u16,
                        extra: 10 + next() % 500,
                        from_deq: from,
                        until_deq: from + 1 + next() % (atoms / 2 + 1),
                    }
                }
                _ => Fault::ThreadKill {
                    thread: (next() % threads as u64) as usize,
                    after_atoms: next() % atoms,
                },
            };
            faults.push(f);
        }
        FaultPlan { faults }
    }

    /// True if the plan kills at least one thread (such a plan can never
    /// produce a successful run).
    pub fn has_kill(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::ThreadKill { .. }))
    }

    /// Effective capacity of `queue` for its next enqueue (ordinal
    /// `enq_ord`), given the `physical` capacity.
    pub(crate) fn queue_cap(&self, queue: usize, enq_ord: u64, physical: usize) -> usize {
        let mut cap = physical;
        for f in &self.faults {
            if let Fault::QueueSqueeze {
                queue: q,
                cap: c,
                from_enq,
                until_enq,
            } = f
            {
                if *q as usize == queue && enq_ord >= *from_enq && enq_ord < *until_enq {
                    cap = cap.min((*c).max(1));
                }
            }
        }
        cap
    }

    /// Extra completion latency for an op of `thread` issued at `at`.
    pub(crate) fn latency_extra(&self, thread: usize, at: Time) -> u64 {
        let mut extra = 0;
        for f in &self.faults {
            if let Fault::LatencySpike {
                thread: t,
                extra: e,
                from,
                until,
            } = f
            {
                if *t == thread && at >= *from && at < *until {
                    extra += *e;
                }
            }
        }
        extra
    }

    /// Extra delivery latency for the next dequeue on `queue` (ordinal
    /// `deq_ord`).
    pub(crate) fn deq_extra(&self, queue: usize, deq_ord: u64) -> u64 {
        let mut extra = 0;
        for f in &self.faults {
            if let Fault::DequeueStall {
                queue: q,
                extra: e,
                from_deq,
                until_deq,
            } = f
            {
                if *q as usize == queue && deq_ord >= *from_deq && deq_ord < *until_deq {
                    extra += *e;
                }
            }
        }
        extra
    }

    /// Atom count at which `thread` is killed, if any kill targets it
    /// (the earliest wins).
    pub(crate) fn kill_at(&self, thread: usize) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ThreadKill {
                    thread: t,
                    after_atoms,
                } if *t == thread => Some(*after_atoms),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 4, 3, 10_000, 5_000);
        let b = FaultPlan::random(42, 4, 3, 10_000, 5_000);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.faults.len() <= 3);
        let c = FaultPlan::random(43, 4, 3, 10_000, 5_000);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn accessors_respect_windows() {
        let p = FaultPlan::new(vec![
            Fault::QueueSqueeze {
                queue: 1,
                cap: 2,
                from_enq: 10,
                until_enq: 20,
            },
            Fault::LatencySpike {
                thread: 0,
                extra: 100,
                from: 50,
                until: 60,
            },
            Fault::DequeueStall {
                queue: 0,
                extra: 7,
                from_deq: 0,
                until_deq: 5,
            },
            Fault::ThreadKill {
                thread: 2,
                after_atoms: 99,
            },
        ]);
        assert_eq!(p.queue_cap(1, 15, 24), 2);
        assert_eq!(p.queue_cap(1, 20, 24), 24);
        assert_eq!(p.queue_cap(0, 15, 24), 24);
        assert_eq!(p.latency_extra(0, 55), 100);
        assert_eq!(p.latency_extra(0, 60), 0);
        assert_eq!(p.latency_extra(1, 55), 0);
        assert_eq!(p.deq_extra(0, 4), 7);
        assert_eq!(p.deq_extra(0, 5), 0);
        assert_eq!(p.kill_at(2), Some(99));
        assert_eq!(p.kill_at(0), None);
        assert!(p.has_kill());
    }
}
