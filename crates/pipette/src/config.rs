//! Machine configuration (Table III of the paper).

use crate::scheduler::SchedulerKind;
use crate::watchdog::WatchdogConfig;
use phloem_ir::{ExecEngine, UopClass};
use serde::{Deserialize, Serialize};

/// Parameters of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Capacity in KiB.
    pub kb: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

/// Full machine configuration.
///
/// [`MachineConfig::paper_1core`] reproduces the single-core evaluation
/// configuration of Table III; [`MachineConfig::paper_multicore`] the
/// 4-core replication experiments (Fig. 14).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// SMT threads per core.
    pub smt_threads: usize,
    /// Issue width (micro-ops per cycle per core).
    pub issue_width: u64,
    /// Reorder-buffer entries per core (partitioned among active threads).
    pub rob_size: usize,
    /// Outstanding long-miss limit per hardware thread (fill-buffer
    /// share).
    pub mshrs: usize,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Hardware queue capacity in elements ("queues up to 24 elements deep").
    pub queue_capacity: usize,
    /// Maximum number of architectural queues ("16 queues max").
    pub max_queues: u16,
    /// Reference accelerators per core ("4 RAs").
    pub ras_per_core: usize,
    /// Outstanding memory accesses one RA may have in flight.
    pub ra_concurrency: usize,
    /// Fixed per-operation latency inside an RA FSM.
    pub ra_op_latency: u64,
    /// Queue operation latency (enq/deq through the physical register file).
    pub queue_latency: u64,
    /// Extra latency for a dequeue whose producer runs on another core.
    pub inter_core_queue_latency: u64,
    /// L1 data cache.
    pub l1: CacheParams,
    /// Private L2.
    pub l2: CacheParams,
    /// Shared L3 capacity *per core* in KiB (Table III: 2 MB/core).
    pub l3_kb_per_core: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 latency.
    pub l3_latency: u64,
    /// Minimum main-memory latency in cycles.
    pub dram_latency: u64,
    /// Number of memory controllers.
    pub dram_controllers: usize,
    /// Cycles one controller is busy per 64 B line (25 GB/s at 3.5 GHz).
    pub dram_cycles_per_line: u64,
    /// Enable the per-core stream prefetcher.
    pub prefetch: bool,
    /// Lines fetched ahead by the stream prefetcher.
    pub prefetch_degree: u64,
    /// Host overhead, in cycles, to launch a pipeline invocation (used
    /// between program phases / fringe rounds).
    pub launch_overhead: u64,
    /// How the simulator schedules stage threads. Does not affect
    /// simulated cycles (both kinds are bit-identical); `Polling` is
    /// the slower reference model kept for differential testing.
    pub scheduler: SchedulerKind,
    /// Which execution engine runs stage programs. Does not affect
    /// simulated cycles (both engines are bit-identical); `Tree` is the
    /// slower oracle kept for differential testing.
    #[serde(default)]
    pub engine: ExecEngine,
    /// Forward-progress watchdog limits (livelock window on, cycle cap
    /// off by default). Never fires on a healthy run; when it does fire
    /// it raises a structured trap instead of hanging the host.
    #[serde(default)]
    pub watchdog: WatchdogConfig,
    /// Idle-cycle fast-forward: the per-core issue calendar is a
    /// bounded ring whose base skips past reclaimed cycles at round
    /// boundaries, instead of a dense array spanning the invocation.
    /// Host-side only — simulated cycles are bit-identical either way
    /// (`tests/fast_forward.rs` and fuzzdiff enforce it); `false` keeps
    /// the dense reference layout for differential testing.
    #[serde(default = "default_true")]
    pub fast_forward: bool,
}

fn default_true() -> bool {
    true
}

impl MachineConfig {
    /// Table III configuration with a single core.
    pub fn paper_1core() -> MachineConfig {
        MachineConfig {
            cores: 1,
            smt_threads: 4,
            issue_width: 6,
            rob_size: 224,
            mshrs: 16,
            mispredict_penalty: 14,
            queue_capacity: 24,
            max_queues: 16,
            ras_per_core: 4,
            ra_concurrency: 24,
            ra_op_latency: 1,
            queue_latency: 1,
            inter_core_queue_latency: 12,
            l1: CacheParams {
                kb: 32,
                ways: 8,
                latency: 4,
            },
            l2: CacheParams {
                kb: 256,
                ways: 8,
                latency: 12,
            },
            l3_kb_per_core: 2048,
            l3_ways: 16,
            l3_latency: 40,
            dram_latency: 120,
            dram_controllers: 2,
            dram_cycles_per_line: 9,
            prefetch: true,
            prefetch_degree: 2,
            launch_overhead: 300,
            scheduler: SchedulerKind::EventDriven,
            engine: ExecEngine::Flat,
            watchdog: WatchdogConfig::default(),
            fast_forward: default_true(),
        }
    }

    /// Table III configuration scaled to `cores` cores (Fig. 14 uses 4).
    pub fn paper_multicore(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            ..Self::paper_1core()
        }
    }

    /// Latency in cycles of a compute micro-op class.
    pub fn uop_latency(&self, class: UopClass) -> u64 {
        match class {
            UopClass::IntAlu => 1,
            UopClass::IntMul => 3,
            UopClass::IntDiv => 20,
            UopClass::FpAlu => 4,
            UopClass::FpMul => 4,
            UopClass::FpDiv => 14,
            UopClass::QueuePush | UopClass::QueuePop => self.queue_latency,
            UopClass::CtrlJump => 2,
        }
    }

    /// ROB share of one thread when `active` threads run on a core.
    pub fn window_per_thread(&self, active: usize) -> usize {
        (self.rob_size / active.max(1)).max(8)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_1core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let c = MachineConfig::paper_1core();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.smt_threads, 4);
        assert_eq!(c.max_queues, 16);
        assert_eq!(c.queue_capacity, 24);
        assert_eq!(c.ras_per_core, 4);
        assert_eq!(c.l1.kb, 32);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.l3_latency, 40);
        assert_eq!(c.dram_latency, 120);
        assert_eq!(c.dram_controllers, 2);
    }

    #[test]
    fn window_partitioning() {
        let c = MachineConfig::paper_1core();
        assert_eq!(c.window_per_thread(1), 224);
        assert_eq!(c.window_per_thread(4), 56);
        assert_eq!(c.window_per_thread(0), 224);
    }
}
