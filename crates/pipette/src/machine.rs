//! Simulation sessions: pipeline invocation, statistics roll-up, and
//! energy accounting.
//!
//! The machine is split across three modules:
//!
//! * [`crate::timing`] — the cycle-level [`phloem_ir::World`]
//!   implementation (cores, caches, branch prediction, timed queues);
//! * [`crate::queue`] — hardware FIFO state and occupancy accounting;
//! * [`crate::scheduler`] — the event-driven SMT scheduler that drives
//!   the stage interpreters.
//!
//! This module owns the user-facing [`Session`]/[`Machine`] API.

use crate::cache::MemHierarchy;
use crate::config::MachineConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::faults::FaultPlan;
use crate::native::{BackendScope, ExecBackend};
use crate::scheduler;
pub use crate::scheduler::SchedulerKind;
use crate::stats::RunStats;
use crate::timing::{
    build_flat_interps, build_interps, compile_pipeline, AdvanceEvent, TimingWorld,
};
use crate::trace::{StageMeta, TraceMeta, TraceSink};
use phloem_ir::{ExecEngine, MemState, Pipeline, StageKind, Time, Trap, Value};
use phloem_pool::CancelToken;
use std::cell::RefCell;

/// Per-thread step budget for timed runs.
pub const DEFAULT_BUDGET: u64 = 4_000_000_000;

thread_local! {
    /// Ambient cancellation stack for [`CancelScope`]: sessions created
    /// while a scope is live inherit its token without every caller in
    /// between having to thread one through (the benchsuite's `run()`
    /// entry points construct their own sessions internally).
    static AMBIENT_CANCEL: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard installing an ambient [`CancelToken`] for the current
/// thread: every [`Session`] *created* while the guard is live (and not
/// given an explicit token via [`Session::set_cancel`]) polls this token
/// at its watchdog window boundaries. Scopes nest; the innermost wins.
///
/// This is how the service layer cancels work that builds its sessions
/// several stack frames down (benchsuite runners, the PGO search): the
/// pool task enters a scope with the request's token and everything the
/// task constructs inherits it. The token is captured at session
/// *creation*, so a session outliving the scope keeps honouring it.
pub struct CancelScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl CancelScope {
    /// Installs `token` as the current thread's ambient cancel token
    /// until the returned guard drops.
    pub fn enter(token: CancelToken) -> CancelScope {
        AMBIENT_CANCEL.with(|s| s.borrow_mut().push(token));
        CancelScope {
            _not_send: std::marker::PhantomData,
        }
    }

    /// The innermost ambient token, if a scope is live on this thread.
    pub fn current() -> Option<CancelToken> {
        AMBIENT_CANCEL.with(|s| s.borrow().last().cloned())
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        AMBIENT_CANCEL.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// A pipeline's stage programs lowered to bytecode ahead of time.
///
/// When the flat engine is selected, [`Session::run`] lowers every stage
/// program on each invocation. That cost is negligible for one-shot
/// runs, but host-driven algorithms invoke the same pipeline once per
/// round (BFS rounds, PageRank-Delta phases): compile once with
/// [`CompiledPipeline::new`] and invoke via [`Session::run_compiled`].
///
/// ## Sharing (the service-layer compile-cache hook)
///
/// A `CompiledPipeline` is immutable after construction apart from the
/// monotonic validation cache below, so one artifact can be shared
/// across sessions and host threads behind an `Arc` — the
/// `phloem-service` content-addressed compile cache stores exactly
/// that, keyed by `(program digest, PassConfig, MachineConfig)`. The
/// validation cache composes with sharing: the *first* invocation under
/// a given machine's limits pays the O(pipeline) pre-sim checks, and
/// every later `run_compiled` against the same limits — from any
/// session holding the same `Arc` — skips them
/// ([`CompiledPipeline::prevalidated_for`] reports this, which the
/// service layer surfaces as cache-hit provenance).
pub struct CompiledPipeline {
    progs: Vec<phloem_ir::BytecodeProgram>,
    /// Machine limits the pipeline has already passed the pre-sim checks
    /// against ([`Pipeline::check`] + `validate_pipeline` + the core
    /// budget). Set after the first invocation so per-round
    /// re-invocations skip the O(pipeline) validation walk — sound
    /// because `run_compiled` requires the same pipeline every call. A
    /// session with different limits misses the key and re-validates.
    validated: std::sync::OnceLock<ValidationKey>,
}

/// (max_queues, cores, smt_threads, ras_per_core) — every machine
/// parameter the pre-sim pipeline checks read.
type ValidationKey = (u16, usize, usize, usize);

impl CompiledPipeline {
    /// Lowers each stage program of `pipeline` to bytecode.
    ///
    /// # Errors
    /// Traps on malformed stage programs (see [`phloem_ir::compile`]).
    pub fn new(pipeline: &Pipeline) -> Result<CompiledPipeline, Trap> {
        Ok(CompiledPipeline {
            progs: compile_pipeline(pipeline)?,
            validated: std::sync::OnceLock::new(),
        })
    }

    /// Number of lowered stage programs (service-layer cache accounting).
    pub fn stage_count(&self) -> usize {
        self.progs.len()
    }

    /// True when a prior invocation already validated this artifact
    /// against `cfg`'s machine limits, i.e. the next
    /// [`Session::run_compiled`] under `cfg` will skip the O(pipeline)
    /// pre-sim checks. The service layer reports this as provenance on
    /// cached responses ("validated: cached").
    pub fn prevalidated_for(&self, cfg: &MachineConfig) -> bool {
        let limits: ValidationKey = (cfg.max_queues, cfg.cores, cfg.smt_threads, cfg.ras_per_core);
        self.validated.get() == Some(&limits)
    }
}

/// A persistent simulation session: cache state, memory, and accumulated
/// statistics survive across pipeline invocations, so host-driven
/// algorithms (BFS rounds, PageRank-Delta phases) are charged realistic
/// warm-cache behaviour plus a launch overhead per invocation.
pub struct Session {
    cfg: MachineConfig,
    emodel: EnergyModel,
    hier: MemHierarchy,
    mem: MemState,
    now: Time,
    stats: RunStats,
    /// Cores that hosted at least one mapped stage in any invocation;
    /// static energy is charged only for these (idle cores of a
    /// multicore config are power-gated, matching the paper's per-core
    /// accounting for the Fig. 11/14 replication experiments).
    active_cores: std::collections::BTreeSet<usize>,
    /// Injected faults applied to every subsequent invocation (see
    /// [`crate::faults`]); `None` keeps the timed hot path fault-free.
    faults: Option<FaultPlan>,
    /// Structured-event trace sink observing every subsequent invocation
    /// (see [`crate::trace`]); `None` keeps the timed hot path
    /// trace-free.
    trace: Option<Box<dyn TraceSink>>,
    /// Host-side cancellation token polled at watchdog window
    /// boundaries; captured from the ambient [`CancelScope`] at session
    /// creation unless [`Session::set_cancel`] overrides it.
    cancel: Option<CancelToken>,
    /// Execution substrate: the cycle-level simulator (default) or the
    /// native thread backend. Captured from the ambient [`BackendScope`]
    /// at creation unless [`Session::set_backend`] overrides it.
    backend: ExecBackend,
}

impl Session {
    /// Creates a session over `mem` with the given machine configuration.
    pub fn new(cfg: MachineConfig, mem: MemState) -> Session {
        let hier = MemHierarchy::new(&cfg);
        Session {
            cfg,
            emodel: EnergyModel::default(),
            hier,
            mem,
            now: 0,
            stats: RunStats::default(),
            active_cores: std::collections::BTreeSet::new(),
            faults: None,
            trace: None,
            cancel: CancelScope::current(),
            backend: BackendScope::current().unwrap_or(ExecBackend::Sim),
        }
    }

    /// Selects the execution substrate for subsequent invocations. The
    /// simulator predicts cycles; the native backend runs the pipeline
    /// on real OS threads and reports wall-clock nanoseconds in the
    /// cycle slot (final memory is identical for correct pipelines —
    /// `tests/native_equivalence.rs` pins this).
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// The currently selected execution substrate.
    pub fn backend(&self) -> &ExecBackend {
        &self.backend
    }

    /// Installs a cancellation token checked at every watchdog window
    /// boundary of subsequent invocations: once it fires (wall-clock
    /// deadline or explicit cancel), the run stops with a structured
    /// [`Trap::Cancelled`] instead of running away. Cancellation is
    /// cycle-neutral — a token that never fires changes nothing, and a
    /// fired one stops the run *between* rounds, never mid-round.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Removes any installed cancellation token (including an inherited
    /// ambient one).
    pub fn clear_cancel(&mut self) {
        self.cancel = None;
    }

    /// Applies a fault plan to every subsequent invocation (fuzzing and
    /// robustness tests). Ordinal/cycle windows in the plan are relative
    /// to each invocation (queues are rebuilt per invocation and cycle
    /// windows are measured from the invocation's launch base).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
    }

    /// Removes any injected fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Installs a trace sink observing every subsequent invocation. The
    /// sink sees `begin`/`end` per invocation plus every structured
    /// event whose interest bit it declares; tracing never changes a
    /// single simulated cycle (`tests/trace_oracle.rs` pins this).
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink (typically to
    /// downcast it and read what it collected).
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Elapsed simulated cycles.
    pub fn elapsed(&self) -> Time {
        self.now
    }

    /// Current memory state.
    pub fn mem(&self) -> &MemState {
        &self.mem
    }

    /// Mutable memory (host-side work between invocations, e.g. swapping
    /// fringe buffers, is free — as in the paper, where it is negligible).
    pub fn mem_mut(&mut self) -> &mut MemState {
        &mut self.mem
    }

    /// Runs one pipeline invocation to completion; returns the cycles it
    /// took (including the launch overhead).
    ///
    /// # Errors
    /// Traps on malformed pipelines, runtime errors, or deadlock.
    pub fn run(&mut self, pipeline: &Pipeline, params: &[(&str, Value)]) -> Result<Time, Trap> {
        self.run_with(pipeline, params, self.cfg.scheduler)
    }

    /// Like [`Session::run`] with an explicit scheduler. Simulated
    /// cycles are identical for every [`SchedulerKind`]; `Polling` is
    /// the reference model for differential tests and host-throughput
    /// baselines.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_with(
        &mut self,
        pipeline: &Pipeline,
        params: &[(&str, Value)],
        scheduler: SchedulerKind,
    ) -> Result<Time, Trap> {
        self.run_with_engine(pipeline, params, scheduler, self.cfg.engine)
    }

    /// Like [`Session::run`] with both the scheduler and the execution
    /// engine explicit. Simulated cycles, statistics, and memory are
    /// identical for every scheduler × engine combination; the
    /// differential tests pin this invariant.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_with_engine(
        &mut self,
        pipeline: &Pipeline,
        params: &[(&str, Value)],
        scheduler: SchedulerKind,
        engine: ExecEngine,
    ) -> Result<Time, Trap> {
        self.run_inner(pipeline, params, scheduler, engine, None)
    }

    /// Like [`Session::run`], reusing bytecode lowered ahead of time by
    /// [`CompiledPipeline::new`] (the tree engine has nothing to reuse
    /// and ignores it, so callers can pass it unconditionally and keep
    /// the engine dimension). `compiled` must come from an identical
    /// pipeline.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_compiled(
        &mut self,
        pipeline: &Pipeline,
        compiled: &CompiledPipeline,
        params: &[(&str, Value)],
    ) -> Result<Time, Trap> {
        self.run_inner(
            pipeline,
            params,
            self.cfg.scheduler,
            self.cfg.engine,
            Some(compiled),
        )
    }

    fn run_inner(
        &mut self,
        pipeline: &Pipeline,
        params: &[(&str, Value)],
        scheduler: SchedulerKind,
        engine: ExecEngine,
        compiled: Option<&CompiledPipeline>,
    ) -> Result<Time, Trap> {
        let limits: ValidationKey = (
            self.cfg.max_queues,
            self.cfg.cores,
            self.cfg.smt_threads,
            self.cfg.ras_per_core,
        );
        if compiled.is_none_or(|c| c.validated.get() != Some(&limits)) {
            // The queue budget is per core ("16 queues max"); replicated
            // pipelines get one set per core.
            pipeline.check(
                self.cfg.max_queues * self.cfg.cores as u16,
                self.cfg.smt_threads,
                self.cfg.ras_per_core,
            )?;
            if pipeline.cores_used() > self.cfg.cores {
                return Err(Trap::Malformed(format!(
                    "pipeline uses {} cores, machine has {}",
                    pipeline.cores_used(),
                    self.cfg.cores
                )));
            }
            // Queue-protocol validation before simulation: a malformed
            // pipeline should fail with a named invariant here, not as an
            // opaque deadlock or a silently wrong result.
            phloem_ir::validate_pipeline(
                pipeline,
                &phloem_ir::ValidateLimits {
                    queues_per_core: self.cfg.max_queues,
                },
                "pre-sim",
            )
            .map_err(|e| Trap::Malformed(e.to_string()))?;
            if let Some(c) = compiled {
                let _ = c.validated.set(limits);
            }
        }
        for s in &pipeline.stages {
            self.active_cores.insert(s.core);
        }
        if let ExecBackend::Native(ncfg) = self.backend {
            // Native runs share the validation path above (malformed
            // pipelines fail identically on both backends) and then
            // bypass the timing world entirely: stages execute on real
            // threads and "cycles" are wall-clock nanoseconds.
            let run = crate::native::run_native(
                pipeline,
                &mut self.mem,
                params,
                &ncfg,
                self.cfg.queue_capacity,
                self.cancel.as_ref(),
            )?;
            let mut invocation = RunStats {
                cycles: self.now + run.wall_nanos,
                threads: Vec::with_capacity(pipeline.stages.len()),
                queues: Vec::new(),
                cache: self.hier.stats,
                energy: EnergyBreakdown::default(),
                invocations: 1,
            };
            for (s, c) in pipeline.stages.iter().zip(&run.counts) {
                invocation.threads.push(crate::stats::ThreadStats {
                    name: s.program.func.name.clone(),
                    is_ra: matches!(s.kind, StageKind::Ra(_)),
                    uops: c.uops,
                    branches: c.branches,
                    loads: c.loads,
                    stores: c.stores + c.atomics,
                    enqs: c.enqs,
                    deqs: c.deqs,
                    finish_time: self.now + run.wall_nanos,
                    ..Default::default()
                });
            }
            self.stats.accumulate(&invocation);
            self.now += run.wall_nanos;
            return Ok(run.wall_nanos);
        }
        let base = self.now + self.cfg.launch_overhead;
        let nstages = pipeline.stages.len();

        if let Some(sink) = self.trace.as_deref_mut() {
            let nq = pipeline.num_queues.max(1) as usize;
            let meta = TraceMeta {
                pipeline: pipeline.name.clone(),
                base,
                stages: pipeline
                    .stages
                    .iter()
                    .map(|s| StageMeta {
                        name: s.program.func.name.clone(),
                        core: s.core,
                        is_ra: matches!(s.kind, StageKind::Ra(_)),
                    })
                    .collect(),
                queue_capacity: vec![self.cfg.queue_capacity; nq],
            };
            sink.begin(&meta);
        }
        let mut world = TimingWorld::new(
            &self.cfg,
            &mut self.hier,
            &mut self.mem,
            pipeline,
            base,
            self.faults.as_ref(),
            self.cancel.clone(),
            self.trace.as_deref_mut(),
        );
        let is_compute: Vec<bool> = pipeline
            .stages
            .iter()
            .map(|s| matches!(s.kind, StageKind::Compute))
            .collect();

        let sched_result = match engine {
            ExecEngine::Tree => {
                let mut interps = build_interps(pipeline, params, DEFAULT_BUDGET);
                scheduler::run(&mut world, &mut interps, &is_compute, pipeline, scheduler)
            }
            ExecEngine::Flat => {
                let owned;
                let progs = match compiled {
                    Some(c) => &c.progs,
                    None => {
                        owned = compile_pipeline(pipeline)?;
                        &owned
                    }
                };
                let mut interps = build_flat_interps(progs, pipeline, params, DEFAULT_BUDGET);
                scheduler::run(&mut world, &mut interps, &is_compute, pipeline, scheduler)
            }
        };

        // Final advance (no verdict) plus the makespan: last completion
        // among the pipeline's threads.
        world.advance_to(AdvanceEvent::InvocationEnd);
        let end = world.frontier();
        let thread_states = std::mem::take(&mut world.threads);
        let queue_states = std::mem::take(&mut world.queues);
        drop(world);
        // Trapped invocations still close the trace (sinks flush open
        // spans at `end`); the trap itself is already in the stream as a
        // `Verdict` event when the watchdog or scheduler raised it.
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.end(end);
        }
        sched_result?;

        // Fold per-thread stats into the session (positional by stage).
        let mut invocation = RunStats {
            cycles: end,
            threads: Vec::with_capacity(nstages),
            queues: queue_states.into_iter().map(|q| q.stats).collect(),
            cache: self.hier.stats,
            energy: EnergyBreakdown::default(),
            invocations: 1,
        };
        for mut th in thread_states {
            // Materialize the hot-state completion time into the
            // user-facing statistics.
            th.stats.finish_time = th.finish_time;
            invocation.threads.push(th.stats);
        }
        self.stats.accumulate(&invocation);
        self.now = end;
        Ok(end - (base - self.cfg.launch_overhead))
    }

    /// Finishes the session: computes energy and returns memory + stats.
    pub fn finish(mut self) -> (MemState, RunStats) {
        let m = &self.emodel;
        let mut e = EnergyBreakdown::default();
        for t in &self.stats.threads {
            let per_op = if t.is_ra { m.ra_pj } else { m.uop_pj };
            let ops = t.uops + t.loads + t.stores;
            e.core_dynamic_pj += ops as f64 * per_op;
            e.core_dynamic_pj += t.branches as f64 * m.branch_pj;
            e.core_dynamic_pj += t.mispredicts as f64 * m.mispredict_pj;
            e.core_dynamic_pj += (t.enqs + t.deqs) as f64 * m.queue_pj;
        }
        let c = &self.hier.stats;
        e.cache_pj += c.l1_hits as f64 * m.l1_pj;
        e.cache_pj += c.l2_hits as f64 * (m.l1_pj + m.l2_pj);
        e.cache_pj += c.l3_hits as f64 * (m.l1_pj + m.l2_pj + m.l3_pj);
        e.cache_pj += c.mem_accesses as f64 * (m.l1_pj + m.l2_pj + m.l3_pj);
        e.dram_pj += (c.mem_accesses + c.prefetches) as f64 * m.dram_pj;
        e.static_pj = self.now as f64 * self.active_cores.len() as f64 * m.static_core_pj_per_cycle;
        self.stats.energy = e;
        self.stats.cycles = self.now;
        self.stats.cache = self.hier.stats;
        (self.mem, self.stats)
    }

    /// Accumulated statistics so far (energy is filled in by
    /// [`Session::finish`]).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// One-shot convenience runner.
pub struct Machine;

/// Result of [`Machine::run_once`].
#[derive(Debug)]
pub struct RunOutcome {
    /// Final memory.
    pub mem: MemState,
    /// Statistics (energy included).
    pub stats: RunStats,
}

impl Machine {
    /// Runs a single pipeline invocation on a fresh machine.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_once(
        cfg: &MachineConfig,
        pipeline: &Pipeline,
        mem: MemState,
        params: &[(&str, Value)],
    ) -> Result<RunOutcome, Trap> {
        let mut session = Session::new(cfg.clone(), mem);
        session.run(pipeline, params)?;
        let (mem, stats) = session.finish();
        Ok(RunOutcome { mem, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{ArrayDecl, Expr, FunctionBuilder, Pipeline, StageProgram};

    /// The service-layer compile cache shares one artifact across
    /// sessions and host threads behind an `Arc`; that contract is a
    /// compile-time property, pinned here so a future field (say, an
    /// `Rc`-backed constant pool) cannot silently revoke it.
    #[test]
    fn compiled_pipelines_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<std::sync::Arc<CompiledPipeline>>();
    }

    /// The validation cache is keyed by machine limits: the first run
    /// under a config validates, later runs (and any session sharing
    /// the artifact) skip the walk, and a config with different limits
    /// misses the key and re-validates.
    #[test]
    fn validation_cache_tracks_machine_limits() {
        let (p, mem) = spread_pipeline(1);
        let cfg = MachineConfig::paper_1core();
        let compiled = CompiledPipeline::new(&p).unwrap();
        assert!(!compiled.prevalidated_for(&cfg));
        let mut session = Session::new(cfg.clone(), mem);
        session.run_compiled(&p, &compiled, &[]).unwrap();
        assert!(compiled.prevalidated_for(&cfg));
        let other = MachineConfig::paper_multicore(4);
        assert!(!compiled.prevalidated_for(&other));
    }

    /// `stages` independent one-stage summing programs, one per core.
    fn spread_pipeline(stages: usize) -> (Pipeline, MemState) {
        let mut p = Pipeline::new("spread");
        for k in 0..stages {
            let mut b = FunctionBuilder::new(format!("s{k}"));
            let a = b.array_i64("a");
            let out = b.array_i64("out");
            let i = b.var_i64("i");
            let s = b.var_i64("s");
            b.for_loop(i, Expr::i64(0), Expr::i64(64), |b| {
                let l = b.load(a, Expr::var(i));
                b.assign(s, Expr::add(Expr::var(s), l));
            });
            b.store(out, Expr::i64(k as i64), Expr::var(s));
            p.add_stage(StageProgram::plain(b.build()), k);
        }
        let mut mem = MemState::new();
        mem.alloc_i64(ArrayDecl::i64("a"), 0..64);
        mem.alloc(ArrayDecl::i64("out"), stages.max(1));
        (p, mem)
    }

    /// Static energy is charged per *active* core (one with a mapped
    /// stage), not per configured core: a 1-core pipeline must pay the
    /// same static rate on a 4-core machine as on a 1-core one.
    #[test]
    fn static_energy_counts_only_mapped_cores() {
        let per_cycle = EnergyModel::default().static_core_pj_per_cycle;

        let (p, mem) = spread_pipeline(1);
        let cfg1 = MachineConfig::paper_1core();
        let r1 = Machine::run_once(&cfg1, &p, mem, &[]).unwrap();
        assert_eq!(
            r1.stats.energy.static_pj,
            r1.stats.cycles as f64 * per_cycle
        );

        let (p, mem) = spread_pipeline(1);
        let cfg4 = MachineConfig::paper_multicore(4);
        let r4 = Machine::run_once(&cfg4, &p, mem, &[]).unwrap();
        assert_eq!(
            r4.stats.energy.static_pj,
            r4.stats.cycles as f64 * per_cycle,
            "idle cores of the 4-core config must not be charged"
        );

        let (p, mem) = spread_pipeline(4);
        let r44 = Machine::run_once(&cfg4, &p, mem, &[]).unwrap();
        assert_eq!(
            r44.stats.energy.static_pj,
            r44.stats.cycles as f64 * 4.0 * per_cycle,
            "a 4-core placement pays four cores' static power"
        );
    }
}
