//! The Pipette machine: a cycle-level timing [`World`] plus a
//! cooperative SMT scheduler.
//!
//! ## Timing model
//!
//! Each stage (or RA) runs as a hardware thread driven by the shared
//! [`StepInterp`] from `phloem-ir`. The model captures the phenomena the
//! paper's results hinge on:
//!
//! * **Bounded instruction window per thread** (ROB partitioned among
//!   active SMT threads): in-order dispatch, out-of-order completion,
//!   in-order retirement — dependent cache misses serialize while
//!   independent ones overlap up to the window and MSHR limits.
//! * **Shared issue bandwidth** (6 uops/cycle/core across SMT threads).
//! * **Branch misprediction penalties** from a 2-bit predictor, so
//!   data-dependent branches serialize execution.
//! * **Hardware queues** with blocking enq/deq, bounded depth, 1-cycle
//!   operations through the register file, and an inter-core delivery
//!   penalty.
//! * **Reference accelerators** as dedicated FSM threads: no core issue
//!   bandwidth, fixed op latency, limited outstanding accesses.
//! * **Cache hierarchy + DRAM bandwidth** shared by threads and RAs.

use crate::branch::BranchPredictor;
use crate::cache::{HitLevel, MemHierarchy};
use crate::config::MachineConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::stats::{RunStats, ThreadStats};
use phloem_ir::{
    bind_params, ArrayId, BinOp, BranchId, MemState, Pipeline, QueueId, StageKind, StageSpec,
    StepInterp, StepResult, Tid, Time, Trap, UopClass, Value, World,
};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Per-thread step budget for timed runs.
pub const DEFAULT_BUDGET: u64 = 4_000_000_000;

#[derive(Clone, Debug)]
struct QueueEntry {
    value: Value,
    ready: Time,
    core: usize,
}

#[derive(Clone, Debug)]
struct HwQueue {
    entries: VecDeque<QueueEntry>,
    cap: usize,
    /// Completion times of past dequeues; slot for entry `k` frees at
    /// `deq_ring[(k - cap) % cap]`.
    deq_ring: Vec<Time>,
    enq_count: u64,
    deq_count: u64,
}

impl HwQueue {
    fn new(cap: usize) -> HwQueue {
        HwQueue {
            entries: VecDeque::with_capacity(cap),
            cap,
            deq_ring: vec![0; cap],
            enq_count: 0,
            deq_count: 0,
        }
    }

    fn slot_free_time(&self) -> Time {
        if self.enq_count >= self.cap as u64 {
            self.deq_ring[((self.enq_count - self.cap as u64) % self.cap as u64) as usize]
        } else {
            0
        }
    }
}

#[derive(Debug)]
struct ThreadTiming {
    core: usize,
    is_ra: bool,
    window: Vec<Time>,
    wpos: usize,
    last_retire: Time,
    cursor: Time,
    flow: Time,
    /// Outstanding long-miss limit (fill-buffer share), per thread so the
    /// accounting stays time-coherent.
    mshr: Vec<Time>,
    mshr_pos: usize,
    predictor: BranchPredictor,
    stats: ThreadStats,
}

#[derive(Debug, Default)]
struct CoreTiming {
    issue: BTreeMap<Time, u64>,
}

#[derive(Clone, Copy)]
enum Attr {
    Normal,
    Queue,
}

struct TimingWorld<'a> {
    cfg: &'a MachineConfig,
    hier: &'a mut MemHierarchy,
    mem: &'a mut MemState,
    queues: Vec<HwQueue>,
    threads: Vec<ThreadTiming>,
    cores: Vec<CoreTiming>,
    base: Time,
    ops_since_prune: u64,
}

impl<'a> TimingWorld<'a> {
    fn thread(&mut self, t: Tid) -> &mut ThreadTiming {
        &mut self.threads[t.0 as usize]
    }

    fn alloc_issue(&mut self, core: usize, want: Time) -> Time {
        let width = self.cfg.issue_width;
        let map = &mut self.cores[core].issue;
        let mut t = want;
        loop {
            let e = map.entry(t).or_insert(0);
            if *e < width {
                *e += 1;
                return t;
            }
            t += 1;
        }
    }

    fn prune_issue_maps(&mut self) {
        let floor = self
            .threads
            .iter()
            .map(|t| t.cursor)
            .min()
            .unwrap_or(self.base);
        for core in &mut self.cores {
            core.issue = core.issue.split_off(&floor);
        }
    }

    /// Computes the issue time of one op for thread `t` whose inputs are
    /// ready at `dep`, attributing any stall per `attr`.
    fn issue_at(&mut self, t: Tid, dep: Time, attr: Attr) -> Time {
        self.ops_since_prune += 1;
        if self.ops_since_prune >= 1 << 17 {
            self.ops_since_prune = 0;
            self.prune_issue_maps();
        }
        let ti = t.0 as usize;
        let (core, is_ra, window_floor, cursor, flow) = {
            let th = &self.threads[ti];
            // RA engines are FSMs: their bookkeeping ops are not bounded
            // by an instruction window, only their outstanding loads are
            // (see `load`).
            let wf = if th.is_ra {
                self.base
            } else {
                th.window[th.wpos]
            };
            (th.core, th.is_ra, wf, th.cursor, th.flow)
        };
        // RA engines are sequential FSMs: steps are strictly in order.
        // OOO cores execute out of order (bounded by the window), so no
        // cursor floor there — but see `last_qop` for queue operations.
        let want = if is_ra {
            dep.max(window_floor).max(self.base).max(flow).max(cursor)
        } else {
            dep.max(window_floor).max(self.base).max(flow)
        };
        let t_issue = if is_ra {
            want
        } else {
            self.alloc_issue(core, want)
        };
        let th = &mut self.threads[ti];
        let gap = t_issue.saturating_sub(cursor.max(self.base));
        if gap > 0 {
            match attr {
                Attr::Queue => th.stats.queue_stall_cycles += gap,
                Attr::Normal => {
                    if dep <= flow && flow > cursor {
                        th.stats.frontend_stall_cycles += gap;
                    } else {
                        th.stats.backend_stall_cycles += gap;
                    }
                }
            }
        }
        th.cursor = th.cursor.max(t_issue);
        t_issue
    }

    /// Retires one op completing at `completion`.
    fn complete(&mut self, t: Tid, completion: Time) {
        let th = self.thread(t);
        th.stats.finish_time = th.stats.finish_time.max(completion);
        if th.is_ra {
            // The concurrency ring is only advanced by loads (below).
            return;
        }
        let retire = completion.max(th.last_retire);
        th.last_retire = retire;
        let pos = th.wpos;
        th.window[pos] = retire;
        th.wpos = (pos + 1) % th.window.len();
    }

    /// Applies the RA outstanding-access limit to a load issued at `ti`,
    /// returning the constrained issue time.
    fn ra_load_slot(&mut self, t: Tid, ti_want: Time, lat: u64) -> Time {
        let th = self.thread(t);
        let floor = th.window[th.wpos];
        let ti = ti_want.max(floor);
        let pos = th.wpos;
        th.window[pos] = ti + lat;
        th.wpos = (pos + 1) % th.window.len();
        ti
    }

    fn op_latency(&self, t: Tid, class: UopClass) -> u64 {
        if self.threads[t.0 as usize].is_ra {
            self.cfg.ra_op_latency
        } else {
            self.cfg.uop_latency(class)
        }
    }

    fn mem_access(&mut self, t: Tid, array: ArrayId, index: i64, dep: Time) -> Result<(u64, Time), Trap> {
        let addr = self.mem.addr(array, index)?;
        let t_probe = self.issue_at(t, dep, Attr::Normal);
        let core = self.threads[t.0 as usize].core;
        let (lat, level) = self.hier.access(core, addr, t_probe);
        let _ = core;
        // Long misses contend for the thread's miss-buffer share.
        let t_issue = if matches!(level, HitLevel::L3 | HitLevel::Mem) {
            let th = &mut self.threads[t.0 as usize];
            let floor = th.mshr[th.mshr_pos];
            let ti = t_probe.max(floor);
            let pos = th.mshr_pos;
            th.mshr[pos] = ti + lat;
            th.mshr_pos = (pos + 1) % th.mshr.len();
            ti
        } else {
            t_probe
        };
        Ok((lat, t_issue))
    }
}

impl World for TimingWorld<'_> {
    fn uop(&mut self, t: Tid, class: UopClass, dep: Time) -> Time {
        let lat = self.op_latency(t, class);
        let ti = self.issue_at(t, dep, Attr::Normal);
        let tc = ti + lat;
        self.complete(t, tc);
        self.thread(t).stats.uops += 1;
        tc
    }

    fn branch(&mut self, t: Tid, site: BranchId, taken: bool, cond_ready: Time) -> Time {
        let ti = self.issue_at(t, cond_ready, Attr::Normal);
        let tc = ti + 1;
        self.complete(t, tc);
        let penalty = self.cfg.mispredict_penalty;
        let th = self.thread(t);
        th.stats.branches += 1;
        if th.is_ra {
            // RA FSM sequencing has no speculation.
            return th.flow;
        }
        if th.predictor.mispredicted(site, taken) {
            th.stats.mispredicts += 1;
            let resume = tc + penalty;
            th.stats.frontend_stall_cycles += penalty;
            th.flow = th.flow.max(resume);
        }
        th.flow
    }

    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let v = self.mem.load(array, index)?;
        let (lat, mut ti) = self.mem_access(t, array, index, dep)?;
        if self.threads[t.0 as usize].is_ra {
            ti = self.ra_load_slot(t, ti, lat);
        }
        let tc = ti + lat;
        self.complete(t, tc);
        self.thread(t).stats.loads += 1;
        Ok((v, tc))
    }

    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<Time, Trap> {
        self.mem.store(array, index, value)?;
        let (_lat, ti) = self.mem_access(t, array, index, dep)?;
        // Stores drain through the store buffer: retirement is fast.
        let tc = ti + 1;
        self.complete(t, tc);
        self.thread(t).stats.stores += 1;
        Ok(tc)
    }

    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let old = self.mem.load(array, index)?;
        let new = phloem_ir::eval_binop(op, old, value)?;
        self.mem.store(array, index, new)?;
        let (lat, ti) = self.mem_access(t, array, index, dep)?;
        // Atomics pay the access round trip plus locked-RMW overhead
        // (~Skylake `lock xadd` cost).
        let tc = ti + lat + 16;
        self.complete(t, tc);
        let th = self.thread(t);
        th.stats.loads += 1;
        th.stats.stores += 1;
        Ok((old, tc))
    }

    fn try_enq(
        &mut self,
        t: Tid,
        q: QueueId,
        w: Value,
        dep: Time,
    ) -> Result<Option<Time>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        if self.queues[qi].entries.len() >= self.queues[qi].cap {
            return Ok(None);
        }
        let slot_free = self.queues[qi].slot_free_time();
        let cursor = self.threads[t.0 as usize].cursor;
        let is_ra = self.threads[t.0 as usize].is_ra;
        let waited = slot_free.saturating_sub(dep.max(cursor));
        let lat = self.op_latency(t, UopClass::QueuePush);
        // RA engines "launch memory requests in parallel but deliver
        // loads in order": the FSM issues the enqueue at its own pace and
        // the entry becomes ready when the data arrives.
        let ti = if is_ra {
            self.issue_at(t, slot_free, Attr::Queue)
        } else {
            self.issue_at(t, dep.max(slot_free), Attr::Queue)
        };
        let tc = (ti + lat).max(if is_ra { dep } else { 0 });
        self.complete(t, tc);
        let core = self.threads[t.0 as usize].core;
        {
            let th = self.thread(t);
            th.stats.enqs += 1;
            th.stats.queue_stall_cycles += waited.saturating_sub(ti.saturating_sub(cursor));
        }
        let queue = &mut self.queues[qi];
        queue.entries.push_back(QueueEntry {
            value: w,
            ready: tc,
            core,
        });
        queue.enq_count += 1;
        Ok(Some(tc))
    }

    fn try_deq(&mut self, t: Tid, q: QueueId, dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        if self.queues[qi].entries.is_empty() {
            return Ok(None);
        }
        let entry = self.queues[qi].entries.pop_front().expect("nonempty");
        let th_core = self.threads[t.0 as usize].core;
        let avail = if entry.core == th_core {
            entry.ready
        } else {
            entry.ready + self.cfg.inter_core_queue_latency
        };
        let lat = self.op_latency(t, UopClass::QueuePop);
        let cursor = self.threads[t.0 as usize].cursor;
        let waited = avail.saturating_sub(dep.max(cursor) + lat);
        let ti = self.issue_at(t, dep.max(avail.saturating_sub(lat)), Attr::Queue);
        let tc = (ti + lat).max(avail);
        self.complete(t, tc);
        {
            let th = self.thread(t);
            th.stats.deqs += 1;
            let _ = waited; // already folded into the Attr::Queue gap
        }
        let queue = &mut self.queues[qi];
        let pos = (queue.deq_count % queue.cap as u64) as usize;
        queue.deq_ring[pos] = tc;
        queue.deq_count += 1;
        if std::env::var("TRACE_DEQ").is_ok() {
            eprintln!("deq t{} q{} ti={} avail={} tc={} dep={}", t.0, q.0, ti, avail, tc, dep);
        }
        Ok(Some((entry.value, tc)))
    }

    fn mem(&self) -> &MemState {
        self.mem
    }

    fn mem_mut(&mut self) -> &mut MemState {
        self.mem
    }
}

/// A persistent simulation session: cache state, memory, and accumulated
/// statistics survive across pipeline invocations, so host-driven
/// algorithms (BFS rounds, PageRank-Delta phases) are charged realistic
/// warm-cache behaviour plus a launch overhead per invocation.
pub struct Session {
    cfg: MachineConfig,
    emodel: EnergyModel,
    hier: MemHierarchy,
    mem: MemState,
    now: Time,
    stats: RunStats,
}

impl Session {
    /// Creates a session over `mem` with the given machine configuration.
    pub fn new(cfg: MachineConfig, mem: MemState) -> Session {
        let hier = MemHierarchy::new(&cfg);
        Session {
            cfg,
            emodel: EnergyModel::default(),
            hier,
            mem,
            now: 0,
            stats: RunStats::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Elapsed simulated cycles.
    pub fn elapsed(&self) -> Time {
        self.now
    }

    /// Current memory state.
    pub fn mem(&self) -> &MemState {
        &self.mem
    }

    /// Mutable memory (host-side work between invocations, e.g. swapping
    /// fringe buffers, is free — as in the paper, where it is negligible).
    pub fn mem_mut(&mut self) -> &mut MemState {
        &mut self.mem
    }

    /// Runs one pipeline invocation to completion; returns the cycles it
    /// took (including the launch overhead).
    ///
    /// # Errors
    /// Traps on malformed pipelines, runtime errors, or deadlock.
    pub fn run(&mut self, pipeline: &Pipeline, params: &[(&str, Value)]) -> Result<Time, Trap> {
        // The queue budget is per core ("16 queues max"); replicated
        // pipelines get one set per core.
        pipeline.check(
            self.cfg.max_queues * self.cfg.cores as u16,
            self.cfg.smt_threads,
            self.cfg.ras_per_core,
        )?;
        if pipeline.cores_used() > self.cfg.cores {
            return Err(Trap::Malformed(format!(
                "pipeline uses {} cores, machine has {}",
                pipeline.cores_used(),
                self.cfg.cores
            )));
        }
        let base = self.now + self.cfg.launch_overhead;
        let nstages = pipeline.stages.len();

        // Threads per core determine window partitioning.
        let mut compute_per_core = vec![0usize; self.cfg.cores];
        for s in &pipeline.stages {
            if matches!(s.kind, StageKind::Compute) {
                compute_per_core[s.core] += 1;
            }
        }
        let threads: Vec<ThreadTiming> = pipeline
            .stages
            .iter()
            .map(|s| {
                let is_ra = matches!(s.kind, StageKind::Ra(_));
                let window = if is_ra {
                    self.cfg.ra_concurrency
                } else {
                    self.cfg.window_per_thread(compute_per_core[s.core])
                };
                ThreadTiming {
                    core: s.core,
                    is_ra,
                    window: vec![base; window.max(1)],
                    wpos: 0,
                    last_retire: base,
                    cursor: base,
                    flow: base,
                    mshr: vec![base; self.cfg.mshrs.max(1)],
                    mshr_pos: 0,
                    predictor: BranchPredictor::new(),
                    stats: ThreadStats {
                        name: s.program.func.name.clone(),
                        is_ra,
                        finish_time: base,
                        ..Default::default()
                    },
                }
            })
            .collect();

        let mut world = TimingWorld {
            cfg: &self.cfg,
            hier: &mut self.hier,
            mem: &mut self.mem,
            queues: (0..pipeline.num_queues.max(1))
                .map(|_| HwQueue::new(self.cfg.queue_capacity))
                .collect(),
            threads,
            cores: (0..self.cfg.cores)
                .map(|_| CoreTiming {
                    issue: BTreeMap::new(),
                })
                .collect(),
            base,
            ops_since_prune: 0,
        };

        let mut interps: Vec<StepInterp<'_>> = pipeline
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let bound = bind_params(&s.program.func, params);
                StepInterp::new(
                    StageSpec {
                        func: &s.program.func,
                        handlers: &s.program.handlers,
                    },
                    Tid(i as u32),
                    &bound,
                )
                .with_budget(DEFAULT_BUDGET)
            })
            .collect();
        let is_compute: Vec<bool> = pipeline
            .stages
            .iter()
            .map(|s| matches!(s.kind, StageKind::Compute))
            .collect();

        const SLICE: u32 = 128;
        loop {
            let mut progressed = false;
            let mut compute_live = false;
            for (i, interp) in interps.iter_mut().enumerate() {
                if interp.is_finished() {
                    continue;
                }
                if is_compute[i] {
                    compute_live = true;
                }
                let mut n = 0;
                loop {
                    match interp.step(&mut world)? {
                        StepResult::Progress => {
                            progressed = true;
                            n += 1;
                            if n >= SLICE {
                                break;
                            }
                        }
                        StepResult::Blocked(_) => break,
                        StepResult::Finished => {
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if !compute_live {
                break;
            }
            if !progressed {
                let blocked: Vec<String> = interps
                    .iter()
                    .zip(&is_compute)
                    .filter(|(it, _)| !it.is_finished())
                    .map(|(it, c)| format!("{}{}", it.name(), if *c { "" } else { " (RA)" }))
                    .collect();
                return Err(Trap::Deadlock(format!(
                    "pipeline `{}` stalled; unfinished stages: {blocked:?}",
                    pipeline.name
                )));
            }
        }

        // Makespan: last completion among compute threads (idle blocked
        // RAs do not extend the run).
        let end = world
            .threads
            .iter()
            .map(|t| t.stats.finish_time)
            .max()
            .unwrap_or(base)
            .max(base);
        let thread_states = std::mem::take(&mut world.threads);
        drop(interps);
        drop(world);

        // Fold per-thread stats into the session (positional by stage).
        let mut invocation = RunStats {
            cycles: end,
            threads: Vec::with_capacity(nstages),
            cache: self.hier.stats,
            energy: EnergyBreakdown::default(),
            invocations: 1,
        };
        for th in thread_states {
            invocation.threads.push(th.stats);
        }
        self.stats.accumulate(&invocation);
        self.now = end;
        Ok(end - (base - self.cfg.launch_overhead))
    }

    /// Finishes the session: computes energy and returns memory + stats.
    pub fn finish(mut self) -> (MemState, RunStats) {
        let m = &self.emodel;
        let mut e = EnergyBreakdown::default();
        for t in &self.stats.threads {
            let per_op = if t.is_ra { m.ra_pj } else { m.uop_pj };
            let ops = t.uops + t.loads + t.stores;
            e.core_dynamic_pj += ops as f64 * per_op;
            e.core_dynamic_pj += t.branches as f64 * m.branch_pj;
            e.core_dynamic_pj += t.mispredicts as f64 * m.mispredict_pj;
            e.core_dynamic_pj += (t.enqs + t.deqs) as f64 * m.queue_pj;
        }
        let c = &self.hier.stats;
        e.cache_pj += c.l1_hits as f64 * m.l1_pj;
        e.cache_pj += c.l2_hits as f64 * (m.l1_pj + m.l2_pj);
        e.cache_pj += c.l3_hits as f64 * (m.l1_pj + m.l2_pj + m.l3_pj);
        e.cache_pj += c.mem_accesses as f64 * (m.l1_pj + m.l2_pj + m.l3_pj);
        e.dram_pj += (c.mem_accesses + c.prefetches) as f64 * m.dram_pj;
        e.static_pj = self.now as f64 * self.cfg.cores as f64 * m.static_core_pj_per_cycle;
        self.stats.energy = e;
        self.stats.cycles = self.now;
        self.stats.cache = self.hier.stats;
        (self.mem, self.stats)
    }

    /// Accumulated statistics so far (energy is filled in by
    /// [`Session::finish`]).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// One-shot convenience runner.
pub struct Machine;

/// Result of [`Machine::run_once`].
pub struct RunOutcome {
    /// Final memory.
    pub mem: MemState,
    /// Statistics (energy included).
    pub stats: RunStats,
}

impl Machine {
    /// Runs a single pipeline invocation on a fresh machine.
    ///
    /// # Errors
    /// See [`Session::run`].
    pub fn run_once(
        cfg: &MachineConfig,
        pipeline: &Pipeline,
        mem: MemState,
        params: &[(&str, Value)],
    ) -> Result<RunOutcome, Trap> {
        let mut session = Session::new(cfg.clone(), mem);
        session.run(pipeline, params)?;
        let (mem, stats) = session.finish();
        Ok(RunOutcome { mem, stats })
    }
}
