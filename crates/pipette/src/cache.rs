//! Set-associative cache hierarchy and DRAM model.
//!
//! Per core: L1D and L2 (private); one shared L3 sized per Table III
//! (2 MB/core); DRAM with a minimum latency plus per-controller
//! bandwidth contention. A simple per-core stream prefetcher detects
//! ascending line sequences and pulls lines ahead, so linear traversals
//! (e.g. a BFS fringe scan) behave realistically on the serial baseline.

use crate::config::MachineConfig;
use phloem_ir::Time;
use serde::{Deserialize, Serialize};

const LINE_BYTES: u64 = 64;
const LINE_SHIFT: u64 = 6;

/// Which level serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared L3.
    L3,
    /// Main memory.
    Mem,
}

/// Access counters for the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit in L1.
    pub l1_hits: u64,
    /// Accesses that hit in L2.
    pub l2_hits: u64,
    /// Accesses that hit in L3.
    pub l3_hits: u64,
    /// Accesses that went to DRAM.
    pub mem_accesses: u64,
    /// Lines brought in by the prefetcher.
    pub prefetches: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.mem_accesses
    }
}

#[derive(Clone, Debug)]
struct CacheArray {
    set_mask: u64,
    ways: usize,
    /// tags[set * ways + way]; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
}

impl CacheArray {
    fn new(kb: usize, ways: usize) -> CacheArray {
        let lines = (kb * 1024) as u64 / LINE_BYTES;
        let sets = (lines / ways as u64).max(1).next_power_of_two();
        CacheArray {
            set_mask: sets - 1,
            ways,
            tags: vec![u64::MAX; (sets as usize) * ways],
            stamps: vec![0; (sets as usize) * ways],
            clock: 0,
        }
    }

    /// Looks up a line; on hit refreshes LRU. Returns true on hit.
    fn access(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.clock += 1;
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        false
    }

    /// Inserts a line, evicting LRU.
    fn insert(&mut self, line: u64) {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
    }

    /// The demand-path hot loop: branchless hit probe, then the miss
    /// path. The probe is a fixed-trip scan over the set's tags with no
    /// early exit and no data-dependent branch inside the loop (the
    /// match index accumulates via conditional move), so the common
    /// L1-hit case costs one set-mask index, one predictable
    /// hit-or-miss branch, and no allocation or division. State
    /// transitions (including the two clock bumps of the
    /// access-then-insert pair) are bit-identical to calling
    /// [`CacheArray::access`] then [`CacheArray::insert`]; the
    /// `fused_scan_matches_access_then_insert` test pins this.
    #[inline]
    fn access_or_victim(&mut self, line: u64) -> bool {
        let base = (line & self.set_mask) as usize * self.ways;
        self.clock += 1;
        let mut hit = usize::MAX;
        for (w, &tag) in self.tags[base..base + self.ways].iter().enumerate() {
            if tag == line {
                hit = w;
            }
        }
        if hit != usize::MAX {
            self.stamps[base + hit] = self.clock;
            return true;
        }
        self.miss_install(base, line);
        false
    }

    /// Miss path of [`CacheArray::access_or_victim`]: victim scan (first
    /// invalid way, else LRU) and install — [`CacheArray::insert`]'s
    /// exact policy, with the set index already resolved.
    fn miss_install(&mut self, base: usize, line: u64) {
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.clock += 1;
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
    }

    fn contains(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        (0..self.ways).any(|w| self.tags[base + w] == line)
    }
}

/// One tracked stream; `last_line == u64::MAX` marks an empty entry.
/// (A zeroed default would make a fresh table treat a miss to line 1 as
/// the continuation of a phantom stream through line 0.)
#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    last_line: u64,
    run: u32,
}

impl Default for StreamEntry {
    fn default() -> Self {
        StreamEntry {
            last_line: u64::MAX,
            run: 0,
        }
    }
}

/// The full memory hierarchy for one machine.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    l3: CacheArray,
    l1_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    dram_latency: u64,
    dram_cycles_per_line: u64,
    controllers: Vec<Time>,
    /// `controllers.len() - 1` when the count is a power of two (the
    /// paper config: 2), letting [`MemHierarchy::dram_access`] pick the
    /// controller with a mask instead of a division; `usize::MAX`
    /// flags the modulo fallback for odd counts.
    ctrl_mask: usize,
    prefetch: bool,
    prefetch_degree: u64,
    streams: Vec<[StreamEntry; 8]>,
    /// Counters (demand accesses only).
    pub stats: CacheStats,
}

impl MemHierarchy {
    /// Builds the hierarchy for a configuration.
    pub fn new(cfg: &MachineConfig) -> MemHierarchy {
        MemHierarchy {
            l1: (0..cfg.cores)
                .map(|_| CacheArray::new(cfg.l1.kb, cfg.l1.ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| CacheArray::new(cfg.l2.kb, cfg.l2.ways))
                .collect(),
            l3: CacheArray::new(cfg.l3_kb_per_core * cfg.cores, cfg.l3_ways),
            l1_latency: cfg.l1.latency,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3_latency,
            dram_latency: cfg.dram_latency,
            dram_cycles_per_line: cfg.dram_cycles_per_line,
            controllers: vec![0; cfg.dram_controllers.max(1)],
            ctrl_mask: if cfg.dram_controllers.max(1).is_power_of_two() {
                cfg.dram_controllers.max(1) - 1
            } else {
                usize::MAX
            },
            prefetch: cfg.prefetch,
            prefetch_degree: cfg.prefetch_degree,
            streams: vec![[StreamEntry::default(); 8]; cfg.cores],
            stats: CacheStats::default(),
        }
    }

    fn dram_access(&mut self, line: u64, now: Time) -> u64 {
        let ctrl = if self.ctrl_mask != usize::MAX {
            line as usize & self.ctrl_mask
        } else {
            line as usize % self.controllers.len()
        };
        let start = self.controllers[ctrl].max(now);
        self.controllers[ctrl] = start + self.dram_cycles_per_line;
        (start - now) + self.dram_latency
    }

    fn fill(&mut self, core: usize, line: u64) {
        self.l3.insert(line);
        self.l2[core].insert(line);
        self.l1[core].insert(line);
    }

    /// Performs a demand access from `core` to byte address `addr` at
    /// time `now`; returns `(latency, level)`.
    #[inline]
    pub fn access(&mut self, core: usize, addr: u64, now: Time) -> (u64, HitLevel) {
        let line = addr >> LINE_SHIFT;
        // Each level is probed once: a miss installs the line during the
        // same set scan (victim tracked alongside the lookup), replacing
        // the access-then-insert double scan of the old demand path.
        let (lat, level) = if self.l1[core].access_or_victim(line) {
            self.stats.l1_hits += 1;
            (self.l1_latency, HitLevel::L1)
        } else if self.l2[core].access_or_victim(line) {
            self.stats.l2_hits += 1;
            (self.l2_latency, HitLevel::L2)
        } else if self.l3.access_or_victim(line) {
            self.stats.l3_hits += 1;
            (self.l3_latency, HitLevel::L3)
        } else {
            self.stats.mem_accesses += 1;
            (self.l3_latency + self.dram_access(line, now), HitLevel::Mem)
        };
        if self.prefetch && level != HitLevel::L1 {
            self.train_prefetcher(core, line, now);
        }
        (lat, level)
    }

    /// Stream prefetcher: on a miss to line L where L-1 was recently
    /// missed by the same core, fetch the next `degree` lines.
    fn train_prefetcher(&mut self, core: usize, line: u64, now: Time) {
        let table = &mut self.streams[core];
        let mut matched = false;
        for e in table.iter_mut() {
            if e.last_line != u64::MAX && e.last_line + 1 == line {
                e.last_line = line;
                e.run = e.run.saturating_add(1);
                matched = e.run >= 2;
                break;
            }
        }
        if matched {
            for d in 1..=self.prefetch_degree {
                let pf = line + d;
                if !self.l2[core].contains(pf) && !self.l1[core].contains(pf) {
                    self.stats.prefetches += 1;
                    if !self.l3.access(pf) {
                        // Charge controller bandwidth but hide latency.
                        let _ = self.dram_access(pf, now);
                    }
                    self.fill(core, pf);
                }
            }
            return;
        }
        // Allocate a new stream entry (round-robin by line), unless the
        // slot already tracks this line's predecessor.
        let slot = (line % 8) as usize;
        let s = self.streams[core][slot];
        if s.last_line == u64::MAX || s.last_line + 1 != line {
            self.streams[core][slot] = StreamEntry {
                last_line: line,
                run: 1,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        let mut c = MachineConfig::paper_1core();
        c.prefetch = false;
        c
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut h = MemHierarchy::new(&cfg());
        let (lat1, lvl1) = h.access(0, 0x10000, 0);
        assert_eq!(lvl1, HitLevel::Mem);
        assert!(lat1 >= 120 + 40);
        let (lat2, lvl2) = h.access(0, 0x10008, 1000);
        assert_eq!(lvl2, HitLevel::L1, "same line must hit L1");
        assert_eq!(lat2, 4);
    }

    #[test]
    fn capacity_eviction_in_l1_falls_to_l2() {
        let mut h = MemHierarchy::new(&cfg());
        // Touch enough distinct lines mapping to the same set to evict.
        // L1: 32KB/64B = 512 lines, 8 ways, 64 sets -> stride of 64 lines
        // lands in one set.
        let set_stride = 64 * 64; // bytes
        for i in 0..9u64 {
            h.access(0, i * set_stride, 0);
        }
        // Line 0 must be evicted from L1 but still be in L2.
        let (lat, lvl) = h.access(0, 0, 10_000);
        assert_eq!(lvl, HitLevel::L2);
        assert_eq!(lat, 12);
    }

    #[test]
    fn dram_bandwidth_contention_serializes() {
        let mut h = MemHierarchy::new(&cfg());
        // Two accesses to lines on the same controller at the same time:
        // the second pays extra queueing delay.
        let (l1, _) = h.access(0, 0, 0);
        let (l2, _) = h.access(0, 2 * 64 * 2, 0); // same parity -> same ctrl
        assert!(l2 > l1);
    }

    #[test]
    fn prefetcher_hides_streaming_misses() {
        let mut c = MachineConfig::paper_1core();
        c.prefetch = true;
        let mut h = MemHierarchy::new(&c);
        let mut mem_level = 0;
        // Stream through 64 consecutive lines.
        for i in 0..64u64 {
            let (_, lvl) = h.access(0, i * 64, i * 10);
            if lvl == HitLevel::Mem {
                mem_level += 1;
            }
        }
        assert!(h.stats.prefetches > 0, "stream must be detected");
        assert!(
            mem_level < 40,
            "prefetching must absorb many streaming misses, got {mem_level}"
        );
    }

    #[test]
    fn fresh_stream_table_does_not_false_match_line_one() {
        // Regression: with zero-initialised stream entries, a fresh
        // table made a miss to line 1 look like the continuation of a
        // phantom stream through line 0, corrupting the table. The
        // sequence 1, 16, 2 then detected no stream at all: line 1
        // bumped a phantom entry (instead of allocating slot 1), line 16
        // clobbered it, and line 2 found no predecessor. With the
        // u64::MAX sentinel, line 1 allocates its own entry and line 2
        // extends it into a run, triggering a full-degree prefetch.
        let mut c = MachineConfig::paper_1core();
        c.prefetch = true;
        let mut h = MemHierarchy::new(&c);
        for line in [1u64, 16, 2] {
            h.access(0, line * 64, 0);
        }
        assert_eq!(
            h.stats.prefetches, h.prefetch_degree,
            "line 2 must extend the stream allocated by line 1"
        );
    }

    #[test]
    fn fused_scan_matches_access_then_insert() {
        // access_or_victim must leave the array in exactly the state of
        // an access() followed (on miss) by insert(): same tags, same
        // LRU stamps, same clock. Drive both through a sequence with
        // re-references, conflict misses, and invalid-way fills.
        let mut split = CacheArray::new(4, 4);
        let mut fused = CacheArray::new(4, 4);
        let mut x = 7u64;
        for i in 0..4000u64 {
            // Deterministic mix of streaming and re-referenced lines.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = if i % 3 == 0 { i / 2 } else { x % 97 };
            let hit_split = {
                let h = split.access(line);
                if !h {
                    split.insert(line);
                }
                h
            };
            let hit_fused = fused.access_or_victim(line);
            assert_eq!(hit_split, hit_fused, "hit/miss diverged at op {i}");
            assert_eq!(split.tags, fused.tags, "tags diverged at op {i}");
            assert_eq!(split.stamps, fused.stamps, "stamps diverged at op {i}");
            assert_eq!(split.clock, fused.clock, "clock diverged at op {i}");
        }
    }

    #[test]
    fn masked_set_index_equals_the_modulo_computation() {
        // The set count is forced to a power of two at construction, so
        // `line & set_mask` must agree with the reference `line % sets`
        // over a sweep of addresses — for every cache geometry in the
        // paper config (and a degenerate 1-set array).
        for (kb, ways) in [(32, 8), (256, 8), (2048, 16), (4, 4), (1, 16)] {
            let c = CacheArray::new(kb, ways);
            let sets = c.set_mask + 1;
            assert!(sets.is_power_of_two());
            for addr in (0..1u64 << 22).step_by(1 << 6) {
                let line = addr >> LINE_SHIFT;
                assert_eq!(
                    line & c.set_mask,
                    line % sets,
                    "kb={kb} ways={ways} line={line}"
                );
            }
        }
    }

    #[test]
    fn masked_controller_index_equals_the_modulo_computation() {
        // Two controllers (the paper config) -> mask path; three -> the
        // modulo fallback. Both must agree with `line % n`.
        for n in [1usize, 2, 3, 4] {
            let mut c = cfg();
            c.dram_controllers = n;
            let h = MemHierarchy::new(&c);
            for line in 0..4096u64 {
                let want = (line as usize) % n;
                let got = if h.ctrl_mask != usize::MAX {
                    line as usize & h.ctrl_mask
                } else {
                    line as usize % h.controllers.len()
                };
                assert_eq!(got, want, "n={n} line={line}");
            }
        }
    }

    #[test]
    fn cores_have_private_l1() {
        let mut c = cfg();
        c.cores = 2;
        let mut h = MemHierarchy::new(&c);
        h.access(0, 0x40000, 0);
        let (_, lvl) = h.access(1, 0x40000, 100);
        assert_eq!(lvl, HitLevel::L3, "other core's L1/L2 are private");
    }
}
