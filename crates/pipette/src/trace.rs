//! Structured, zero-overhead-when-off event tracing for the timed
//! simulator.
//!
//! The timing world and the scheduler emit [`TraceEvent`]s at every
//! semantically meaningful point of a pipeline invocation: successful
//! queue operations (with the occupancy they leave behind), fine-grained
//! stall attributions (one event per counted stall gap), scheduler
//! park/wake transitions, control-value handler dispatches, RA FSM
//! branch transitions, fault-injection applications, and watchdog
//! verdicts. Events flow into a [`TraceSink`] installed with
//! [`crate::Session::set_trace`].
//!
//! ## Grid identity
//!
//! The event stream is **bit-identical across the
//! {event-driven, polling} × {flat, tree} grid**, for the same reason
//! simulated cycles are: every emit point sits on a code path whose
//! order and operands are grid-invariant. In particular, *no* event is
//! emitted for a fruitless re-poll of a blocked thread (the only
//! behaviour that differs between the schedulers — `stall_polls` counts
//! those), and fault events fire only at the *successful* operation or
//! round boundary that applies them. `tests/trace_oracle.rs` pins the
//! identity, and pins that the trace totals reconcile exactly with
//! [`crate::RunStats`].
//!
//! ## Zero overhead when off
//!
//! Emit sites compile to a single test of a cached interest mask
//! ([`TraceSink::interest`]); with no sink installed the mask is zero
//! and no event is ever constructed. `simspeed` measures the disabled
//! path (sink installed with an empty interest mask vs. no sink) at
//! under 1% and records it in `BENCH_simspeed.json`.

use phloem_ir::Time;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Interest bit: queue traffic ([`TraceEvent::Enq`]/[`TraceEvent::Deq`]).
pub const EV_QUEUE: u32 = 1 << 0;
/// Interest bit: stall attributions ([`TraceEvent::Stall`]).
pub const EV_STALL: u32 = 1 << 1;
/// Interest bit: scheduler transitions ([`TraceEvent::Park`],
/// [`TraceEvent::Wake`], [`TraceEvent::SpuriousWake`],
/// [`TraceEvent::Finish`]).
pub const EV_SCHED: u32 = 1 << 2;
/// Interest bit: control-value handler dispatches
/// ([`TraceEvent::HandlerFire`]).
pub const EV_CTRL: u32 = 1 << 3;
/// Interest bit: RA FSM branch transitions ([`TraceEvent::RaTransition`]).
pub const EV_RA: u32 = 1 << 4;
/// Interest bit: fault-injection applications ([`TraceEvent::FaultLatency`],
/// [`TraceEvent::FaultDeqStall`], [`TraceEvent::FaultSqueeze`],
/// [`TraceEvent::FaultKill`]).
pub const EV_FAULT: u32 = 1 << 5;
/// Interest bit: watchdog / termination verdicts ([`TraceEvent::Verdict`]).
pub const EV_WATCHDOG: u32 = 1 << 6;
/// All interest bits.
pub const EV_ALL: u32 = EV_QUEUE | EV_STALL | EV_SCHED | EV_CTRL | EV_RA | EV_FAULT | EV_WATCHDOG;

/// Stall categories; mirror the [`crate::ThreadStats`] stall counters,
/// so per-kind event sums reconcile exactly with the aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting for a slot in a full downstream queue.
    QueueFull,
    /// Waiting for data from an empty (or late) upstream queue.
    QueueEmpty,
    /// Backend stalls (memory dependences, window-full).
    Backend,
    /// Frontend stalls (misprediction penalties, fetch resume).
    Frontend,
}

/// Why a traced run terminated abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceVerdict {
    /// The watchdog's absolute cycle cap fired.
    CycleLimit,
    /// The watchdog's livelock window fired.
    Livelock,
    /// A scheduler round made no progress with compute stages live.
    Deadlock,
    /// The run ended with fault-killed threads.
    Killed,
}

/// One structured trace event. All fields are plain integers (no
/// allocation on the emit path); stage and queue names come from the
/// per-invocation [`TraceMeta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A successful enqueue completed at `at`, leaving `occupancy`
    /// entries in the queue.
    Enq {
        /// Architectural queue index.
        queue: u16,
        /// Enqueuing hardware thread (stage index).
        thread: u32,
        /// Completion cycle.
        at: Time,
        /// Entries held *after* this operation.
        occupancy: u32,
    },
    /// A successful dequeue completed at `at`, leaving `occupancy`
    /// entries in the queue.
    Deq {
        /// Architectural queue index.
        queue: u16,
        /// Dequeuing hardware thread (stage index).
        thread: u32,
        /// Completion cycle.
        at: Time,
        /// Entries held *after* this operation.
        occupancy: u32,
    },
    /// `cycles` stall cycles of `kind` were charged to `thread`,
    /// ending at `at` (the span covers `[at - cycles, at)`).
    Stall {
        /// Stalled hardware thread.
        thread: u32,
        /// Attribution (mirrors the `ThreadStats` counters).
        kind: StallKind,
        /// Stall length in cycles.
        cycles: u64,
        /// Cycle at which the stall resolved.
        at: Time,
    },
    /// The scheduler parked `thread` on a queue wait-list.
    Park {
        /// Parked hardware thread.
        thread: u32,
        /// Queue it waits on.
        queue: u16,
        /// True when blocked on a *full* queue (enqueue side).
        full: bool,
        /// The thread's issue cursor at park time.
        at: Time,
    },
    /// A queue event moved `thread` from a wait-list back to ready.
    Wake {
        /// Woken hardware thread.
        thread: u32,
        /// Queue whose event woke it.
        queue: u16,
        /// Completion cycle of the waking operation.
        at: Time,
    },
    /// A woken thread re-blocked without progress (the entry or slot
    /// was claimed first).
    SpuriousWake {
        /// The re-blocked hardware thread.
        thread: u32,
        /// The thread's issue cursor at re-block time.
        at: Time,
    },
    /// A control value dispatched a handler on the consuming thread.
    HandlerFire {
        /// Consuming hardware thread.
        thread: u32,
        /// Queue the control value arrived on.
        queue: u16,
        /// Control-value tag.
        tag: u32,
        /// Completion cycle of the dispatch jump.
        at: Time,
    },
    /// An RA engine's FSM took a sequencing branch (RA stage programs
    /// express the FSM; their branches are its state transitions).
    RaTransition {
        /// RA hardware thread.
        thread: u32,
        /// Static branch site within the stage program.
        site: u32,
        /// Branch direction.
        taken: bool,
        /// Completion cycle of the transition.
        at: Time,
    },
    /// A stage program terminated.
    Finish {
        /// Finished hardware thread.
        thread: u32,
        /// Its final completion time.
        at: Time,
    },
    /// A latency-spike fault added `extra` cycles to an op.
    FaultLatency {
        /// Affected hardware thread.
        thread: u32,
        /// Added cycles.
        extra: u64,
        /// Issue cycle of the affected op.
        at: Time,
    },
    /// A dequeue-stall fault delayed delivery of a dequeued entry.
    FaultDeqStall {
        /// Affected queue.
        queue: u16,
        /// Added delivery cycles.
        extra: u64,
        /// Completion cycle of the affected dequeue.
        at: Time,
    },
    /// An enqueue was admitted while a capacity squeeze was active.
    FaultSqueeze {
        /// Squeezed queue.
        queue: u16,
        /// Effective capacity during the window.
        cap: u32,
        /// Completion cycle of the admitted enqueue.
        at: Time,
    },
    /// A thread-kill fault triggered at a round boundary.
    FaultKill {
        /// Killed hardware thread.
        thread: u32,
        /// Its atom count when the kill fired.
        at_atoms: u64,
    },
    /// The run terminated abnormally.
    Verdict {
        /// Which termination condition fired.
        verdict: TraceVerdict,
        /// Simulated-time frontier when it fired.
        at: Time,
    },
}

impl TraceEvent {
    /// The interest bit ([`EV_QUEUE`], ...) gating this event.
    pub fn interest_bit(&self) -> u32 {
        match self {
            TraceEvent::Enq { .. } | TraceEvent::Deq { .. } => EV_QUEUE,
            TraceEvent::Stall { .. } => EV_STALL,
            TraceEvent::Park { .. }
            | TraceEvent::Wake { .. }
            | TraceEvent::SpuriousWake { .. }
            | TraceEvent::Finish { .. } => EV_SCHED,
            TraceEvent::HandlerFire { .. } => EV_CTRL,
            TraceEvent::RaTransition { .. } => EV_RA,
            TraceEvent::FaultLatency { .. }
            | TraceEvent::FaultDeqStall { .. }
            | TraceEvent::FaultSqueeze { .. }
            | TraceEvent::FaultKill { .. } => EV_FAULT,
            TraceEvent::Verdict { .. } => EV_WATCHDOG,
        }
    }
}

/// Description of one hardware thread, carried by [`TraceMeta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageMeta {
    /// Stage program name.
    pub name: String,
    /// Core the stage is mapped to.
    pub core: usize,
    /// True for reference-accelerator stages.
    pub is_ra: bool,
}

/// Per-invocation context delivered to [`TraceSink::begin`]: everything
/// a sink needs to label the plain-integer events that follow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Pipeline name.
    pub pipeline: String,
    /// Launch base: the cycle at which the invocation starts (session
    /// time plus launch overhead).
    pub base: Time,
    /// One entry per hardware thread, in thread-index order.
    pub stages: Vec<StageMeta>,
    /// Physical capacity of each architectural queue.
    pub queue_capacity: Vec<usize>,
}

/// Receiver for trace events.
///
/// A sink is installed with [`crate::Session::set_trace`] and sees, per
/// pipeline invocation, one [`TraceSink::begin`] call, the event stream,
/// and one [`TraceSink::end`] call with the invocation's makespan.
/// `Any` is a supertrait so callers can recover a concrete sink from the
/// session via [`dyn TraceSink::downcast_ref`].
pub trait TraceSink: Any {
    /// Which event categories this sink wants (an `EV_*` bitmask). The
    /// world caches the mask per invocation: events outside it are never
    /// constructed. Defaults to everything.
    fn interest(&self) -> u32 {
        EV_ALL
    }

    /// Called at the start of each pipeline invocation.
    fn begin(&mut self, _meta: &TraceMeta) {}

    /// Called for each event inside the sink's interest mask.
    fn event(&mut self, ev: &TraceEvent);

    /// Called at the end of each invocation with its makespan (the last
    /// completion time over all threads).
    fn end(&mut self, _makespan: Time) {}
}

impl dyn TraceSink {
    /// Downcasts a boxed sink back to its concrete type.
    pub fn downcast_ref<T: TraceSink>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref()
    }

    /// Mutable variant of [`Self::downcast_ref`].
    pub fn downcast_mut<T: TraceSink>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut()
    }
}

// ---------------------------------------------------------------------
// Ring sink
// ---------------------------------------------------------------------

/// Bounded in-memory sink: keeps the most recent `capacity` events
/// (dropping the oldest beyond that) plus every invocation's
/// [`TraceMeta`]. The test workhorse.
#[derive(Debug, Default)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// One meta per invocation seen, in order.
    pub metas: Vec<TraceMeta>,
    /// Makespan reported by the last [`TraceSink::end`].
    pub last_makespan: Time,
}

impl RingSink {
    /// A ring keeping at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            ..Default::default()
        }
    }

    /// A ring that never drops (for oracle tests on bounded workloads).
    pub fn unbounded() -> RingSink {
        RingSink::new(usize::MAX)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn begin(&mut self, meta: &TraceMeta) {
        self.metas.push(meta.clone());
    }

    fn event(&mut self, ev: &TraceEvent) {
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }

    fn end(&mut self, makespan: Time) {
        self.last_makespan = makespan;
    }
}

// ---------------------------------------------------------------------
// Digest sink
// ---------------------------------------------------------------------

/// Streaming FNV-1a hash over the canonical event stream (the `Debug`
/// rendering of each event, plus each invocation's pipeline name and
/// base). Golden-trace tests pin the hash: any reordering, insertion,
/// or field change in the stream changes it.
#[derive(Debug)]
pub struct DigestSink {
    hash: u64,
    /// Events folded into the digest.
    pub count: u64,
    scratch: String,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, s: &str) -> u64 {
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl DigestSink {
    /// A fresh digest.
    pub fn new() -> DigestSink {
        DigestSink {
            hash: FNV_OFFSET,
            count: 0,
            scratch: String::new(),
        }
    }

    /// The digest over everything folded so far.
    pub fn digest(&self) -> u64 {
        // Fold the count in so "same hash, fewer events" cannot collide
        // trivially with a truncated stream.
        let mut s = String::new();
        let _ = write!(s, "#{}", self.count);
        fnv_fold(self.hash, &s)
    }
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl TraceSink for DigestSink {
    fn begin(&mut self, meta: &TraceMeta) {
        self.scratch.clear();
        let _ = write!(self.scratch, "begin {} @{}", meta.pipeline, meta.base);
        self.hash = fnv_fold(self.hash, &self.scratch);
    }

    fn event(&mut self, ev: &TraceEvent) {
        self.scratch.clear();
        let _ = write!(self.scratch, "{ev:?}");
        self.hash = fnv_fold(self.hash, &self.scratch);
        self.count += 1;
    }

    fn end(&mut self, makespan: Time) {
        self.scratch.clear();
        let _ = write!(self.scratch, "end @{makespan}");
        self.hash = fnv_fold(self.hash, &self.scratch);
    }
}

/// Digest of an event sequence (same canonicalization as [`DigestSink`]
/// minus the begin/end records; handy for hashing a [`RingSink`]'s
/// retained events in tests).
pub fn digest_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> u64 {
    let mut sink = DigestSink::new();
    for ev in events {
        sink.event(ev);
    }
    sink.digest()
}

// ---------------------------------------------------------------------
// Noop sink (overhead measurement)
// ---------------------------------------------------------------------

/// A sink that only counts events. Two uses: `counting()` measures the
/// full emit-path cost (event construction + virtual dispatch) with the
/// cheapest possible consumer, and `disabled()` — an empty interest
/// mask — measures the cost of the *disabled* trace layer (the cached
/// mask test alone), which is what the "zero overhead when off" claim
/// is about. `simspeed` runs both.
#[derive(Debug, Default)]
pub struct NoopSink {
    mask: u32,
    /// Events delivered.
    pub events: u64,
}

impl NoopSink {
    /// Full interest mask: every event is constructed and delivered.
    pub fn counting() -> NoopSink {
        NoopSink {
            mask: EV_ALL,
            events: 0,
        }
    }

    /// Empty interest mask: the emit sites see a zero mask, exactly as
    /// with no sink installed.
    pub fn disabled() -> NoopSink {
        NoopSink { mask: 0, events: 0 }
    }
}

impl TraceSink for NoopSink {
    fn interest(&self) -> u32 {
        self.mask
    }

    fn event(&mut self, _ev: &TraceEvent) {
        self.events += 1;
    }
}

// ---------------------------------------------------------------------
// Tee sink
// ---------------------------------------------------------------------

/// Broadcasts events to several sinks (e.g. a Perfetto exporter plus a
/// metrics aggregator in one run). Each child only sees events inside
/// its own interest mask.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    /// A tee over the given sinks.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }

    /// Consumes the tee, returning the child sinks.
    pub fn into_inner(self) -> Vec<Box<dyn TraceSink>> {
        self.sinks
    }

    /// Borrows the child sinks (in construction order), e.g. to
    /// [`downcast`](dyn TraceSink::downcast_ref) them after a run.
    pub fn sinks(&self) -> &[Box<dyn TraceSink>] {
        &self.sinks
    }
}

impl TraceSink for TeeSink {
    fn interest(&self) -> u32 {
        self.sinks.iter().fold(0, |m, s| m | s.interest())
    }

    fn begin(&mut self, meta: &TraceMeta) {
        for s in &mut self.sinks {
            s.begin(meta);
        }
    }

    fn event(&mut self, ev: &TraceEvent) {
        let bit = ev.interest_bit();
        for s in &mut self.sinks {
            if s.interest() & bit != 0 {
                s.event(ev);
            }
        }
    }

    fn end(&mut self, makespan: Time) {
        for s in &mut self.sinks {
            s.end(makespan);
        }
    }
}

// ---------------------------------------------------------------------
// Perfetto (Chrome trace event format) sink
// ---------------------------------------------------------------------

/// Exports the event stream in the Chrome trace event format, loadable
/// by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
///
/// Mapping: stall spans and park spans become `"X"` (complete) events on
/// the stalled thread's track; queue occupancies become `"C"` (counter)
/// tracks; handler fires, finishes, faults, and verdicts become `"I"`
/// (instant) events. Timestamps are simulated cycles. RA FSM transitions
/// are excluded by default (they dominate file size on RA-heavy
/// pipelines); [`PerfettoSink::with_ra_transitions`] re-enables them.
pub struct PerfettoSink {
    /// Serialized JSON objects, one per Chrome trace event.
    records: Vec<String>,
    /// Pending park per thread: (park cycle, queue, full-side).
    parked: Vec<Option<(Time, u16, bool)>>,
    names_emitted: bool,
    include_ra: bool,
    frontier: Time,
}

impl PerfettoSink {
    /// A fresh exporter.
    pub fn new() -> PerfettoSink {
        PerfettoSink {
            records: Vec::new(),
            parked: Vec::new(),
            names_emitted: false,
            include_ra: true,
            frontier: 0,
        }
    }

    /// Whether to include per-transition RA FSM instants.
    pub fn with_ra_transitions(mut self, yes: bool) -> PerfettoSink {
        self.include_ra = yes;
        self
    }

    fn push(&mut self, record: String) {
        self.records.push(record);
    }

    fn close_park(&mut self, thread: u32, until: Time) {
        if let Some(Some((since, q, full))) = self.parked.get_mut(thread as usize).map(Option::take)
        {
            let name = if full {
                "parked (full"
            } else {
                "parked (empty"
            };
            self.push(format!(
                "{{\"name\":\"{} q{})\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                name,
                q,
                since,
                until.saturating_sub(since),
                thread
            ));
        }
    }

    /// Serializes the accumulated trace as a Chrome trace JSON document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(64 + self.records.iter().map(|r| r.len() + 2).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(r);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Number of exported records (tests / diagnostics).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Default for PerfettoSink {
    fn default() -> Self {
        PerfettoSink::new()
    }
}

/// Minimal JSON string escaping for names coming from stage programs.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TraceSink for PerfettoSink {
    fn begin(&mut self, meta: &TraceMeta) {
        if self.parked.len() < meta.stages.len() {
            self.parked.resize(meta.stages.len(), None);
        }
        if !self.names_emitted {
            self.names_emitted = true;
            self.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&meta.pipeline)
            ));
            for (i, s) in meta.stages.iter().enumerate() {
                let ra = if s.is_ra { " (RA)" } else { "" };
                self.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}{} [core {}]\"}}}}",
                    i,
                    json_escape(&s.name),
                    ra,
                    s.core
                ));
            }
        }
        self.frontier = self.frontier.max(meta.base);
    }

    fn event(&mut self, ev: &TraceEvent) {
        self.frontier = self.frontier.max(match *ev {
            TraceEvent::Enq { at, .. }
            | TraceEvent::Deq { at, .. }
            | TraceEvent::Stall { at, .. }
            | TraceEvent::Park { at, .. }
            | TraceEvent::Wake { at, .. }
            | TraceEvent::SpuriousWake { at, .. }
            | TraceEvent::HandlerFire { at, .. }
            | TraceEvent::RaTransition { at, .. }
            | TraceEvent::Finish { at, .. }
            | TraceEvent::FaultLatency { at, .. }
            | TraceEvent::FaultDeqStall { at, .. }
            | TraceEvent::FaultSqueeze { at, .. }
            | TraceEvent::Verdict { at, .. } => at,
            TraceEvent::FaultKill { .. } => 0,
        });
        match *ev {
            TraceEvent::Enq {
                queue,
                at,
                occupancy,
                ..
            }
            | TraceEvent::Deq {
                queue,
                at,
                occupancy,
                ..
            } => {
                self.push(format!(
                    "{{\"name\":\"q{} depth\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"depth\":{}}}}}",
                    queue, at, occupancy
                ));
            }
            TraceEvent::Stall {
                thread,
                kind,
                cycles,
                at,
            } => {
                let name = match kind {
                    StallKind::QueueFull => "stall: queue full",
                    StallKind::QueueEmpty => "stall: queue empty",
                    StallKind::Backend => "stall: backend",
                    StallKind::Frontend => "stall: frontend",
                };
                self.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                    name,
                    at.saturating_sub(cycles),
                    cycles,
                    thread
                ));
            }
            TraceEvent::Park {
                thread,
                queue,
                full,
                at,
            } => {
                if (thread as usize) >= self.parked.len() {
                    self.parked.resize(thread as usize + 1, None);
                }
                self.parked[thread as usize] = Some((at, queue, full));
            }
            TraceEvent::Wake { thread, at, .. } | TraceEvent::SpuriousWake { thread, at } => {
                self.close_park(thread, at);
            }
            TraceEvent::HandlerFire {
                thread,
                queue,
                tag,
                at,
            } => {
                self.push(format!(
                    "{{\"name\":\"handler q{} tag {}\",\"cat\":\"ctrl\",\"ph\":\"I\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    queue, tag, at, thread
                ));
            }
            TraceEvent::RaTransition {
                thread,
                site,
                taken,
                at,
            } => {
                if self.include_ra {
                    self.push(format!(
                        "{{\"name\":\"ra b{}={}\",\"cat\":\"ra\",\"ph\":\"I\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                        site, taken as u8, at, thread
                    ));
                }
            }
            TraceEvent::Finish { thread, at } => {
                self.close_park(thread, at);
                self.push(format!(
                    "{{\"name\":\"finish\",\"cat\":\"sched\",\"ph\":\"I\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    at, thread
                ));
            }
            TraceEvent::FaultLatency { thread, extra, at } => {
                self.push(format!(
                    "{{\"name\":\"fault: +{} cy\",\"cat\":\"fault\",\"ph\":\"I\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    extra, at, thread
                ));
            }
            TraceEvent::FaultDeqStall { queue, extra, at } => {
                self.push(format!(
                    "{{\"name\":\"fault: q{} deq +{} cy\",\"cat\":\"fault\",\"ph\":\"I\",\"s\":\"g\",\"ts\":{},\"pid\":0}}",
                    queue, extra, at
                ));
            }
            TraceEvent::FaultSqueeze { queue, cap, at } => {
                self.push(format!(
                    "{{\"name\":\"fault: q{} squeezed to {}\",\"cat\":\"fault\",\"ph\":\"I\",\"s\":\"g\",\"ts\":{},\"pid\":0}}",
                    queue, cap, at
                ));
            }
            TraceEvent::FaultKill { thread, at_atoms } => {
                let ts = self.frontier;
                self.push(format!(
                    "{{\"name\":\"fault: killed after {} atoms\",\"cat\":\"fault\",\"ph\":\"I\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    at_atoms, ts, thread
                ));
            }
            TraceEvent::Verdict { verdict, at } => {
                self.push(format!(
                    "{{\"name\":\"verdict: {:?}\",\"cat\":\"watchdog\",\"ph\":\"I\",\"s\":\"g\",\"ts\":{},\"pid\":0}}",
                    verdict, at
                ));
            }
        }
    }

    fn end(&mut self, makespan: Time) {
        self.frontier = self.frontier.max(makespan);
        for t in 0..self.parked.len() as u32 {
            self.close_park(t, makespan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut r = RingSink::new(2);
        for k in 0..4u64 {
            r.event(&TraceEvent::Finish { thread: 0, at: k });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped, 2);
        let ats: Vec<Time> = r
            .events()
            .map(|e| match e {
                TraceEvent::Finish { at, .. } => *at,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ats, vec![2, 3]);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = TraceEvent::Finish { thread: 0, at: 1 };
        let b = TraceEvent::Finish { thread: 1, at: 2 };
        assert_ne!(digest_events([&a, &b]), digest_events([&b, &a]));
        assert_eq!(digest_events([&a, &b]), digest_events([&a, &b]));
        // Truncation changes the digest too (count is folded in).
        assert_ne!(digest_events([&a, &b]), digest_events([&a]));
    }

    #[test]
    fn tee_respects_child_interest() {
        let ring = Box::new(RingSink::unbounded());
        let noop = Box::new(NoopSink::disabled());
        let mut tee = TeeSink::new(vec![ring, noop]);
        assert_eq!(tee.interest(), EV_ALL);
        tee.event(&TraceEvent::Finish { thread: 0, at: 1 });
        let sinks = tee.into_inner();
        let ring = (&*sinks[0] as &dyn TraceSink)
            .downcast_ref::<RingSink>()
            .expect("ring");
        let noop = (&*sinks[1] as &dyn TraceSink)
            .downcast_ref::<NoopSink>()
            .expect("noop");
        assert_eq!(ring.len(), 1);
        assert_eq!(noop.events, 0, "disabled child must not see events");
    }

    #[test]
    fn perfetto_emits_wellformed_records() {
        let mut p = PerfettoSink::new();
        p.begin(&TraceMeta {
            pipeline: "t".into(),
            base: 0,
            stages: vec![StageMeta {
                name: "s\"0".into(),
                core: 0,
                is_ra: false,
            }],
            queue_capacity: vec![8],
        });
        p.event(&TraceEvent::Enq {
            queue: 0,
            thread: 0,
            at: 5,
            occupancy: 1,
        });
        p.event(&TraceEvent::Stall {
            thread: 0,
            kind: StallKind::QueueEmpty,
            cycles: 3,
            at: 9,
        });
        p.event(&TraceEvent::Park {
            thread: 0,
            queue: 0,
            full: false,
            at: 9,
        });
        p.end(20);
        let json = p.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"C\""), "counter event missing");
        assert!(json.contains("\"ph\":\"X\""), "span event missing");
        assert!(json.contains("s\\\"0"), "stage name not escaped");
        // The dangling park is closed at the makespan.
        assert!(json.contains("\"dur\":11"), "park span not closed at end");
    }
}
