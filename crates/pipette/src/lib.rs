//! # pipette-sim
//!
//! A cycle-level simulator of the **Pipette** architecture (Nguyen &
//! Sanchez, MICRO 2020), the baseline hardware of the Phloem paper
//! (HPCA 2023): out-of-order SMT cores extended with
//!
//! * architecturally visible hardware FIFO **queues** (`enq`/`deq`,
//!   blocking, bounded depth),
//! * **reference accelerators** (RAs) that offload `INDIRECT` and `SCAN`
//!   access patterns, including chained RAs,
//! * in-band **control values** with hardware **control-value handlers**.
//!
//! The simulator executes [`phloem_ir::Pipeline`]s: each stage runs as an
//! SMT thread (or RA engine) stepped by the shared IR interpreter, with
//! a timing model that captures bounded instruction windows, shared issue
//! bandwidth, branch misprediction, a full cache hierarchy with DRAM
//! bandwidth, and queue back-pressure. Energy is accounted per event in
//! McPAT-like ratios.
//!
//! ```
//! use phloem_ir::{ArrayDecl, Expr, FunctionBuilder, MemState, Pipeline, StageProgram, Value};
//! use pipette_sim::{Machine, MachineConfig};
//!
//! // A one-stage (serial) "program": sum = sum of a[].
//! let mut b = FunctionBuilder::new("serial");
//! let n = b.param_i64("n");
//! let a = b.array_i64("a");
//! let i = b.var_i64("i");
//! let out = b.array_i64("out");
//! let s = b.var_i64("s");
//! b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
//!     let l = b.load(a, Expr::var(i));
//!     b.assign(s, Expr::add(Expr::var(s), l));
//! });
//! b.store(out, Expr::i64(0), Expr::var(s));
//! let mut p = Pipeline::new("sum");
//! p.add_stage(StageProgram::plain(b.build()), 0);
//!
//! let mut mem = MemState::new();
//! mem.alloc_i64(ArrayDecl::i64("a"), 0..100);
//! let out_id = mem.alloc(ArrayDecl::i64("out"), 1);
//! let cfg = MachineConfig::paper_1core();
//! let run = Machine::run_once(&cfg, &p, mem, &[("n", Value::I64(100))])?;
//! assert_eq!(run.mem.i64_vec(out_id), vec![4950]);
//! assert!(run.stats.cycles > 0);
//! # Ok::<(), phloem_ir::Trap>(())
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod energy;
pub mod faults;
pub mod machine;
pub mod metrics;
pub mod native;
mod queue;
mod scheduler;
pub mod stats;
mod timing;
pub mod trace;
pub mod watchdog;

pub use cache::{CacheStats, HitLevel, MemHierarchy};
pub use config::{CacheParams, MachineConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use faults::{Fault, FaultPlan};
pub use machine::{CancelScope, CompiledPipeline, Machine, RunOutcome, SchedulerKind, Session};
pub use metrics::{MetricsSink, QueueMetrics, StageMetrics};
pub use native::{BackendScope, ChannelBackend, ChannelKind, ExecBackend, NativeConfig};
pub use phloem_ir::ExecEngine;
pub use phloem_pool::CancelToken;
pub use stats::{CycleBreakdown, QueueStats, RunStats, ThreadStats};
pub use trace::{
    digest_events, DigestSink, NoopSink, PerfettoSink, RingSink, StageMeta, StallKind, TeeSink,
    TraceEvent, TraceMeta, TraceSink, TraceVerdict, EV_ALL, EV_CTRL, EV_FAULT, EV_QUEUE, EV_RA,
    EV_SCHED, EV_STALL, EV_WATCHDOG,
};
pub use watchdog::WatchdogConfig;
