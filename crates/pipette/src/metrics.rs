//! Streaming metrics aggregation over the trace stream: per-stage
//! utilization, queue-depth time series, and critical-stage attribution.
//!
//! [`MetricsSink`] consumes [`crate::trace::TraceEvent`]s as they are
//! emitted — it never buffers the stream — and reduces them to the
//! quantities pipeline tuning needs: where each stage's cycles went
//! (busy vs. per-kind stalls), how full each queue ran over time, and
//! which stage the makespan hinges on. Because every stall event mirrors
//! a `ThreadStats` counter increment and every queue event mirrors a
//! `QueueStats` sample, the aggregates reconcile *exactly* with
//! [`crate::RunStats`]; `tests/trace_oracle.rs` pins that equality.
//!
//! `fig9.rs` builds its stall-attribution report from this aggregator,
//! and the PGO search surfaces a per-candidate profile derived from it
//! (see `phloem::search::CandidateProfile`).

use crate::stats::CycleBreakdown;
use crate::trace::{StallKind, TraceEvent, TraceMeta, TraceSink};
use phloem_ir::Time;
use std::fmt::Write as _;

/// Maximum retained points per queue-depth time series; beyond this the
/// series is decimated 2× (every other point dropped, stride doubled).
const SERIES_CAP: usize = 1024;

/// Aggregated trace-derived counters for one hardware thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageMetrics {
    /// Stage program name (from [`TraceMeta`]).
    pub name: String,
    /// True for reference-accelerator stages.
    pub is_ra: bool,
    /// Successful enqueues performed by this stage.
    pub enqs: u64,
    /// Successful dequeues performed by this stage.
    pub deqs: u64,
    /// Control-value handler dispatches on this stage.
    pub handler_fires: u64,
    /// RA FSM branch transitions (RA stages only).
    pub ra_transitions: u64,
    /// Wait-list wakeups.
    pub wakeups: u64,
    /// Wakeups that re-blocked without progress.
    pub spurious_wakeups: u64,
    /// Cycles stalled waiting on full downstream queues.
    pub queue_full_stall_cycles: u64,
    /// Cycles stalled waiting on empty upstream queues.
    pub queue_empty_stall_cycles: u64,
    /// Backend (memory/window) stall cycles.
    pub backend_stall_cycles: u64,
    /// Frontend (misprediction) stall cycles.
    pub frontend_stall_cycles: u64,
    /// Wall cycles spent parked on a wait-list (park → wake spans).
    pub parked_cycles: u64,
    /// Cycles this stage was active, summed over invocations (finish
    /// time minus launch base; makespan-bounded for stages that never
    /// finish, e.g. drained RAs).
    pub active_cycles: u64,
    /// Latest completion time observed for this stage.
    pub finish_time: Time,
}

impl StageMetrics {
    /// Total attributed stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.queue_full_stall_cycles
            + self.queue_empty_stall_cycles
            + self.backend_stall_cycles
            + self.frontend_stall_cycles
    }

    /// Fraction of the stage's active window *not* attributed to any
    /// stall (its issue/compute utilization, in `[0, 1]`).
    pub fn utilization(&self) -> f64 {
        if self.active_cycles == 0 {
            return 0.0;
        }
        let busy = self.active_cycles.saturating_sub(self.stall_cycles());
        busy as f64 / self.active_cycles as f64
    }

    /// Name of the stage's largest stall bucket ("none" when fully busy).
    pub fn dominant_stall(&self) -> &'static str {
        let buckets = [
            (self.queue_full_stall_cycles, "queue-full"),
            (self.queue_empty_stall_cycles, "queue-empty"),
            (self.backend_stall_cycles, "backend"),
            (self.frontend_stall_cycles, "frontend"),
        ];
        buckets
            .iter()
            .max_by_key(|(c, _)| *c)
            .filter(|(c, _)| *c > 0)
            .map_or("none", |(_, n)| n)
    }
}

/// Aggregated trace-derived counters for one hardware queue.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueMetrics {
    /// Physical capacity (from [`TraceMeta`]).
    pub capacity: usize,
    /// Successful enqueues.
    pub enqs: u64,
    /// Successful dequeues.
    pub deqs: u64,
    /// Highest occupancy observed.
    pub max_occupancy: usize,
    /// `occupancy_hist[k]` counts operations that left `k` entries
    /// behind — the same sampling rule as
    /// [`crate::QueueStats::occupancy_hist`], so the two are equal.
    pub occupancy_hist: Vec<u64>,
    /// Approximate ∫ depth d(cycle): depth-weighted cycles between
    /// consecutive queue events (event completion times across threads
    /// are not globally monotone, so negative gaps clamp to zero).
    pub occupancy_cycles: u128,
    /// Downsampled `(cycle, depth)` time series, oldest first.
    pub series: Vec<(Time, u32)>,
    /// Current decimation stride of `series` (1 = every event kept).
    pub series_stride: u64,
    seen: u64,
    last: Option<(Time, u32)>,
}

impl QueueMetrics {
    /// Operation-weighted mean occupancy (matches
    /// [`crate::QueueStats::mean_occupancy`]).
    pub fn mean_occupancy(&self) -> f64 {
        let samples: u64 = self.occupancy_hist.iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .occupancy_hist
            .iter()
            .enumerate()
            .map(|(k, c)| k as u64 * c)
            .sum();
        weighted as f64 / samples as f64
    }

    fn sample(&mut self, at: Time, occupancy: u32) {
        self.max_occupancy = self.max_occupancy.max(occupancy as usize);
        if self.occupancy_hist.len() <= occupancy as usize {
            self.occupancy_hist.resize(occupancy as usize + 1, 0);
        }
        self.occupancy_hist[occupancy as usize] += 1;
        if let Some((t0, d0)) = self.last {
            self.occupancy_cycles += d0 as u128 * at.saturating_sub(t0) as u128;
        }
        self.last = Some((at.max(self.last.map_or(0, |(t0, _)| t0)), occupancy));
        if self.series_stride == 0 {
            self.series_stride = 1;
        }
        if self.seen.is_multiple_of(self.series_stride) {
            if self.series.len() >= SERIES_CAP {
                let mut keep = 0;
                self.series.retain(|_| {
                    keep += 1;
                    keep % 2 == 1
                });
                self.series_stride *= 2;
            }
            if self.seen.is_multiple_of(self.series_stride) {
                self.series.push((at, occupancy));
            }
        }
        self.seen += 1;
    }
}

/// Streaming metrics aggregator (see the module docs). Install with
/// [`crate::Session::set_trace`]; read the aggregates after
/// [`crate::Session::take_trace`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSink {
    /// Per-stage aggregates, thread-index ordered.
    pub stages: Vec<StageMetrics>,
    /// Per-queue aggregates, queue-id ordered.
    pub queues: Vec<QueueMetrics>,
    /// Pipeline invocations observed.
    pub invocations: u64,
    /// Launch base of the first invocation.
    pub start: Time,
    /// Makespan of the last invocation.
    pub end: Time,
    /// Abnormal-termination verdicts observed (empty on clean runs).
    pub verdicts: Vec<(crate::trace::TraceVerdict, Time)>,
    base: Time,
    finished: Vec<bool>,
    parked_since: Vec<Option<Time>>,
}

impl MetricsSink {
    /// A fresh aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Index of the critical stage: the latest-finishing compute stage
    /// — the stage the pipeline's makespan hinges on. `None` before any
    /// invocation or for all-RA pipelines.
    pub fn critical_stage(&self) -> Option<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_ra)
            .max_by_key(|(_, s)| s.finish_time)
            .map(|(i, _)| i)
    }

    /// Fig. 9-style stall breakdown summed over compute stages: `issue`
    /// holds the un-stalled (busy) cycles, the stall categories mirror
    /// [`CycleBreakdown`] (`other` = frontend).
    pub fn stall_breakdown(&self) -> CycleBreakdown {
        let mut b = CycleBreakdown::default();
        for s in self.stages.iter().filter(|s| !s.is_ra) {
            b.issue += s.active_cycles.saturating_sub(s.stall_cycles()) as f64;
            b.backend += s.backend_stall_cycles as f64;
            b.queue += (s.queue_full_stall_cycles + s.queue_empty_stall_cycles) as f64;
            b.other += s.frontend_stall_cycles as f64;
        }
        b
    }

    /// Human-readable profile: per-stage utilization and stall split,
    /// per-queue occupancy, and the critical-stage attribution line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let span = self.end.saturating_sub(self.start);
        let _ = writeln!(
            out,
            "profile: {} invocation(s), {} cycles",
            self.invocations, span
        );
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        for s in &self.stages {
            let ra = if s.is_ra { " (RA)" } else { "" };
            let a = s.active_cycles;
            let _ = writeln!(
                out,
                "  stage `{}`{}: util {:5.1}%  [qfull {:.1}% qempty {:.1}% backend {:.1}% frontend {:.1}% parked {:.1}%]  enq {} deq {} fires {}",
                s.name,
                ra,
                100.0 * s.utilization(),
                pct(s.queue_full_stall_cycles, a),
                pct(s.queue_empty_stall_cycles, a),
                pct(s.backend_stall_cycles, a),
                pct(s.frontend_stall_cycles, a),
                pct(s.parked_cycles, a),
                s.enqs,
                s.deqs,
                s.handler_fires,
            );
        }
        for (q, m) in self.queues.iter().enumerate() {
            if m.enqs == 0 && m.deqs == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  queue q{q}: {} enq / {} deq, mean occ {:.2}, max {}/{}",
                m.enqs,
                m.deqs,
                m.mean_occupancy(),
                m.max_occupancy,
                m.capacity
            );
        }
        if let Some(c) = self.critical_stage() {
            let s = &self.stages[c];
            let _ = writeln!(
                out,
                "  critical stage: `{}` (finish {}), util {:.1}%, dominant stall: {}",
                s.name,
                s.finish_time,
                100.0 * s.utilization(),
                s.dominant_stall(),
            );
        }
        out
    }
}

impl TraceSink for MetricsSink {
    fn begin(&mut self, meta: &TraceMeta) {
        self.invocations += 1;
        if self.invocations == 1 {
            self.start = meta.base;
        }
        self.base = meta.base;
        if self.stages.len() < meta.stages.len() {
            self.stages
                .resize_with(meta.stages.len(), StageMetrics::default);
        }
        for (s, m) in self.stages.iter_mut().zip(&meta.stages) {
            if s.name.is_empty() {
                s.name = m.name.clone();
                s.is_ra = m.is_ra;
            }
        }
        if self.queues.len() < meta.queue_capacity.len() {
            self.queues
                .resize_with(meta.queue_capacity.len(), QueueMetrics::default);
        }
        for (q, &cap) in self.queues.iter_mut().zip(&meta.queue_capacity) {
            q.capacity = q.capacity.max(cap);
            if q.occupancy_hist.len() < cap + 1 {
                q.occupancy_hist.resize(cap + 1, 0);
            }
            // Occupancy restarts from empty each invocation (queues are
            // rebuilt); reset the integral's anchor.
            q.last = Some((meta.base, 0));
        }
        self.finished.clear();
        self.finished.resize(self.stages.len(), false);
        self.parked_since.clear();
        self.parked_since.resize(self.stages.len(), None);
    }

    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Enq {
                queue,
                thread,
                at,
                occupancy,
            } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.enqs += 1;
                }
                if let Some(q) = self.queues.get_mut(queue as usize) {
                    q.enqs += 1;
                    q.sample(at, occupancy);
                }
            }
            TraceEvent::Deq {
                queue,
                thread,
                at,
                occupancy,
            } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.deqs += 1;
                }
                if let Some(q) = self.queues.get_mut(queue as usize) {
                    q.deqs += 1;
                    q.sample(at, occupancy);
                }
            }
            TraceEvent::Stall {
                thread,
                kind,
                cycles,
                ..
            } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    match kind {
                        StallKind::QueueFull => s.queue_full_stall_cycles += cycles,
                        StallKind::QueueEmpty => s.queue_empty_stall_cycles += cycles,
                        StallKind::Backend => s.backend_stall_cycles += cycles,
                        StallKind::Frontend => s.frontend_stall_cycles += cycles,
                    }
                }
            }
            TraceEvent::Park { thread, at, .. } => {
                if let Some(p) = self.parked_since.get_mut(thread as usize) {
                    *p = Some(at);
                }
            }
            TraceEvent::Wake { thread, at, .. } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.wakeups += 1;
                    if let Some(since) = self
                        .parked_since
                        .get_mut(thread as usize)
                        .and_then(Option::take)
                    {
                        s.parked_cycles += at.saturating_sub(since);
                    }
                }
            }
            TraceEvent::SpuriousWake { thread, .. } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.spurious_wakeups += 1;
                }
            }
            TraceEvent::HandlerFire { thread, .. } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.handler_fires += 1;
                }
            }
            TraceEvent::RaTransition { thread, .. } => {
                if let Some(s) = self.stages.get_mut(thread as usize) {
                    s.ra_transitions += 1;
                }
            }
            TraceEvent::Finish { thread, at } => {
                let ti = thread as usize;
                if let Some(f) = self.finished.get_mut(ti) {
                    *f = true;
                }
                if let Some(s) = self.stages.get_mut(ti) {
                    s.finish_time = s.finish_time.max(at);
                    s.active_cycles += at.saturating_sub(self.base);
                }
            }
            TraceEvent::Verdict { verdict, at } => {
                self.verdicts.push((verdict, at));
            }
            TraceEvent::FaultLatency { .. }
            | TraceEvent::FaultDeqStall { .. }
            | TraceEvent::FaultSqueeze { .. }
            | TraceEvent::FaultKill { .. } => {}
        }
    }

    fn end(&mut self, makespan: Time) {
        self.end = makespan;
        // Stages that never finished this invocation (drained RAs, or
        // compute stages of a trapped run) were active to the makespan.
        for (i, s) in self.stages.iter_mut().enumerate() {
            if !self.finished.get(i).copied().unwrap_or(true) {
                s.finish_time = s.finish_time.max(makespan);
                s.active_cycles += makespan.saturating_sub(self.base);
            }
        }
        for q in &mut self.queues {
            if let Some((t0, d0)) = q.last.take() {
                q.occupancy_cycles += d0 as u128 * makespan.saturating_sub(t0) as u128;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StageMeta;

    fn meta() -> TraceMeta {
        TraceMeta {
            pipeline: "p".into(),
            base: 100,
            stages: vec![
                StageMeta {
                    name: "gen".into(),
                    core: 0,
                    is_ra: false,
                },
                StageMeta {
                    name: "ra".into(),
                    core: 0,
                    is_ra: true,
                },
            ],
            queue_capacity: vec![4],
        }
    }

    #[test]
    fn aggregates_reduce_the_stream() {
        let mut m = MetricsSink::new();
        m.begin(&meta());
        m.event(&TraceEvent::Enq {
            queue: 0,
            thread: 0,
            at: 110,
            occupancy: 1,
        });
        m.event(&TraceEvent::Stall {
            thread: 0,
            kind: StallKind::Backend,
            cycles: 20,
            at: 130,
        });
        m.event(&TraceEvent::Deq {
            queue: 0,
            thread: 1,
            at: 140,
            occupancy: 0,
        });
        m.event(&TraceEvent::Finish { thread: 0, at: 200 });
        m.end(210);
        assert_eq!(m.stages[0].enqs, 1);
        assert_eq!(m.stages[1].deqs, 1);
        assert_eq!(m.stages[0].backend_stall_cycles, 20);
        // Stage 0: active 200-100=100, stalled 20 → util 0.8.
        assert!((m.stages[0].utilization() - 0.8).abs() < 1e-12);
        // Stage 1 never finished: active to makespan.
        assert_eq!(m.stages[1].active_cycles, 110);
        assert_eq!(m.queues[0].enqs, 1);
        assert_eq!(m.queues[0].deqs, 1);
        assert_eq!(m.queues[0].occupancy_hist[..2], [1, 1]);
        // Integral: 0 until 110, 1 entry for [110, 140), 0 after.
        assert_eq!(m.queues[0].occupancy_cycles, 30);
        assert_eq!(m.critical_stage(), Some(0));
        let b = m.stall_breakdown();
        assert_eq!(b.backend, 20.0);
        assert_eq!(b.issue, 80.0);
        let report = m.report();
        assert!(report.contains("critical stage: `gen`"));
        assert!(report.contains("dominant stall: backend"));
    }

    #[test]
    fn series_decimates_beyond_cap() {
        let mut m = MetricsSink::new();
        m.begin(&meta());
        for k in 0..(SERIES_CAP as u64 * 4) {
            m.event(&TraceEvent::Enq {
                queue: 0,
                thread: 0,
                at: 100 + k,
                occupancy: (k % 4) as u32,
            });
        }
        assert!(m.queues[0].series.len() <= SERIES_CAP);
        assert!(m.queues[0].series_stride >= 4);
        // Oldest-first and strictly increasing timestamps survive.
        let s = &m.queues[0].series;
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
