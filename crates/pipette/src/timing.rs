//! The cycle-level timing [`World`]: per-thread instruction windows,
//! shared issue bandwidth, branch prediction, the cache hierarchy, and
//! timed hardware queues.
//!
//! ## Timing model
//!
//! Each stage (or RA) runs as a hardware thread driven by the shared
//! [`StepInterp`](phloem_ir::StepInterp) from `phloem-ir`. The model
//! captures the phenomena the paper's results hinge on:
//!
//! * **Bounded instruction window per thread** (ROB partitioned among
//!   active SMT threads): in-order dispatch, out-of-order completion,
//!   in-order retirement — dependent cache misses serialize while
//!   independent ones overlap up to the window and MSHR limits.
//! * **Shared issue bandwidth** (6 uops/cycle/core across SMT threads).
//! * **Branch misprediction penalties** from a 2-bit predictor, so
//!   data-dependent branches serialize execution.
//! * **Hardware queues** with blocking enq/deq, bounded depth, 1-cycle
//!   operations through the register file, and an inter-core delivery
//!   penalty.
//! * **Reference accelerators** as dedicated FSM threads: no core issue
//!   bandwidth, fixed op latency, limited outstanding accesses.
//! * **Cache hierarchy + DRAM bandwidth** shared by threads and RAs.
//!
//! ## Blocked operations have no timing side effects
//!
//! [`World::try_enq`] and [`World::try_deq`] return `Ok(None)` *before*
//! touching any timing state when the queue is full/empty. The
//! event-driven scheduler relies on this: skipping a re-poll of a
//! blocked thread cannot change simulated time, because the poll it
//! skips would have been a pure no-op. Every *successful* queue
//! operation is appended to the [`QueueEvent`] log the scheduler drains
//! to wake waiters.

use crate::branch::BranchPredictor;
use crate::cache::{HitLevel, MemHierarchy};
use crate::config::MachineConfig;
use crate::faults::FaultPlan;
use crate::queue::{HwQueue, QueueEntry, QueueEvent};
use crate::scheduler::SchedulerKind;
use crate::stats::ThreadStats;
use crate::trace::{
    StallKind, TraceEvent, TraceSink, EV_CTRL, EV_FAULT, EV_QUEUE, EV_RA, EV_STALL,
};
use crate::watchdog::WatchdogConfig;
use phloem_ir::{
    ArrayId, BinOp, BranchId, MemState, QueueId, StageKind, StageSpec, StepInterp, Tid, Time, Trap,
    UopClass, Value, World,
};
use std::collections::BTreeMap;

#[derive(Debug)]
pub(crate) struct ThreadTiming {
    pub(crate) core: usize,
    pub(crate) is_ra: bool,
    window: Vec<Time>,
    wpos: usize,
    last_retire: Time,
    cursor: Time,
    flow: Time,
    /// Outstanding long-miss limit (fill-buffer share), per thread so the
    /// accounting stays time-coherent.
    mshr: Vec<Time>,
    mshr_pos: usize,
    predictor: BranchPredictor,
    /// Completion time of this thread's most recent progress event
    /// (successful queue op or finish); feeds the watchdog snapshot.
    pub(crate) last_progress: Time,
    pub(crate) stats: ThreadStats,
}

impl ThreadTiming {
    /// The thread's issue cursor (grid-identical; used as the timestamp
    /// of scheduler-level trace events like parks).
    pub(crate) fn cursor(&self) -> Time {
        self.cursor
    }
}

/// Per-core issue-bandwidth tracker: micro-ops issued per cycle, as a
/// flat array indexed by cycle-since-invocation-base. Every issue time
/// is `>= base` (see [`TimingWorld::issue_at`]) and a `TimingWorld`
/// lives for one invocation, so the array spans exactly the invocation
/// and one byte per core-cycle replaces the seed model's per-op
/// `BTreeMap` node churn (its hottest host path). The map variant is
/// kept behind [`SchedulerKind::Polling`] as the seed-faithful
/// reference, so differential tests can verify the flat tracker is
/// bit-exact.
#[derive(Debug, Default)]
pub(crate) struct CoreTiming {
    /// `issued[t - base]` = micro-ops issued in cycle `t` (fast path).
    issued: Vec<u8>,
    /// Seed-reference tracker (used only in `Polling` mode).
    issue_map: BTreeMap<Time, u64>,
}

/// Stall attribution for [`TimingWorld::issue_at`].
#[derive(Clone, Copy)]
enum Attr {
    Normal,
    /// Waiting for a slot in a full downstream queue.
    QueueFull,
    /// Waiting for data from an empty (or late) upstream queue.
    QueueEmpty,
}

pub(crate) struct TimingWorld<'a> {
    cfg: &'a MachineConfig,
    hier: &'a mut MemHierarchy,
    mem: &'a mut MemState,
    pub(crate) queues: Vec<HwQueue>,
    pub(crate) threads: Vec<ThreadTiming>,
    cores: Vec<CoreTiming>,
    base: Time,
    /// True in [`SchedulerKind::Polling`] mode: use the seed model's
    /// host-side issue tracker ([`Self::alloc_issue_map`]).
    reference_host: bool,
    /// Op counter driving the reference tracker's periodic pruning.
    ops_since_prune: u64,
    /// Successful queue operations since the scheduler last drained;
    /// used to wake threads parked on wait-lists. Only operations on
    /// queues some thread is actually parked on (per
    /// [`TimingWorld::wait_flags`]) are logged, so the log stays tiny.
    events: Vec<QueueEvent>,
    /// Per-queue waiter flags maintained by the scheduler
    /// ([`WAIT_EMPTY`] / [`WAIT_FULL`] bits). Purely a host-side
    /// fast-path filter for event logging; no effect on timing.
    pub(crate) wait_flags: Vec<u8>,
    /// Cached `TRACE_DEQ` env toggle (checked once per invocation).
    trace_deq: bool,
    /// Forward-progress limits (copied from the machine config).
    pub(crate) watchdog: WatchdogConfig,
    /// Fault plan for this invocation, if any.
    faults: Option<&'a FaultPlan>,
    /// Completion time of the most recent progress event across all
    /// threads (successful queue op or finish).
    last_progress: Time,
    /// True when the pipeline has architectural queues: the livelock
    /// monitor only makes sense when queue activity *is* the progress
    /// signal (a queue-less serial stage never produces any).
    monitor_queues: bool,
    /// Trace sink for this invocation, if one is installed.
    trace: Option<&'a mut dyn TraceSink>,
    /// Cached [`TraceSink::interest`] mask (zero with no sink): every
    /// emit site tests this one register before constructing anything,
    /// which is what makes tracing free when off.
    trace_mask: u32,
}

/// Bit in [`TimingWorld::wait_flags`]: a thread is parked on this queue
/// being empty (wake it on enqueue).
pub(crate) const WAIT_EMPTY: u8 = 1;
/// Bit in [`TimingWorld::wait_flags`]: a thread is parked on this queue
/// being full (wake it on dequeue).
pub(crate) const WAIT_FULL: u8 = 2;

impl<'a> TimingWorld<'a> {
    /// Builds the timing world for one pipeline invocation starting at
    /// cycle `base`. `stages` describes each hardware thread (core,
    /// kind, name); window partitioning follows the per-core compute
    /// thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: &'a MachineConfig,
        hier: &'a mut MemHierarchy,
        mem: &'a mut MemState,
        pipeline: &phloem_ir::Pipeline,
        base: Time,
        kind: SchedulerKind,
        faults: Option<&'a FaultPlan>,
        trace: Option<&'a mut dyn TraceSink>,
    ) -> TimingWorld<'a> {
        let mut compute_per_core = vec![0usize; cfg.cores];
        for s in &pipeline.stages {
            if matches!(s.kind, StageKind::Compute) {
                compute_per_core[s.core] += 1;
            }
        }
        let threads: Vec<ThreadTiming> = pipeline
            .stages
            .iter()
            .map(|s| {
                let is_ra = matches!(s.kind, StageKind::Ra(_));
                let window = if is_ra {
                    cfg.ra_concurrency
                } else {
                    cfg.window_per_thread(compute_per_core[s.core])
                };
                ThreadTiming {
                    core: s.core,
                    is_ra,
                    window: vec![base; window.max(1)],
                    wpos: 0,
                    last_retire: base,
                    cursor: base,
                    flow: base,
                    mshr: vec![base; cfg.mshrs.max(1)],
                    mshr_pos: 0,
                    predictor: BranchPredictor::new(),
                    last_progress: base,
                    stats: ThreadStats {
                        name: s.program.func.name.clone(),
                        is_ra,
                        finish_time: base,
                        ..Default::default()
                    },
                }
            })
            .collect();
        let nq = pipeline.num_queues.max(1) as usize;
        TimingWorld {
            cfg,
            hier,
            mem,
            queues: (0..nq).map(|_| HwQueue::new(cfg.queue_capacity)).collect(),
            threads,
            cores: (0..cfg.cores).map(|_| CoreTiming::default()).collect(),
            base,
            reference_host: kind == SchedulerKind::Polling,
            ops_since_prune: 0,
            events: Vec::new(),
            wait_flags: vec![0; nq],
            trace_deq: std::env::var("TRACE_DEQ").is_ok(),
            watchdog: cfg.watchdog,
            faults,
            last_progress: base,
            monitor_queues: pipeline.num_queues > 0,
            trace_mask: trace.as_ref().map_or(0, |s| s.interest()),
            trace,
        }
    }

    /// Emits one trace event if the sink's interest covers `bit`. The
    /// closure defers event construction past the mask test, so a
    /// disabled (or absent) sink costs exactly one branch per site.
    #[inline(always)]
    pub(crate) fn emit(&mut self, bit: u32, ev: impl FnOnce() -> TraceEvent) {
        if self.trace_mask & bit != 0 {
            if let Some(sink) = self.trace.as_deref_mut() {
                sink.event(&ev());
            }
        }
    }

    /// Simulated-time frontier: the latest completion over all threads.
    pub(crate) fn frontier(&self) -> Time {
        self.threads
            .iter()
            .map(|t| t.stats.finish_time)
            .max()
            .unwrap_or(self.base)
            .max(self.base)
    }

    /// Completion time of the most recent progress event (see the
    /// watchdog docs).
    pub(crate) fn last_progress(&self) -> Time {
        self.last_progress
    }

    /// True when the livelock monitor applies (the pipeline has queues).
    pub(crate) fn monitor_queues(&self) -> bool {
        self.monitor_queues
    }

    /// Records a stage finishing as a progress event.
    pub(crate) fn note_finish(&mut self, i: usize) {
        let ft = self.threads[i].stats.finish_time;
        self.threads[i].last_progress = self.threads[i].last_progress.max(ft);
        self.last_progress = self.last_progress.max(ft);
    }

    /// Atom count at which the fault plan kills thread `i`, if any.
    pub(crate) fn fault_kill_at(&self, i: usize) -> Option<u64> {
        self.faults.and_then(|f| f.kill_at(i))
    }

    /// Moves the pending queue-event log into `buf` (scheduler wakeup
    /// source); both buffers keep their capacity across calls.
    pub(crate) fn drain_events_into(&mut self, buf: &mut Vec<QueueEvent>) {
        debug_assert!(buf.is_empty());
        std::mem::swap(&mut self.events, buf);
    }

    fn thread(&mut self, t: Tid) -> &mut ThreadTiming {
        &mut self.threads[t.0 as usize]
    }

    /// Allocates the earliest issue slot `>= want` on `core` with spare
    /// issue bandwidth. Both trackers implement the same first-fit
    /// policy, so they return identical times; the flat array is the
    /// fast path, the `BTreeMap` the seed-faithful reference.
    fn alloc_issue(&mut self, core: usize, want: Time) -> Time {
        if self.reference_host {
            return self.alloc_issue_map(core, want);
        }
        debug_assert!(self.cfg.issue_width <= u8::MAX as u64);
        let width = self.cfg.issue_width.min(u8::MAX as u64) as u8;
        let issued = &mut self.cores[core].issued;
        let mut slot = (want - self.base) as usize;
        if slot >= issued.len() {
            issued.resize(slot + 64, 0);
        }
        loop {
            if issued[slot] < width {
                issued[slot] += 1;
                return self.base + slot as Time;
            }
            slot += 1;
            if slot >= issued.len() {
                issued.resize(slot + 64, 0);
            }
        }
    }

    /// The seed model's issue tracker: one map node per busy cycle,
    /// pruned periodically below the laggard thread's cursor.
    fn alloc_issue_map(&mut self, core: usize, want: Time) -> Time {
        self.ops_since_prune += 1;
        if self.ops_since_prune >= 1 << 17 {
            self.ops_since_prune = 0;
            let floor = self
                .threads
                .iter()
                .map(|t| t.cursor)
                .min()
                .unwrap_or(self.base);
            for c in &mut self.cores {
                c.issue_map = c.issue_map.split_off(&floor);
            }
        }
        let width = self.cfg.issue_width;
        let map = &mut self.cores[core].issue_map;
        let mut t = want;
        loop {
            let e = map.entry(t).or_insert(0);
            if *e < width {
                *e += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Computes the issue time of one op for thread `t` whose inputs are
    /// ready at `dep`, attributing any stall per `attr`.
    fn issue_at(&mut self, t: Tid, dep: Time, attr: Attr) -> Time {
        let ti = t.0 as usize;
        let (core, is_ra, window_floor, cursor, flow) = {
            let th = &self.threads[ti];
            // RA engines are FSMs: their bookkeeping ops are not bounded
            // by an instruction window, only their outstanding loads are
            // (see `load`).
            let wf = if th.is_ra {
                self.base
            } else {
                th.window[th.wpos]
            };
            (th.core, th.is_ra, wf, th.cursor, th.flow)
        };
        // RA engines are sequential FSMs: steps are strictly in order.
        // OOO cores execute out of order (bounded by the window), so no
        // cursor floor there — but see `last_qop` for queue operations.
        let want = if is_ra {
            dep.max(window_floor).max(self.base).max(flow).max(cursor)
        } else {
            dep.max(window_floor).max(self.base).max(flow)
        };
        let t_issue = if is_ra {
            want
        } else {
            self.alloc_issue(core, want)
        };
        let gap = t_issue.saturating_sub(cursor.max(self.base));
        if gap > 0 {
            let kind = match attr {
                Attr::QueueFull => StallKind::QueueFull,
                Attr::QueueEmpty => StallKind::QueueEmpty,
                Attr::Normal => {
                    if dep <= flow && flow > cursor {
                        StallKind::Frontend
                    } else {
                        StallKind::Backend
                    }
                }
            };
            let th = &mut self.threads[ti];
            match kind {
                StallKind::QueueFull => {
                    th.stats.queue_stall_cycles += gap;
                    th.stats.queue_full_stall_cycles += gap;
                }
                StallKind::QueueEmpty => {
                    th.stats.queue_stall_cycles += gap;
                    th.stats.queue_empty_stall_cycles += gap;
                }
                StallKind::Frontend => th.stats.frontend_stall_cycles += gap,
                StallKind::Backend => th.stats.backend_stall_cycles += gap,
            }
            self.emit(EV_STALL, || TraceEvent::Stall {
                thread: t.0,
                kind,
                cycles: gap,
                at: t_issue,
            });
        }
        let th = &mut self.threads[ti];
        th.cursor = th.cursor.max(t_issue);
        t_issue
    }

    /// Retires one op completing at `completion`. Returns the thread so
    /// callers can bump their op counter on the same borrow (one indexed
    /// lookup instead of two on the per-atom hot path).
    fn complete(&mut self, t: Tid, completion: Time) -> &mut ThreadTiming {
        let th = &mut self.threads[t.0 as usize];
        th.stats.finish_time = th.stats.finish_time.max(completion);
        if !th.is_ra {
            // (RA concurrency rings are only advanced by loads, below.)
            let retire = completion.max(th.last_retire);
            th.last_retire = retire;
            let pos = th.wpos;
            th.window[pos] = retire;
            th.wpos = if pos + 1 == th.window.len() {
                0
            } else {
                pos + 1
            };
        }
        th
    }

    /// Applies the RA outstanding-access limit to a load issued at `ti`,
    /// returning the constrained issue time.
    fn ra_load_slot(&mut self, t: Tid, ti_want: Time, lat: u64) -> Time {
        let th = self.thread(t);
        let floor = th.window[th.wpos];
        let ti = ti_want.max(floor);
        let pos = th.wpos;
        th.window[pos] = ti + lat;
        th.wpos = if pos + 1 == th.window.len() {
            0
        } else {
            pos + 1
        };
        ti
    }

    fn op_latency(&self, t: Tid, class: UopClass) -> u64 {
        if self.threads[t.0 as usize].is_ra {
            self.cfg.ra_op_latency
        } else {
            self.cfg.uop_latency(class)
        }
    }

    /// Timing for one cache-hierarchy access at `addr` (the bounds check
    /// and address translation already happened in the fused
    /// [`MemState::load_with_addr`] / [`MemState::store_with_addr`]
    /// lookup, so this path cannot trap).
    fn mem_access(&mut self, t: Tid, addr: u64, dep: Time) -> (u64, Time) {
        let t_probe = self.issue_at(t, dep, Attr::Normal);
        let core = self.threads[t.0 as usize].core;
        let (lat, level) = self.hier.access(core, addr, t_probe);
        // Long misses contend for the thread's miss-buffer share.
        let t_issue = if matches!(level, HitLevel::L3 | HitLevel::Mem) {
            let th = &mut self.threads[t.0 as usize];
            let floor = th.mshr[th.mshr_pos];
            let ti = t_probe.max(floor);
            let pos = th.mshr_pos;
            th.mshr[pos] = ti + lat;
            th.mshr_pos = if pos + 1 == th.mshr.len() { 0 } else { pos + 1 };
            ti
        } else {
            t_probe
        };
        (lat, t_issue)
    }
}
impl World for TimingWorld<'_> {
    fn uop(&mut self, t: Tid, class: UopClass, dep: Time) -> Time {
        let lat = self.op_latency(t, class);
        let ti = self.issue_at(t, dep, Attr::Normal);
        let lat = match self.faults {
            Some(f) => {
                let extra = f.latency_extra(t.0 as usize, ti);
                if extra > 0 {
                    self.emit(EV_FAULT, || TraceEvent::FaultLatency {
                        thread: t.0,
                        extra,
                        at: ti,
                    });
                }
                lat + extra
            }
            None => lat,
        };
        let tc = ti + lat;
        self.complete(t, tc).stats.uops += 1;
        tc
    }

    fn note_ctrl_handler(&mut self, t: Tid, q: QueueId, tag: u32, at: Time) {
        self.emit(EV_CTRL, || TraceEvent::HandlerFire {
            thread: t.0,
            queue: q.0,
            tag,
            at,
        });
    }

    fn branch(&mut self, t: Tid, site: BranchId, taken: bool, cond_ready: Time) -> Time {
        let ti = self.issue_at(t, cond_ready, Attr::Normal);
        let tc = ti + 1;
        let penalty = self.cfg.mispredict_penalty;
        let th = self.complete(t, tc);
        th.stats.branches += 1;
        if th.is_ra {
            // RA FSM sequencing has no speculation; each branch is a
            // state transition of the accelerator's FSM.
            let flow = th.flow;
            self.emit(EV_RA, || TraceEvent::RaTransition {
                thread: t.0,
                site: site.0,
                taken,
                at: tc,
            });
            return flow;
        }
        if th.predictor.mispredicted(site, taken) {
            th.stats.mispredicts += 1;
            let resume = tc + penalty;
            th.stats.frontend_stall_cycles += penalty;
            th.flow = th.flow.max(resume);
            self.emit(EV_STALL, || TraceEvent::Stall {
                thread: t.0,
                kind: StallKind::Frontend,
                cycles: penalty,
                at: resume,
            });
        }
        self.threads[t.0 as usize].flow
    }

    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let (v, addr) = self.mem.load_with_addr(array, index)?;
        let (lat, mut ti) = self.mem_access(t, addr, dep);
        let lat = match self.faults {
            Some(f) => {
                let extra = f.latency_extra(t.0 as usize, ti);
                if extra > 0 {
                    self.emit(EV_FAULT, || TraceEvent::FaultLatency {
                        thread: t.0,
                        extra,
                        at: ti,
                    });
                }
                lat + extra
            }
            None => lat,
        };
        if self.threads[t.0 as usize].is_ra {
            ti = self.ra_load_slot(t, ti, lat);
        }
        let tc = ti + lat;
        self.complete(t, tc).stats.loads += 1;
        Ok((v, tc))
    }

    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<Time, Trap> {
        let addr = self.mem.store_with_addr(array, index, value)?;
        let (_lat, ti) = self.mem_access(t, addr, dep);
        // Stores drain through the store buffer: retirement is fast.
        let tc = ti + 1;
        self.complete(t, tc).stats.stores += 1;
        Ok(tc)
    }

    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let (old, addr) = self.mem.load_with_addr(array, index)?;
        let new = phloem_ir::eval_binop(op, old, value)?;
        self.mem.store(array, index, new)?;
        let (lat, ti) = self.mem_access(t, addr, dep);
        // Atomics pay the access round trip plus locked-RMW overhead
        // (~Skylake `lock xadd` cost).
        let tc = ti + lat + 16;
        let th = self.complete(t, tc);
        th.stats.loads += 1;
        th.stats.stores += 1;
        Ok((old, tc))
    }

    fn try_enq(&mut self, t: Tid, q: QueueId, w: Value, dep: Time) -> Result<Option<Time>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        let (full, squeeze) = match self.faults {
            // A squeeze clamps the *admission* check only; physical
            // slot-recycling timing is untouched (effective cap <=
            // physical cap, so the seed full-check is subsumed).
            Some(f) => {
                let q = &self.queues[qi];
                let cap = f.queue_cap(qi, q.enq_ord(), q.capacity());
                let clamped = if cap < q.capacity() { Some(cap) } else { None };
                (q.len() >= cap, clamped)
            }
            None => (self.queues[qi].is_full(), None),
        };
        if full {
            return Ok(None);
        }
        let slot_free = self.queues[qi].slot_free_time();
        let (cursor, is_ra) = {
            let th = &self.threads[t.0 as usize];
            (th.cursor, th.is_ra)
        };
        let waited = slot_free.saturating_sub(dep.max(cursor));
        let lat = self.op_latency(t, UopClass::QueuePush);
        // RA engines "launch memory requests in parallel but deliver
        // loads in order": the FSM issues the enqueue at its own pace and
        // the entry becomes ready when the data arrives.
        let ti = if is_ra {
            self.issue_at(t, slot_free, Attr::QueueFull)
        } else {
            self.issue_at(t, dep.max(slot_free), Attr::QueueFull)
        };
        let tc = (ti + lat).max(if is_ra { dep } else { 0 });
        let extra = waited.saturating_sub(ti.saturating_sub(cursor));
        let core = {
            let th = self.complete(t, tc);
            th.stats.enqs += 1;
            th.stats.queue_stall_cycles += extra;
            th.stats.queue_full_stall_cycles += extra;
            th.last_progress = th.last_progress.max(tc);
            th.core
        };
        if extra > 0 {
            // Back-pressure wait not already covered by the issue gap:
            // reported as its own QueueFull stall span so event sums
            // reconcile with `queue_full_stall_cycles` exactly.
            self.emit(EV_STALL, || TraceEvent::Stall {
                thread: t.0,
                kind: StallKind::QueueFull,
                cycles: extra,
                at: tc,
            });
        }
        if let Some(cap) = squeeze {
            self.emit(EV_FAULT, || TraceEvent::FaultSqueeze {
                queue: q.0,
                cap: cap as u32,
                at: tc,
            });
        }
        self.last_progress = self.last_progress.max(tc);
        self.queues[qi].push(QueueEntry {
            value: w,
            ready: tc,
            core,
        });
        let occupancy = self.queues[qi].len() as u32;
        self.emit(EV_QUEUE, || TraceEvent::Enq {
            queue: q.0,
            thread: t.0,
            at: tc,
            occupancy,
        });
        if self.wait_flags[qi] & WAIT_EMPTY != 0 {
            self.events.push(QueueEvent::Enq(q, tc));
        }
        Ok(Some(tc))
    }

    fn try_deq(&mut self, t: Tid, q: QueueId, dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        if self.queues[qi].is_empty() {
            return Ok(None);
        }
        let (entry_ready, entry_core) = {
            let entry = self.queues[qi].front().expect("nonempty");
            (entry.ready, entry.core)
        };
        let th_core = self.threads[t.0 as usize].core;
        let avail = if entry_core == th_core {
            entry_ready
        } else {
            entry_ready + self.cfg.inter_core_queue_latency
        };
        // A dequeue-stall fault delays delivery of the entry itself (a
        // pure latency addition: it can never turn this successful
        // dequeue into a blocked one).
        let deq_extra = match self.faults {
            Some(f) => f.deq_extra(qi, self.queues[qi].deq_ord()),
            None => 0,
        };
        let avail = avail + deq_extra;
        let lat = self.op_latency(t, UopClass::QueuePop);
        let ti = self.issue_at(t, dep.max(avail.saturating_sub(lat)), Attr::QueueEmpty);
        let tc = (ti + lat).max(avail);
        // (The wait is folded into the Attr::QueueEmpty stall gap.)
        {
            let th = self.complete(t, tc);
            th.stats.deqs += 1;
            th.last_progress = th.last_progress.max(tc);
        }
        self.last_progress = self.last_progress.max(tc);
        if deq_extra > 0 {
            self.emit(EV_FAULT, || TraceEvent::FaultDeqStall {
                queue: q.0,
                extra: deq_extra,
                at: tc,
            });
        }
        let entry = self.queues[qi].pop(tc);
        let occupancy = self.queues[qi].len() as u32;
        self.emit(EV_QUEUE, || TraceEvent::Deq {
            queue: q.0,
            thread: t.0,
            at: tc,
            occupancy,
        });
        if self.wait_flags[qi] & WAIT_FULL != 0 {
            self.events.push(QueueEvent::Deq(q, tc));
        }
        if self.trace_deq {
            eprintln!(
                "deq t{} q{} ti={} avail={} tc={} dep={}",
                t.0, q.0, ti, avail, tc, dep
            );
        }
        Ok(Some((entry.value, tc)))
    }

    fn mem(&self) -> &MemState {
        self.mem
    }

    fn mem_mut(&mut self) -> &mut MemState {
        self.mem
    }
}

/// Builds the tree-walking interpreters for a pipeline's stages (one
/// hardware thread per stage), each with the standard step budget.
pub(crate) fn build_interps<'p>(
    pipeline: &'p phloem_ir::Pipeline,
    params: &[(&str, Value)],
    budget: u64,
) -> Vec<StepInterp<'p>> {
    pipeline
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let bound = phloem_ir::bind_params(&s.program.func, params);
            StepInterp::new(
                StageSpec {
                    func: &s.program.func,
                    handlers: &s.program.handlers,
                },
                Tid(i as u32),
                &bound,
            )
            .with_budget(budget)
        })
        .collect()
}

/// Compiles every stage program of a pipeline to bytecode (for
/// [`phloem_ir::ExecEngine::Flat`]).
///
/// # Errors
/// Propagates compile-time traps (out-of-range ids in unvalidated
/// programs).
pub(crate) fn compile_pipeline(
    pipeline: &phloem_ir::Pipeline,
) -> Result<Vec<phloem_ir::BytecodeProgram>, Trap> {
    pipeline
        .stages
        .iter()
        .map(|s| phloem_ir::compile(&s.program.func, &s.program.handlers))
        .collect()
}

/// Builds the flat bytecode interpreters for a pipeline's stages,
/// mirroring [`build_interps`].
pub(crate) fn build_flat_interps<'p>(
    progs: &'p [phloem_ir::BytecodeProgram],
    pipeline: &phloem_ir::Pipeline,
    params: &[(&str, Value)],
    budget: u64,
) -> Vec<phloem_ir::FlatInterp<'p>> {
    progs
        .iter()
        .zip(&pipeline.stages)
        .enumerate()
        .map(|(i, (p, s))| {
            let bound = phloem_ir::bind_params(&s.program.func, params);
            phloem_ir::FlatInterp::new(p, Tid(i as u32), &bound).with_budget(budget)
        })
        .collect()
}
