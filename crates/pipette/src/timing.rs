//! The cycle-level timing [`World`]: per-thread instruction windows,
//! shared issue bandwidth, branch prediction, the cache hierarchy, and
//! timed hardware queues.
//!
//! ## Timing model
//!
//! Each stage (or RA) runs as a hardware thread driven by the shared
//! [`StepInterp`](phloem_ir::StepInterp) from `phloem-ir`. The model
//! captures the phenomena the paper's results hinge on:
//!
//! * **Bounded instruction window per thread** (ROB partitioned among
//!   active SMT threads): in-order dispatch, out-of-order completion,
//!   in-order retirement — dependent cache misses serialize while
//!   independent ones overlap up to the window and MSHR limits.
//! * **Shared issue bandwidth** (6 uops/cycle/core across SMT threads).
//! * **Branch misprediction penalties** from a 2-bit predictor, so
//!   data-dependent branches serialize execution.
//! * **Hardware queues** with blocking enq/deq, bounded depth, 1-cycle
//!   operations through the register file, and an inter-core delivery
//!   penalty.
//! * **Reference accelerators** as dedicated FSM threads: no core issue
//!   bandwidth, fixed op latency, limited outstanding accesses.
//! * **Cache hierarchy + DRAM bandwidth** shared by threads and RAs.
//!
//! ## Host layout (SoA arena + calendar ring)
//!
//! All per-thread retirement windows and MSHR rings live in one shared
//! slot arena (`TimingWorld::slots`, see [`SlotRing`]); per-core issue
//! bandwidth lives in a bounded calendar ring ([`IssueTracker`]) whose
//! base advances past reclaimed cycles at round boundaries
//! ([`TimingWorld::advance_to`]) — the idle-cycle fast-forward. With
//! [`crate::MachineConfig::fast_forward`] off the tracker degrades to
//! the dense one-byte-per-cycle array spanning the whole invocation,
//! which is the reference the ring is differentially tested against
//! (`tests/fast_forward.rs`, `fuzzdiff`). DESIGN.md § "Timing world"
//! documents the layout and the reclaim-floor invariant.
//!
//! ## Blocked operations have no timing side effects
//!
//! [`World::try_enq`] and [`World::try_deq`] return `Ok(None)` *before*
//! touching any timing state when the queue is full/empty. The
//! event-driven scheduler relies on this: skipping a re-poll of a
//! blocked thread cannot change simulated time, because the poll it
//! skips would have been a pure no-op. Every *successful* queue
//! operation is appended to the [`QueueEvent`] log the scheduler drains
//! to wake waiters.

use crate::branch::BranchPredictor;
use crate::cache::{HitLevel, MemHierarchy};
use crate::config::MachineConfig;
use crate::faults::FaultPlan;
use crate::queue::{HwQueue, QueueEntry, QueueEvent};
use crate::stats::ThreadStats;
use crate::trace::{
    StallKind, TraceEvent, TraceSink, EV_CTRL, EV_FAULT, EV_QUEUE, EV_RA, EV_STALL,
};
use crate::watchdog::{self, Verdict, WatchdogConfig};
use phloem_pool::CancelToken;

use phloem_ir::{
    ArrayId, BinOp, BranchId, MemState, QueueId, StageKind, StageSpec, StepInterp, Tid, Time, Trap,
    UopClass, Value, World,
};

/// A fixed-length ring of completion timestamps carved out of the shared
/// slot arena (`TimingWorld::slots`). Models both the per-thread
/// retirement window (ROB share / RA outstanding-load limit) and the
/// per-thread MSHR share: `oldest()` is the in-order resource floor, and
/// `replace()` retires the oldest entry with a new completion time.
/// Keeping only `(offset, len, pos)` here and the timestamps themselves
/// in one contiguous arena removes a pointer chase per window/MSHR touch
/// and keeps every thread's hot ring on the same few cache lines.
#[derive(Clone, Copy, Debug)]
struct SlotRing {
    off: u32,
    len: u32,
    pos: u32,
}

impl SlotRing {
    /// Appends `len` slots filled with `fill` to the arena and returns
    /// the ring that owns them.
    fn carve(slots: &mut Vec<Time>, len: usize, fill: Time) -> SlotRing {
        let off = slots.len();
        slots.extend(std::iter::repeat_n(fill, len));
        SlotRing {
            off: off as u32,
            len: len as u32,
            pos: 0,
        }
    }

    /// The oldest (next-to-retire) entry: the resource floor.
    #[inline(always)]
    fn oldest(&self, slots: &[Time]) -> Time {
        slots[(self.off + self.pos) as usize]
    }

    /// Overwrites the oldest entry with `v` and advances the ring.
    #[inline(always)]
    fn replace(&mut self, slots: &mut [Time], v: Time) {
        slots[(self.off + self.pos) as usize] = v;
        let p = self.pos + 1;
        self.pos = if p == self.len { 0 } else { p };
    }
}

#[derive(Debug)]
pub(crate) struct ThreadTiming {
    pub(crate) core: usize,
    pub(crate) is_ra: bool,
    /// Retirement window (compute) / outstanding-load ring (RA).
    win: SlotRing,
    /// Outstanding long-miss limit (fill-buffer share), per thread so
    /// the accounting stays time-coherent.
    mshr: SlotRing,
    last_retire: Time,
    cursor: Time,
    flow: Time,
    /// Latest completion of this thread (hot state; materialized into
    /// [`ThreadStats::finish_time`] when the invocation folds its
    /// statistics).
    pub(crate) finish_time: Time,
    /// Completion time of this thread's most recent progress event
    /// (successful queue op or finish); feeds the watchdog snapshot.
    pub(crate) last_progress: Time,
    predictor: BranchPredictor,
    pub(crate) stats: ThreadStats,
}

impl ThreadTiming {
    /// The thread's issue cursor (grid-identical; used as the timestamp
    /// of scheduler-level trace events like parks).
    pub(crate) fn cursor(&self) -> Time {
        self.cursor
    }
}

/// Per-core issue-bandwidth tracker: micro-ops issued per cycle.
///
/// Two layouts behind one first-fit policy, so both return identical
/// issue times for identical allocation sequences:
///
/// * **fast-forward on** (default): a bounded power-of-two *calendar
///   ring* per core. `counts[(head + (t - base)) & mask]` holds the
///   uops issued in cycle `t`; [`IssueTracker::advance`] moves `base`
///   past cycles no in-flight op can claim anymore (the reclaim floor,
///   see [`TimingWorld::advance_to`]), zeroing only the reclaimed span.
///   The working set is the *active* issue span, not the invocation
///   length — this is what lets the clock fast-forward across idle
///   stretches without touching (or ever allocating) the skipped
///   cycles.
/// * **fast-forward off**: the dense flat array spanning the whole
///   invocation (`counts[t - base]`, head pinned at 0, base never
///   advancing). Kept as the reference layout for the differential
///   grid; it replaces the seed's `BTreeMap` issue tracker, which is
///   gone entirely.
#[derive(Debug)]
pub(crate) struct IssueTracker {
    /// Issue width in uops/cycle (fits a byte; asserted at build).
    width: u8,
    /// Ring layout + base reclamation when true; dense flat array when
    /// false. Mirrors [`MachineConfig::fast_forward`].
    fast_forward: bool,
    lanes: Vec<IssueLane>,
}

/// One core's issue calendar.
#[derive(Debug)]
struct IssueLane {
    /// Uops issued per cycle; ring (power-of-two len) or dense array.
    counts: Vec<u8>,
    /// Ring slot holding cycle `base` (always 0 in dense mode).
    head: usize,
    /// Cycle held by slot `head`; the reclaim floor (invocation base in
    /// dense mode, forever).
    base: Time,
}

impl IssueLane {
    /// Dense first-fit (fast-forward off): byte per cycle since the
    /// invocation base, grown on demand, never reclaimed.
    fn alloc_dense(&mut self, width: u8, want: Time) -> Time {
        let mut slot = (want - self.base) as usize;
        if slot >= self.counts.len() {
            self.counts.resize(slot + 64, 0);
        }
        loop {
            if self.counts[slot] < width {
                self.counts[slot] += 1;
                return self.base + slot as Time;
            }
            slot += 1;
            if slot >= self.counts.len() {
                self.counts.resize(slot + 64, 0);
            }
        }
    }

    /// Ring first-fit (fast-forward on): same scan over the calendar
    /// ring. `want >= base` is the reclaim-floor invariant — every
    /// allocation request is at or past the oldest unretired window
    /// entry, and `advance` never moves `base` beyond that floor.
    #[inline]
    fn alloc_ring(&mut self, width: u8, want: Time) -> Time {
        debug_assert!(
            want >= self.base,
            "issue request at cycle {want} below the reclaim floor {}",
            self.base
        );
        let mut off = (want - self.base) as usize;
        loop {
            if off >= self.counts.len() {
                self.grow(off);
            }
            let idx = (self.head + off) & (self.counts.len() - 1);
            if self.counts[idx] < width {
                self.counts[idx] += 1;
                return self.base + off as Time;
            }
            off += 1;
        }
    }

    /// Grows the ring to cover offset `min_off`, unrolling the old
    /// contents to start at slot 0.
    #[cold]
    fn grow(&mut self, min_off: usize) {
        let old_cap = self.counts.len();
        let new_cap = (min_off + 1).next_power_of_two().max(1024);
        let mut counts = vec![0u8; new_cap];
        if old_cap > 0 {
            let mask = old_cap - 1;
            for (k, c) in counts.iter_mut().enumerate().take(old_cap) {
                *c = self.counts[(self.head + k) & mask];
            }
        }
        self.counts = counts;
        self.head = 0;
    }

    /// Advances the reclaim floor to `floor`, zeroing exactly the slots
    /// that held the reclaimed cycles (at most one lap of the ring).
    fn advance(&mut self, floor: Time) {
        let delta = floor.saturating_sub(self.base);
        if delta == 0 {
            return;
        }
        self.base = floor;
        let cap = self.counts.len();
        if cap == 0 {
            return;
        }
        let mask = cap - 1;
        let n = delta.min(cap as Time) as usize;
        for k in 0..n {
            self.counts[(self.head + k) & mask] = 0;
        }
        self.head = (self.head + delta as usize) & mask;
    }
}

impl IssueTracker {
    fn new(cfg: &MachineConfig, base: Time) -> IssueTracker {
        debug_assert!(cfg.issue_width <= u8::MAX as u64);
        IssueTracker {
            width: cfg.issue_width.min(u8::MAX as u64) as u8,
            fast_forward: cfg.fast_forward,
            lanes: (0..cfg.cores)
                .map(|_| IssueLane {
                    counts: Vec::new(),
                    head: 0,
                    base,
                })
                .collect(),
        }
    }

    /// Allocates the earliest issue slot `>= want` on `core` with spare
    /// issue bandwidth (first-fit; identical times in both layouts).
    #[inline]
    fn alloc(&mut self, core: usize, want: Time) -> Time {
        let lane = &mut self.lanes[core];
        if self.fast_forward {
            lane.alloc_ring(self.width, want)
        } else {
            lane.alloc_dense(self.width, want)
        }
    }

    /// Fast-forwards every lane's base to `floor` (no-op when the dense
    /// reference layout is active).
    fn advance(&mut self, floor: Time) {
        if !self.fast_forward {
            return;
        }
        for lane in &mut self.lanes {
            lane.advance(floor);
        }
    }
}

/// Stall attribution for [`TimingWorld::issue_at`].
#[derive(Clone, Copy)]
enum Attr {
    Normal,
    /// Waiting for a slot in a full downstream queue.
    QueueFull,
    /// Waiting for data from an empty (or late) upstream queue.
    QueueEmpty,
}

/// The events [`TimingWorld::advance_to`] is driven by. Clock
/// advancement (issue-calendar reclamation *and* the watchdog's
/// forward-progress checks) is consolidated behind this one entry point
/// so fast-forward can never skip a watchdog window: the only place the
/// clock base moves is also the place the watchdog looks.
pub(crate) enum AdvanceEvent {
    /// A scheduler round boundary: reclaim issue slots up to the window
    /// floor, then run the watchdog verdict. Round boundaries are
    /// grid-identical, so so are the verdicts.
    RoundEnd,
    /// End of the invocation: final reclamation, no verdict (the run
    /// already completed or trapped).
    InvocationEnd,
}

pub(crate) struct TimingWorld<'a> {
    cfg: &'a MachineConfig,
    hier: &'a mut MemHierarchy,
    mem: &'a mut MemState,
    pub(crate) queues: Vec<HwQueue>,
    pub(crate) threads: Vec<ThreadTiming>,
    /// Shared slot arena backing every thread's window and MSHR ring
    /// (see [`SlotRing`]).
    slots: Vec<Time>,
    issue: IssueTracker,
    base: Time,
    /// Successful queue operations since the scheduler last drained;
    /// used to wake threads parked on wait-lists. Only operations on
    /// queues some thread is actually parked on (per
    /// [`TimingWorld::wait_flags`]) are logged, so the log stays tiny.
    events: Vec<QueueEvent>,
    /// Per-queue waiter flags maintained by the scheduler
    /// ([`WAIT_EMPTY`] / [`WAIT_FULL`] bits). Purely a host-side
    /// fast-path filter for event logging; no effect on timing.
    pub(crate) wait_flags: Vec<u8>,
    /// Cached `TRACE_DEQ` env toggle (checked once per invocation).
    trace_deq: bool,
    /// Forward-progress limits (copied from the machine config).
    pub(crate) watchdog: WatchdogConfig,
    /// Fault plan for this invocation, if any.
    faults: Option<&'a FaultPlan>,
    /// Host-side cancellation token for this invocation, if any.
    /// Checked only at round boundaries ([`TimingWorld::advance_to`]),
    /// reads host state only, and never mutates anything simulated —
    /// a token that does not fire is observationally free.
    cancel: Option<CancelToken>,
    /// Round counter throttling the clock-reading deadline poll (the
    /// cheap latched-flag check runs every round; `Instant::now` only
    /// every [`CANCEL_POLL_PERIOD`] rounds).
    cancel_rounds: u32,
    /// Completion time of the most recent progress event across all
    /// threads (successful queue op or finish).
    last_progress: Time,
    /// True when the pipeline has architectural queues: the livelock
    /// monitor only makes sense when queue activity *is* the progress
    /// signal (a queue-less serial stage never produces any).
    monitor_queues: bool,
    /// Trace sink for this invocation, if one is installed.
    trace: Option<&'a mut dyn TraceSink>,
    /// Cached [`TraceSink::interest`] mask (zero with no sink): every
    /// emit site tests this one register before constructing anything,
    /// which is what makes tracing free when off.
    trace_mask: u32,
}

/// Rounds between clock-reading deadline polls (see
/// [`TimingWorld::cancel_fired`]). A scheduler round is microseconds of
/// host time at worst, so the deadline resolution this buys (< ~10 ms
/// of drift) is far below any deadline a service would arm, while the
/// steady-state cost stays one atomic load per round.
const CANCEL_POLL_PERIOD: u32 = 256;

/// Bit in [`TimingWorld::wait_flags`]: a thread is parked on this queue
/// being empty (wake it on enqueue).
pub(crate) const WAIT_EMPTY: u8 = 1;
/// Bit in [`TimingWorld::wait_flags`]: a thread is parked on this queue
/// being full (wake it on dequeue).
pub(crate) const WAIT_FULL: u8 = 2;

/// Cached `TRACE_DEQ` env toggle: the environment cannot change under a
/// running process in any supported way, and an `environ` walk per
/// invocation is measurable on invocation-per-round workloads.
///
/// Enabled only by `TRACE_DEQ=1` (the `PHLOEM_PIN`-style convention for
/// every boolean flag in this workspace): a set-but-false value such as
/// `TRACE_DEQ=0` keeps tracing off, where a bare `is_ok()` check would
/// have turned it on.
fn trace_deq_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("TRACE_DEQ").as_deref() == Ok("1"))
}

impl<'a> TimingWorld<'a> {
    /// Builds the timing world for one pipeline invocation starting at
    /// cycle `base`. `stages` describes each hardware thread (core,
    /// kind, name); window partitioning follows the per-core compute
    /// thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: &'a MachineConfig,
        hier: &'a mut MemHierarchy,
        mem: &'a mut MemState,
        pipeline: &phloem_ir::Pipeline,
        base: Time,
        faults: Option<&'a FaultPlan>,
        cancel: Option<CancelToken>,
        trace: Option<&'a mut dyn TraceSink>,
    ) -> TimingWorld<'a> {
        let mut compute_per_core = vec![0usize; cfg.cores];
        for s in &pipeline.stages {
            if matches!(s.kind, StageKind::Compute) {
                compute_per_core[s.core] += 1;
            }
        }
        let mut slots: Vec<Time> = Vec::new();
        let threads: Vec<ThreadTiming> = pipeline
            .stages
            .iter()
            .map(|s| {
                let is_ra = matches!(s.kind, StageKind::Ra(_));
                let window = if is_ra {
                    cfg.ra_concurrency
                } else {
                    cfg.window_per_thread(compute_per_core[s.core])
                };
                ThreadTiming {
                    core: s.core,
                    is_ra,
                    win: SlotRing::carve(&mut slots, window.max(1), base),
                    mshr: SlotRing::carve(&mut slots, cfg.mshrs.max(1), base),
                    last_retire: base,
                    cursor: base,
                    flow: base,
                    finish_time: base,
                    last_progress: base,
                    predictor: BranchPredictor::new(),
                    stats: ThreadStats {
                        name: s.program.func.name.clone(),
                        is_ra,
                        finish_time: base,
                        ..Default::default()
                    },
                }
            })
            .collect();
        let nq = pipeline.num_queues.max(1) as usize;
        TimingWorld {
            cfg,
            hier,
            mem,
            queues: (0..nq).map(|_| HwQueue::new(cfg.queue_capacity)).collect(),
            threads,
            slots,
            issue: IssueTracker::new(cfg, base),
            base,
            events: Vec::new(),
            wait_flags: vec![0; nq],
            trace_deq: trace_deq_enabled(),
            watchdog: cfg.watchdog,
            faults,
            cancel,
            cancel_rounds: 0,
            last_progress: base,
            monitor_queues: pipeline.num_queues > 0,
            trace_mask: trace.as_ref().map_or(0, |s| s.interest()),
            trace,
        }
    }

    /// Emits one trace event if the sink's interest covers `bit`. The
    /// closure defers event construction past the mask test, so a
    /// disabled (or absent) sink costs exactly one branch per site.
    #[inline(always)]
    pub(crate) fn emit(&mut self, bit: u32, ev: impl FnOnce() -> TraceEvent) {
        if self.trace_mask & bit != 0 {
            if let Some(sink) = self.trace.as_deref_mut() {
                sink.event(&ev());
            }
        }
    }

    /// Simulated-time frontier: the latest completion over all threads.
    pub(crate) fn frontier(&self) -> Time {
        self.threads
            .iter()
            .map(|t| t.finish_time)
            .max()
            .unwrap_or(self.base)
            .max(self.base)
    }

    /// Completion time of the most recent progress event (see the
    /// watchdog docs).
    pub(crate) fn last_progress(&self) -> Time {
        self.last_progress
    }

    /// True when the livelock monitor applies (the pipeline has queues).
    pub(crate) fn monitor_queues(&self) -> bool {
        self.monitor_queues
    }

    /// The issue-calendar reclaim floor: no future allocation can
    /// request a cycle below the oldest unretired window entry of any
    /// compute thread (every `want` is `>= win.oldest()`, window
    /// entries are monotone, and RA threads never allocate issue
    /// slots), so cycles below the minimum are dead and the calendar
    /// base may fast-forward past them.
    fn issue_floor(&self) -> Time {
        self.threads
            .iter()
            .filter(|th| !th.is_ra)
            .map(|th| th.win.oldest(&self.slots))
            .min()
            .unwrap_or(self.base)
    }

    /// The single clock-advancement entry point (see [`AdvanceEvent`]):
    /// fast-forwards the issue calendar past reclaimed idle cycles and,
    /// at round boundaries, runs the watchdog verdict. Reclamation is
    /// host-side only — it can never change simulated time, stall
    /// attribution, fault windows (keyed on ordinals/atom counts,
    /// queried inline per op), or trace emission; `tests/fast_forward.rs`
    /// and the fuzzdiff grid enforce this bit-exactly.
    pub(crate) fn advance_to(&mut self, ev: AdvanceEvent) -> Option<Verdict> {
        let floor = self.issue_floor();
        self.issue.advance(floor);
        match ev {
            AdvanceEvent::RoundEnd => {
                // Cancellation shares the watchdog's window boundaries:
                // the one place the clock advances is also the one place
                // a deadline or drain request can stop the run, so a
                // cancelled run's simulated state is exactly an
                // uncancelled run's state at that round.
                if self.cancel_fired() {
                    return Some(Verdict::Cancelled);
                }
                watchdog::verdict(self)
            }
            AdvanceEvent::InvocationEnd => None,
        }
    }

    /// True once this invocation's cancel token has fired. Reads only
    /// host-side state: a latched-flag load every round, plus a real
    /// clock read every [`CANCEL_POLL_PERIOD`] rounds to latch expired
    /// deadlines.
    fn cancel_fired(&mut self) -> bool {
        let Some(tok) = &self.cancel else {
            return false;
        };
        if tok.is_set() {
            return true;
        }
        self.cancel_rounds = self.cancel_rounds.wrapping_add(1);
        if self.cancel_rounds.is_multiple_of(CANCEL_POLL_PERIOD) {
            return tok.poll_expired();
        }
        false
    }

    /// Why the cancel token fired (watchdog trap detail).
    pub(crate) fn cancel_reason(&self) -> String {
        self.cancel.as_ref().map(|t| t.reason()).unwrap_or_default()
    }

    /// Records a stage finishing as a progress event.
    pub(crate) fn note_finish(&mut self, i: usize) {
        let ft = self.threads[i].finish_time;
        self.threads[i].last_progress = self.threads[i].last_progress.max(ft);
        self.last_progress = self.last_progress.max(ft);
    }

    /// Atom count at which the fault plan kills thread `i`, if any.
    pub(crate) fn fault_kill_at(&self, i: usize) -> Option<u64> {
        self.faults.and_then(|f| f.kill_at(i))
    }

    /// Moves the pending queue-event log into `buf` (scheduler wakeup
    /// source); both buffers keep their capacity across calls. Callers
    /// must hand back an empty buffer so no capacity is ever dropped.
    pub(crate) fn drain_events_into(&mut self, buf: &mut Vec<QueueEvent>) {
        debug_assert!(buf.is_empty());
        std::mem::swap(&mut self.events, buf);
    }

    /// Computes the issue time of one op for thread `t` whose inputs are
    /// ready at `dep`, attributing any stall per `attr`.
    ///
    /// `inline(always)`: this is the per-micro-op kernel of the whole
    /// simulator; left to its own devices the compiler keeps it
    /// outlined (it has many callers), which costs ~20% of host time in
    /// call overhead and lost constant propagation.
    #[inline(always)]
    fn issue_at(&mut self, t: Tid, dep: Time, attr: Attr) -> Time {
        let TimingWorld {
            threads,
            issue,
            slots,
            base,
            ..
        } = self;
        let th = &mut threads[t.0 as usize];
        let base = *base;
        let cursor0 = th.cursor;
        // RA engines are sequential FSMs: steps are strictly in order
        // and not bounded by an instruction window or core issue
        // bandwidth (only their outstanding loads are, see `load`). OOO
        // cores execute out of order bounded by the window and the
        // shared issue calendar — but see `last_qop` for queue ops.
        let t_issue = if th.is_ra {
            dep.max(base).max(th.flow).max(cursor0)
        } else {
            let want = dep.max(th.win.oldest(slots)).max(th.flow);
            issue.alloc(th.core, want)
        };
        th.cursor = cursor0.max(t_issue);
        let gap = t_issue.saturating_sub(cursor0.max(base));
        if gap > 0 {
            self.record_stall(t, attr, dep, cursor0, gap, t_issue);
        }
        t_issue
    }

    /// Stall-attribution slow path of [`Self::issue_at`] (`cursor0` is
    /// the thread's cursor *before* this op issued).
    #[cold]
    #[inline(never)]
    fn record_stall(&mut self, t: Tid, attr: Attr, dep: Time, cursor0: Time, gap: u64, at: Time) {
        let th = &mut self.threads[t.0 as usize];
        let kind = match attr {
            Attr::QueueFull => StallKind::QueueFull,
            Attr::QueueEmpty => StallKind::QueueEmpty,
            Attr::Normal => {
                if dep <= th.flow && th.flow > cursor0 {
                    StallKind::Frontend
                } else {
                    StallKind::Backend
                }
            }
        };
        match kind {
            StallKind::QueueFull => {
                th.stats.queue_stall_cycles += gap;
                th.stats.queue_full_stall_cycles += gap;
            }
            StallKind::QueueEmpty => {
                th.stats.queue_stall_cycles += gap;
                th.stats.queue_empty_stall_cycles += gap;
            }
            StallKind::Frontend => th.stats.frontend_stall_cycles += gap,
            StallKind::Backend => th.stats.backend_stall_cycles += gap,
        }
        self.emit(EV_STALL, || TraceEvent::Stall {
            thread: t.0,
            kind,
            cycles: gap,
            at,
        });
    }

    /// Retires one op completing at `completion`. Returns the thread so
    /// callers can bump their op counter on the same borrow (one indexed
    /// lookup instead of two on the per-atom hot path).
    #[inline(always)]
    fn complete(&mut self, t: Tid, completion: Time) -> &mut ThreadTiming {
        let TimingWorld { threads, slots, .. } = self;
        let th = &mut threads[t.0 as usize];
        th.finish_time = th.finish_time.max(completion);
        if !th.is_ra {
            // (RA concurrency rings are only advanced by loads, below.)
            let retire = completion.max(th.last_retire);
            th.last_retire = retire;
            th.win.replace(slots, retire);
        }
        th
    }

    /// Applies the RA outstanding-access limit to a load issued at `ti`,
    /// returning the constrained issue time.
    fn ra_load_slot(&mut self, t: Tid, ti_want: Time, lat: u64) -> Time {
        let TimingWorld { threads, slots, .. } = self;
        let th = &mut threads[t.0 as usize];
        let ti = ti_want.max(th.win.oldest(slots));
        th.win.replace(slots, ti + lat);
        ti
    }

    #[inline]
    fn op_latency(&self, t: Tid, class: UopClass) -> u64 {
        if self.threads[t.0 as usize].is_ra {
            self.cfg.ra_op_latency
        } else {
            self.cfg.uop_latency(class)
        }
    }

    /// Timing for one cache-hierarchy access at `addr` (the bounds check
    /// and address translation already happened in the fused
    /// [`MemState::load_with_addr`] / [`MemState::store_with_addr`]
    /// lookup, so this path cannot trap).
    #[inline]
    fn mem_access(&mut self, t: Tid, addr: u64, dep: Time) -> (u64, Time) {
        let t_probe = self.issue_at(t, dep, Attr::Normal);
        let core = self.threads[t.0 as usize].core;
        let (lat, level) = self.hier.access(core, addr, t_probe);
        // Long misses contend for the thread's miss-buffer share.
        let t_issue = if matches!(level, HitLevel::L3 | HitLevel::Mem) {
            let TimingWorld { threads, slots, .. } = self;
            let th = &mut threads[t.0 as usize];
            let ti = t_probe.max(th.mshr.oldest(slots));
            th.mshr.replace(slots, ti + lat);
            ti
        } else {
            t_probe
        };
        (lat, t_issue)
    }
}
impl World for TimingWorld<'_> {
    /// The single most frequent [`World`] call: issue, latency, and
    /// retirement fused over one thread borrow (the split
    /// [`TimingWorld::issue_at`]/[`TimingWorld::complete`] pair would
    /// index `threads` three times per micro-op). Semantics — issue
    /// time, stall attribution, fault latency, window retirement, and
    /// trace-event order (stall before fault) — are identical to the
    /// split path the other ops use.
    #[inline]
    fn uop(&mut self, t: Tid, class: UopClass, dep: Time) -> Time {
        let (tc, ti, cursor0, gap, extra) = {
            let TimingWorld {
                cfg,
                threads,
                issue,
                slots,
                base,
                faults,
                ..
            } = &mut *self;
            let th = &mut threads[t.0 as usize];
            let base = *base;
            let cursor0 = th.cursor;
            let (ti, lat) = if th.is_ra {
                (dep.max(base).max(th.flow).max(cursor0), cfg.ra_op_latency)
            } else {
                let want = dep.max(th.win.oldest(slots)).max(th.flow);
                (issue.alloc(th.core, want), cfg.uop_latency(class))
            };
            th.cursor = cursor0.max(ti);
            let gap = ti.saturating_sub(cursor0.max(base));
            let extra = match faults {
                Some(f) => f.latency_extra(t.0 as usize, ti),
                None => 0,
            };
            let tc = ti + lat + extra;
            th.finish_time = th.finish_time.max(tc);
            if !th.is_ra {
                let retire = tc.max(th.last_retire);
                th.last_retire = retire;
                th.win.replace(slots, retire);
            }
            th.stats.uops += 1;
            (tc, ti, cursor0, gap, extra)
        };
        if gap > 0 {
            self.record_stall(t, Attr::Normal, dep, cursor0, gap, ti);
        }
        if extra > 0 {
            self.emit(EV_FAULT, || TraceEvent::FaultLatency {
                thread: t.0,
                extra,
                at: ti,
            });
        }
        tc
    }

    fn note_ctrl_handler(&mut self, t: Tid, q: QueueId, tag: u32, at: Time) {
        self.emit(EV_CTRL, || TraceEvent::HandlerFire {
            thread: t.0,
            queue: q.0,
            tag,
            at,
        });
    }

    #[inline]
    fn branch(&mut self, t: Tid, site: BranchId, taken: bool, cond_ready: Time) -> Time {
        let ti = self.issue_at(t, cond_ready, Attr::Normal);
        let tc = ti + 1;
        let penalty = self.cfg.mispredict_penalty;
        let th = self.complete(t, tc);
        th.stats.branches += 1;
        if th.is_ra {
            // RA FSM sequencing has no speculation; each branch is a
            // state transition of the accelerator's FSM.
            let flow = th.flow;
            self.emit(EV_RA, || TraceEvent::RaTransition {
                thread: t.0,
                site: site.0,
                taken,
                at: tc,
            });
            return flow;
        }
        if th.predictor.mispredicted(site, taken) {
            th.stats.mispredicts += 1;
            let resume = tc + penalty;
            th.stats.frontend_stall_cycles += penalty;
            th.flow = th.flow.max(resume);
            self.emit(EV_STALL, || TraceEvent::Stall {
                thread: t.0,
                kind: StallKind::Frontend,
                cycles: penalty,
                at: resume,
            });
        }
        self.threads[t.0 as usize].flow
    }

    #[inline]
    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let (v, addr) = self.mem.load_with_addr(array, index)?;
        let (lat, mut ti) = self.mem_access(t, addr, dep);
        let lat = match self.faults {
            Some(f) => {
                let extra = f.latency_extra(t.0 as usize, ti);
                if extra > 0 {
                    self.emit(EV_FAULT, || TraceEvent::FaultLatency {
                        thread: t.0,
                        extra,
                        at: ti,
                    });
                }
                lat + extra
            }
            None => lat,
        };
        if self.threads[t.0 as usize].is_ra {
            ti = self.ra_load_slot(t, ti, lat);
        }
        let tc = ti + lat;
        self.complete(t, tc).stats.loads += 1;
        Ok((v, tc))
    }

    #[inline]
    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<Time, Trap> {
        let addr = self.mem.store_with_addr(array, index, value)?;
        let (_lat, ti) = self.mem_access(t, addr, dep);
        // Stores drain through the store buffer: retirement is fast.
        let tc = ti + 1;
        self.complete(t, tc).stats.stores += 1;
        Ok(tc)
    }

    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let (old, addr) = self.mem.load_with_addr(array, index)?;
        let new = phloem_ir::eval_binop(op, old, value)?;
        self.mem.store(array, index, new)?;
        let (lat, ti) = self.mem_access(t, addr, dep);
        // Atomics pay the access round trip plus locked-RMW overhead
        // (~Skylake `lock xadd` cost).
        let tc = ti + lat + 16;
        let th = self.complete(t, tc);
        th.stats.loads += 1;
        th.stats.stores += 1;
        Ok((old, tc))
    }

    fn try_enq(&mut self, t: Tid, q: QueueId, w: Value, dep: Time) -> Result<Option<Time>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        let (full, squeeze) = match self.faults {
            // A squeeze clamps the *admission* check only; physical
            // slot-recycling timing is untouched (effective cap <=
            // physical cap, so the seed full-check is subsumed).
            Some(f) => {
                let q = &self.queues[qi];
                let cap = f.queue_cap(qi, q.enq_ord(), q.capacity());
                let clamped = if cap < q.capacity() { Some(cap) } else { None };
                (q.len() >= cap, clamped)
            }
            None => (self.queues[qi].is_full(), None),
        };
        if full {
            return Ok(None);
        }
        let slot_free = self.queues[qi].slot_free_time();
        let (cursor, is_ra) = {
            let th = &self.threads[t.0 as usize];
            (th.cursor, th.is_ra)
        };
        let waited = slot_free.saturating_sub(dep.max(cursor));
        let lat = self.op_latency(t, UopClass::QueuePush);
        // RA engines "launch memory requests in parallel but deliver
        // loads in order": the FSM issues the enqueue at its own pace and
        // the entry becomes ready when the data arrives.
        let ti = if is_ra {
            self.issue_at(t, slot_free, Attr::QueueFull)
        } else {
            self.issue_at(t, dep.max(slot_free), Attr::QueueFull)
        };
        let tc = (ti + lat).max(if is_ra { dep } else { 0 });
        let extra = waited.saturating_sub(ti.saturating_sub(cursor));
        let core = {
            let th = self.complete(t, tc);
            th.stats.enqs += 1;
            th.stats.queue_stall_cycles += extra;
            th.stats.queue_full_stall_cycles += extra;
            th.last_progress = th.last_progress.max(tc);
            th.core
        };
        if extra > 0 {
            // Back-pressure wait not already covered by the issue gap:
            // reported as its own QueueFull stall span so event sums
            // reconcile with `queue_full_stall_cycles` exactly.
            self.emit(EV_STALL, || TraceEvent::Stall {
                thread: t.0,
                kind: StallKind::QueueFull,
                cycles: extra,
                at: tc,
            });
        }
        if let Some(cap) = squeeze {
            self.emit(EV_FAULT, || TraceEvent::FaultSqueeze {
                queue: q.0,
                cap: cap as u32,
                at: tc,
            });
        }
        self.last_progress = self.last_progress.max(tc);
        self.queues[qi].push(QueueEntry {
            value: w,
            ready: tc,
            core,
        });
        let occupancy = self.queues[qi].len() as u32;
        self.emit(EV_QUEUE, || TraceEvent::Enq {
            queue: q.0,
            thread: t.0,
            at: tc,
            occupancy,
        });
        if self.wait_flags[qi] & WAIT_EMPTY != 0 {
            self.events.push(QueueEvent::Enq(q, tc));
        }
        Ok(Some(tc))
    }

    fn try_deq(&mut self, t: Tid, q: QueueId, dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        let qi = q.0 as usize;
        if qi >= self.queues.len() {
            return Err(Trap::BadId(format!("queue {}", q.0)));
        }
        if self.queues[qi].is_empty() {
            return Ok(None);
        }
        let (entry_ready, entry_core) = {
            let entry = self.queues[qi].front().expect("nonempty");
            (entry.ready, entry.core)
        };
        let th_core = self.threads[t.0 as usize].core;
        let avail = if entry_core == th_core {
            entry_ready
        } else {
            entry_ready + self.cfg.inter_core_queue_latency
        };
        // A dequeue-stall fault delays delivery of the entry itself (a
        // pure latency addition: it can never turn this successful
        // dequeue into a blocked one).
        let deq_extra = match self.faults {
            Some(f) => f.deq_extra(qi, self.queues[qi].deq_ord()),
            None => 0,
        };
        let avail = avail + deq_extra;
        let lat = self.op_latency(t, UopClass::QueuePop);
        let ti = self.issue_at(t, dep.max(avail.saturating_sub(lat)), Attr::QueueEmpty);
        let tc = (ti + lat).max(avail);
        // (The wait is folded into the Attr::QueueEmpty stall gap.)
        {
            let th = self.complete(t, tc);
            th.stats.deqs += 1;
            th.last_progress = th.last_progress.max(tc);
        }
        self.last_progress = self.last_progress.max(tc);
        if deq_extra > 0 {
            self.emit(EV_FAULT, || TraceEvent::FaultDeqStall {
                queue: q.0,
                extra: deq_extra,
                at: tc,
            });
        }
        let entry = self.queues[qi].pop(tc);
        let occupancy = self.queues[qi].len() as u32;
        self.emit(EV_QUEUE, || TraceEvent::Deq {
            queue: q.0,
            thread: t.0,
            at: tc,
            occupancy,
        });
        if self.wait_flags[qi] & WAIT_FULL != 0 {
            self.events.push(QueueEvent::Deq(q, tc));
        }
        if self.trace_deq {
            eprintln!(
                "deq t{} q{} ti={} avail={} tc={} dep={}",
                t.0, q.0, ti, avail, tc, dep
            );
        }
        Ok(Some((entry.value, tc)))
    }

    fn mem(&self) -> &MemState {
        self.mem
    }

    fn mem_mut(&mut self) -> &mut MemState {
        self.mem
    }
}

/// Builds the tree-walking interpreters for a pipeline's stages (one
/// hardware thread per stage), each with the standard step budget.
pub(crate) fn build_interps<'p>(
    pipeline: &'p phloem_ir::Pipeline,
    params: &[(&str, Value)],
    budget: u64,
) -> Vec<StepInterp<'p>> {
    pipeline
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let bound = phloem_ir::bind_params(&s.program.func, params);
            StepInterp::new(
                StageSpec {
                    func: &s.program.func,
                    handlers: &s.program.handlers,
                },
                Tid(i as u32),
                &bound,
            )
            .with_budget(budget)
        })
        .collect()
}

/// Compiles every stage program of a pipeline to bytecode (for
/// [`phloem_ir::ExecEngine::Flat`]).
///
/// # Errors
/// Propagates compile-time traps (out-of-range ids in unvalidated
/// programs).
pub(crate) fn compile_pipeline(
    pipeline: &phloem_ir::Pipeline,
) -> Result<Vec<phloem_ir::BytecodeProgram>, Trap> {
    pipeline
        .stages
        .iter()
        .map(|s| phloem_ir::compile(&s.program.func, &s.program.handlers))
        .collect()
}

/// Builds the flat bytecode interpreters for a pipeline's stages,
/// mirroring [`build_interps`].
pub(crate) fn build_flat_interps<'p>(
    progs: &'p [phloem_ir::BytecodeProgram],
    pipeline: &phloem_ir::Pipeline,
    params: &[(&str, Value)],
    budget: u64,
) -> Vec<phloem_ir::FlatInterp<'p>> {
    progs
        .iter()
        .zip(&pipeline.stages)
        .enumerate()
        .map(|(i, (p, s))| {
            let bound = phloem_ir::bind_params(&s.program.func, params);
            phloem_ir::FlatInterp::new(p, Tid(i as u32), &bound).with_budget(budget)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> IssueLane {
        IssueLane {
            counts: Vec::new(),
            head: 0,
            base: 100,
        }
    }

    /// The ring and dense layouts are the same first-fit policy: for an
    /// arbitrary allocation sequence (no reclamation), both return the
    /// identical issue times.
    #[test]
    fn ring_and_dense_first_fit_agree() {
        let width = 3u8;
        let mut ring = lane();
        let mut dense = lane();
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..10_000 {
            let want = 100 + next() % 3_000;
            assert_eq!(ring.alloc_ring(width, want), dense.alloc_dense(width, want));
        }
    }

    /// Advancing the ring base past fully-retired cycles never changes
    /// subsequent allocations (requests are always >= the floor).
    #[test]
    fn ring_reclamation_preserves_first_fit() {
        let width = 2u8;
        let mut ring = lane();
        let mut dense = lane();
        let mut s = 0xfeed_f00d_dead_beefu64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut floor = 100u64;
        for round in 0..200 {
            for _ in 0..64 {
                // Monotone-ish floor: requests stay at or above it, as
                // the window-floor invariant guarantees in the world.
                let want = floor + next() % 512;
                assert_eq!(
                    ring.alloc_ring(width, want),
                    dense.alloc_dense(width, want),
                    "diverged in round {round}"
                );
            }
            floor += next() % 300;
            ring.advance(floor);
        }
    }

    /// A floor jump far past the ring's span (a long idle stretch) must
    /// clear the whole calendar, not leave stale counts behind.
    #[test]
    fn ring_survives_a_jump_larger_than_its_capacity() {
        let width = 1u8;
        let mut ring = lane();
        for w in 100..1100 {
            ring.alloc_ring(width, w);
        }
        ring.advance(1_000_000);
        // Every slot must be free again at the new base.
        for w in 0..2048u64 {
            assert_eq!(ring.alloc_ring(width, 1_000_000 + w), 1_000_000 + w);
        }
    }
}
