//! Lock-free shared functional memory for the native backend.
//!
//! Pipeline stages on different OS threads read and write the same
//! arrays. [`SharedMem`] mirrors a [`MemState`] into per-element atomic
//! pairs — a one-byte type tag plus the value's 64 bits — so every
//! access is defined behavior even if a miscompiled pipeline races (the
//! differential harness's whole job is to *find* such pipelines, so the
//! backend must observe a wrong answer, never UB). Correctly decoupled
//! pipelines order conflicting accesses through queue dataflow, which
//! the channel acquire/release pairs turn into happens-before, so
//! `Relaxed` element accesses suffice; the tag and bits of one element
//! are two separate atomics, torn only under races that are already
//! program bugs.
//!
//! Atomic RMWs take a striped mutex (by array/index hash) around the
//! load–op–store sequence, preserving the old-value return semantics of
//! [`phloem_ir::World::atomic_rmw`].
//!
//! Trap parity with [`MemState`] is exact: same variants, same payloads,
//! same check order (`Ctrl`-as-data before bounds on stores).

use phloem_ir::{eval_binop, ArrayId, BinOp, MemState, Trap, Value};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Type tag per element (a `Value` discriminant that survives the trip
/// through atomic storage — `I64(1)` and `F64(1.0)` must round-trip as
/// themselves).
const TAG_I64: u8 = 0;
const TAG_F64: u8 = 1;

/// Stripe count for the RMW locks. Power of two, comfortably above any
/// realistic stage count so concurrent RMWs to different locations
/// rarely collide.
const STRIPES: usize = 64;

struct SharedArray {
    name: String,
    tags: Box<[AtomicU8]>,
    bits: Box<[AtomicU64]>,
}

/// Shared mirror of a [`MemState`], safe for concurrent stage access.
pub struct SharedMem {
    arrays: Vec<SharedArray>,
    stripes: Vec<Mutex<()>>,
}

fn encode(v: Value) -> (u8, u64) {
    match v {
        Value::I64(x) => (TAG_I64, x as u64),
        Value::F64(x) => (TAG_F64, x.to_bits()),
        // Callers trap on Ctrl before encoding; unreachable by contract.
        Value::Ctrl(c) => unreachable!("control value CV({c}) reached shared memory"),
    }
}

fn decode(tag: u8, bits: u64) -> Value {
    match tag {
        TAG_I64 => Value::I64(bits as i64),
        _ => Value::F64(f64::from_bits(bits)),
    }
}

impl SharedMem {
    /// Mirrors `mem` into shared storage.
    pub fn from_mem(mem: &MemState) -> SharedMem {
        let arrays = (0..mem.array_count())
            .map(|i| {
                let a = ArrayId(i as u32);
                let store = mem.array(a);
                let mut tags = Vec::with_capacity(store.len());
                let mut bits = Vec::with_capacity(store.len());
                for &v in mem.values(a) {
                    let (t, b) = encode(v);
                    tags.push(AtomicU8::new(t));
                    bits.push(AtomicU64::new(b));
                }
                SharedArray {
                    name: store.decl.name.clone(),
                    tags: tags.into_boxed_slice(),
                    bits: bits.into_boxed_slice(),
                }
            })
            .collect();
        SharedMem {
            arrays,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Writes the (possibly partial) results back into `mem`. Called
    /// once after the stage threads have joined, so the plain loads
    /// here are quiescent.
    pub fn write_back(&self, mem: &mut MemState) {
        for (i, a) in self.arrays.iter().enumerate() {
            let vals: Vec<Value> = (0..a.bits.len())
                .map(|k| {
                    decode(
                        a.tags[k].load(Ordering::Relaxed),
                        a.bits[k].load(Ordering::Relaxed),
                    )
                })
                .collect();
            mem.set_values(ArrayId(i as u32), vals);
        }
    }

    fn array(&self, a: ArrayId) -> Result<&SharedArray, Trap> {
        self.arrays
            .get(a.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("array {}", a.0)))
    }

    fn check_idx(s: &SharedArray, idx: i64) -> Result<usize, Trap> {
        if idx < 0 || idx as usize >= s.bits.len() {
            return Err(Trap::OutOfBounds(s.name.clone(), idx, s.bits.len()));
        }
        Ok(idx as usize)
    }

    /// Reads `a[idx]`.
    ///
    /// # Errors
    /// Traps on a bad array id or out-of-bounds index.
    pub fn load(&self, a: ArrayId, idx: i64) -> Result<Value, Trap> {
        let s = self.array(a)?;
        let k = Self::check_idx(s, idx)?;
        Ok(decode(
            s.tags[k].load(Ordering::Relaxed),
            s.bits[k].load(Ordering::Relaxed),
        ))
    }

    /// Writes `a[idx] = v`.
    ///
    /// # Errors
    /// Traps on a bad array id, out-of-bounds index, or storing a
    /// control value (checked before bounds, matching [`MemState`]).
    pub fn store(&self, a: ArrayId, idx: i64, v: Value) -> Result<(), Trap> {
        if let Value::Ctrl(c) = v {
            return Err(Trap::CtrlAsData(c));
        }
        let s = self.array(a)?;
        let k = Self::check_idx(s, idx)?;
        let (t, b) = encode(v);
        s.tags[k].store(t, Ordering::Relaxed);
        s.bits[k].store(b, Ordering::Relaxed);
        Ok(())
    }

    /// Hints the hardware prefetcher at `a[idx]` (RA helper threads call
    /// this ahead of their base-array access stream). Out-of-range
    /// indices are ignored; correctness-neutral everywhere.
    #[inline]
    pub fn prefetch(&self, a: ArrayId, idx: i64) {
        #[cfg(target_arch = "x86_64")]
        if let Some(s) = self.arrays.get(a.0 as usize) {
            if idx >= 0 && (idx as usize) < s.bits.len() {
                // SAFETY: the pointer is in-bounds and prefetch has no
                // observable effect on memory.
                unsafe {
                    std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                        s.bits[idx as usize].as_ptr() as *const i8,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (a, idx);
    }

    /// Atomically applies `old op v` to `a[idx]`, returning the old
    /// value. Serialized through a striped lock so concurrent RMWs to
    /// the same location are linearizable.
    ///
    /// # Errors
    /// Traps like [`Self::load`]/[`Self::store`], plus arithmetic traps
    /// from the operation itself.
    pub fn rmw(&self, op: BinOp, a: ArrayId, idx: i64, v: Value) -> Result<Value, Trap> {
        let s = self.array(a)?;
        let k = Self::check_idx(s, idx)?;
        let stripe = (a.0 as usize).wrapping_mul(31).wrapping_add(k) % STRIPES;
        let _g = self.stripes[stripe]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let old = decode(
            s.tags[k].load(Ordering::Relaxed),
            s.bits[k].load(Ordering::Relaxed),
        );
        let new = eval_binop(op, old, v)?;
        if let Value::Ctrl(c) = new {
            return Err(Trap::CtrlAsData(c));
        }
        let (t, b) = encode(new);
        s.tags[k].store(t, Ordering::Relaxed);
        s.bits[k].store(b, Ordering::Relaxed);
        Ok(old)
    }
}
