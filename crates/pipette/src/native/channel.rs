//! Bounded channels backing hardware queues in the native backend.
//!
//! Each hardware queue of a pipeline lowers to one bounded channel
//! carrying [`Value`] words — data and in-band control values travel the
//! same channel, exactly as they share the hardware FIFO in the
//! simulator. The buffer implementation is pluggable behind
//! [`ChannelBackend`]:
//!
//! * [`ChannelKind::Mpsc`] — the std library's `sync_channel`, wrapped;
//!   the conservative reference backend.
//! * [`ChannelKind::Ring`] — a FastFlow-style bounded SPSC ring of
//!   `capacity` slots with monotonic head/tail counters (acquire/release
//!   pairs on the counters order the slot accesses).
//! * [`ChannelKind::Hybrid`] — the ring plus a short bounded spin before
//!   reporting `Full`/`Empty`, trading a few cycles of busy-wait for
//!   fewer trips through the runtime's park path.
//!
//! The [`Sender`]/[`Receiver`] endpoints own the lifecycle bookkeeping
//! the backends don't: sender counting (so a drained channel whose
//! producers are all gone reports `Disconnected`, not `Empty`) and
//! receiver liveness (so producers feeding a dead consumer learn about
//! it instead of filling a buffer nobody drains). The validator
//! guarantees every queue has exactly one consumer, so `Receiver` is
//! unique per channel; fan-in queues (`EnqSel`/control broadcast) clone
//! the `Sender`, and a send automatically serializes through a mutex
//! whenever more than one `Sender` is live.

use phloem_ir::Value;
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Which bounded-buffer implementation a channel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// `std::sync::mpsc::sync_channel`, wrapped.
    Mpsc,
    /// Custom SPSC ring buffer (FastFlow-style).
    Ring,
    /// The ring with a bounded spin before reporting full/empty.
    Hybrid,
}

impl ChannelKind {
    /// All backends, for differential sweeps.
    pub const ALL: [ChannelKind; 3] = [ChannelKind::Mpsc, ChannelKind::Ring, ChannelKind::Hybrid];

    /// Stable lowercase label (CLI flags, JSON annotations).
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::Mpsc => "mpsc",
            ChannelKind::Ring => "ring",
            ChannelKind::Hybrid => "hybrid",
        }
    }

    /// Parses a [`Self::label`] back into a kind.
    pub fn parse(s: &str) -> Option<ChannelKind> {
        ChannelKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Construction errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// Bounded channels need at least one slot (a zero-capacity
    /// rendezvous has no hardware analogue here — the simulator's queues
    /// are at least one entry deep).
    ZeroCapacity,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::ZeroCapacity => write!(f, "channel capacity must be at least 1"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Why a `try_send` did not enqueue. The value is handed back so blocked
/// producers can retry without re-evaluating it.
#[derive(Debug, PartialEq)]
pub enum TrySendError {
    /// The buffer is full; retry after the consumer drains.
    Full(Value),
    /// The receiver was dropped; no send can ever succeed again.
    Disconnected(Value),
}

/// Why a `try_recv` returned no value.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is empty but senders are still live; retry later.
    Empty,
    /// The buffer is empty and every sender was dropped: the channel is
    /// drained for good.
    Disconnected,
}

/// A pluggable bounded FIFO buffer of [`Value`] words.
///
/// Implementations provide only the buffer: internally synchronized for
/// the single-producer/single-consumer case, with *no* lifecycle
/// tracking (the [`Sender`]/[`Receiver`] endpoints layer that on top).
/// Multi-producer use is serialized by the endpoints, never by the
/// backend.
pub trait ChannelBackend: Send + Sync {
    /// Attempts to push; hands `v` back when the buffer is full.
    ///
    /// # Errors
    /// Returns `Err(v)` when the buffer is full.
    fn try_push(&self, v: Value) -> Result<(), Value>;

    /// Attempts to pop; `None` when the buffer is empty.
    fn try_pop(&self) -> Option<Value>;
}

/// [`ChannelKind::Mpsc`]: the std sync channel behind mutexed endpoints
/// (the backend trait is `&self`-shared, `mpsc::Receiver` is not
/// `Sync`). Contention on these mutexes is bounded by the channel's own
/// SPSC-at-steady-state usage.
struct MpscBackend {
    tx: Mutex<mpsc::SyncSender<Value>>,
    rx: Mutex<mpsc::Receiver<Value>>,
}

impl ChannelBackend for MpscBackend {
    fn try_push(&self, v: Value) -> Result<(), Value> {
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        match tx.try_send(v) {
            Ok(()) => Ok(()),
            // Disconnection cannot happen: the backend owns both ends for
            // its whole life. Treat it like Full defensively.
            Err(mpsc::TrySendError::Full(v) | mpsc::TrySendError::Disconnected(v)) => Err(v),
        }
    }

    fn try_pop(&self) -> Option<Value> {
        let rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
        rx.try_recv().ok()
    }
}

/// [`ChannelKind::Ring`]: a bounded SPSC ring with monotonically
/// increasing head/tail counters (never wrapped, so full/empty are
/// `tail - head == cap` / `tail == head` with no lap ambiguity).
///
/// The release-store on `tail` after writing a slot pairs with the
/// consumer's acquire-load of `tail` before reading it; symmetrically
/// for `head` when a slot is vacated. This is the classic Lamport queue
/// and is correct for exactly one concurrent pusher and one concurrent
/// popper — which the endpoints enforce.
struct RingBackend {
    slots: Box<[UnsafeCell<MaybeUninit<Value>>]>,
    /// Next index to pop (only the consumer advances it).
    head: AtomicU64,
    /// Next index to push (only the producer advances it).
    tail: AtomicU64,
}

// SAFETY: slot accesses are ordered by the acquire/release pairs on
// `head`/`tail`; a slot is touched by at most one thread at a time
// (producer while reserved, consumer after publication).
unsafe impl Send for RingBackend {}
unsafe impl Sync for RingBackend {}

impl RingBackend {
    fn new(capacity: usize) -> RingBackend {
        RingBackend {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }
}

impl ChannelBackend for RingBackend {
    fn try_push(&self, v: Value) -> Result<(), Value> {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if t - h == self.slots.len() as u64 {
            return Err(v);
        }
        let slot = &self.slots[(t % self.slots.len() as u64) as usize];
        // SAFETY: `t < h + cap` means the consumer has not reached this
        // slot's lap; only this (sole) producer writes it.
        unsafe { (*slot.get()).write(v) };
        self.tail.store(t + 1, Ordering::Release);
        Ok(())
    }

    fn try_pop(&self) -> Option<Value> {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if t == h {
            return None;
        }
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // SAFETY: `h < t` means the producer published this slot; only
        // this (sole) consumer reads it. `Value` is `Copy`, so no drop
        // obligations remain in the slot.
        let v = unsafe { (*slot.get()).assume_init_read() };
        self.head.store(h + 1, Ordering::Release);
        Some(v)
    }
}

/// Bounded spin length for [`ChannelKind::Hybrid`]. Short enough to be
/// harmless on a single-core host (where spinning cannot help), long
/// enough to ride out a consumer that is one context switch away on a
/// multicore one.
const HYBRID_SPINS: usize = 64;

/// [`ChannelKind::Hybrid`]: the ring plus a bounded spin before giving
/// up, so transient full/empty blips never reach the park path.
struct HybridBackend {
    ring: RingBackend,
}

impl ChannelBackend for HybridBackend {
    fn try_push(&self, mut v: Value) -> Result<(), Value> {
        for _ in 0..HYBRID_SPINS {
            match self.ring.try_push(v) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    v = back;
                    std::hint::spin_loop();
                }
            }
        }
        self.ring.try_push(v)
    }

    fn try_pop(&self) -> Option<Value> {
        for _ in 0..HYBRID_SPINS {
            if let Some(v) = self.ring.try_pop() {
                return Some(v);
            }
            std::hint::spin_loop();
        }
        self.ring.try_pop()
    }
}

/// Shared channel state: the buffer plus lifecycle bookkeeping.
struct Core {
    backend: Box<dyn ChannelBackend>,
    /// Live `Sender` clones. When it hits zero the channel can never
    /// gain another value: `Empty` hardens into `Disconnected`.
    senders: AtomicUsize,
    /// Cleared when the `Receiver` drops; producers then get
    /// `Disconnected` instead of filling a buffer nobody drains.
    receiver_alive: AtomicBool,
    /// Serializes sends while more than one `Sender` is live (fan-in
    /// queues). Single-producer channels never touch it.
    send_lock: Mutex<()>,
}

/// The producing endpoint. Clone it once per producer stage; sends
/// serialize automatically while clones coexist and go lock-free again
/// once the channel is back to a single producer.
///
/// `Sender` is `Send` but intentionally not `Sync`: the lock-free path
/// is only sound when each live clone is driven by one thread.
pub struct Sender {
    core: Arc<Core>,
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl Sender {
    /// Attempts to enqueue `v`.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when the buffer is full,
    /// [`TrySendError::Disconnected`] when the receiver is gone; both
    /// hand the value back.
    pub fn try_send(&self, v: Value) -> Result<(), TrySendError> {
        if !self.core.receiver_alive.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(v));
        }
        let res = if self.core.senders.load(Ordering::Acquire) > 1 {
            let _g = self
                .core
                .send_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.core.backend.try_push(v)
        } else {
            self.core.backend.try_push(v)
        };
        res.map_err(TrySendError::Full)
    }
}

impl Clone for Sender {
    fn clone(&self) -> Sender {
        self.core.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            core: Arc::clone(&self.core),
            _not_sync: std::marker::PhantomData,
        }
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        self.core.senders.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The consuming endpoint — unique per channel, matching the
/// validator's one-consumer-per-queue discipline. `Send` but not
/// `Sync`, like [`Sender`].
pub struct Receiver {
    core: Arc<Core>,
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl Receiver {
    /// Attempts to dequeue.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] while producers are live,
    /// [`TryRecvError::Disconnected`] once the channel is drained and
    /// the last sender dropped.
    pub fn try_recv(&self) -> Result<Value, TryRecvError> {
        if let Some(v) = self.core.backend.try_pop() {
            return Ok(v);
        }
        if self.core.senders.load(Ordering::Acquire) == 0 {
            // A value pushed just before the last sender dropped must
            // still drain: re-check the buffer *after* observing zero.
            return match self.core.backend.try_pop() {
                Some(v) => Ok(v),
                None => Err(TryRecvError::Disconnected),
            };
        }
        Err(TryRecvError::Empty)
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        self.core.receiver_alive.store(false, Ordering::Release);
    }
}

/// Creates a bounded channel of the given kind and capacity.
///
/// # Errors
/// [`ChannelError::ZeroCapacity`] when `capacity == 0`.
pub fn channel(kind: ChannelKind, capacity: usize) -> Result<(Sender, Receiver), ChannelError> {
    if capacity == 0 {
        return Err(ChannelError::ZeroCapacity);
    }
    let backend: Box<dyn ChannelBackend> = match kind {
        ChannelKind::Mpsc => {
            let (tx, rx) = mpsc::sync_channel(capacity);
            Box::new(MpscBackend {
                tx: Mutex::new(tx),
                rx: Mutex::new(rx),
            })
        }
        ChannelKind::Ring => Box::new(RingBackend::new(capacity)),
        ChannelKind::Hybrid => Box::new(HybridBackend {
            ring: RingBackend::new(capacity),
        }),
    };
    let core = Arc::new(Core {
        backend,
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
        send_lock: Mutex::new(()),
    });
    Ok((
        Sender {
            core: Arc::clone(&core),
            _not_sync: std::marker::PhantomData,
        },
        Receiver {
            core,
            _not_sync: std::marker::PhantomData,
        },
    ))
}
