//! Native execution backend: Phloem pipelines on real OS threads.
//!
//! The simulator predicts what a Pipette machine *would* do; this
//! backend actually runs the compiled pipeline on the host, mapping
//!
//! * each pipeline **stage** (compute and RA alike — RAs are stage
//!   programs too) to an OS thread from a [`phloem_pool::Pool`] fleet,
//! * each **hardware queue** to a bounded channel (pluggable behind
//!   [`ChannelBackend`]; see [`ChannelKind`]), wired from the IR's
//!   [`phloem_ir::queue_topology`] so single-producer queues take the
//!   lock-free SPSC path,
//! * **RA** stages to prefetch-hinted threads (their base-array loads
//!   issue a hardware prefetch a few elements ahead),
//! * **control values** to in-band messages on the same channels — a
//!   `Value::Ctrl` word travels the FIFO like any datum and dispatches
//!   the consumer's handlers through the shared [`StepInterp`], so the
//!   CV protocol is byte-identical to the simulator's.
//!
//! Stages step through the same [`StepInterp`] as the interpreter and
//! simulator against a [`NativeWorld`] that backs loads/stores with
//! [`SharedMem`] and queue ops with the channels. Determinism needs no
//! cycle pins: every queue has one consumer, data queues have one
//! producer (FIFO order is program order), and stages are deterministic
//! state machines — so the value *sequence* each stage observes is
//! schedule-independent, and final memory equals the serial
//! interpreter's whenever the pipeline is correctly decoupled. The
//! differential harness (`tests/native_equivalence.rs`, `fuzzdiff
//! --native`) exists to hunt the cases where it does not.
//!
//! Blocked stages park on a [`Hub`] epoch (the same protocol as the
//! pool's idle workers): queue progress bumps the epoch and wakes
//! parked workers; a full park timeout with every live worker parked
//! and the epoch unchanged is a deadlock, reported as
//! [`Trap::Deadlock`] just like the interpreter's scheduler loop.

pub mod channel;
pub mod shared_mem;

pub use channel::{
    channel, ChannelBackend, ChannelError, ChannelKind, Receiver, Sender, TryRecvError,
    TrySendError,
};
pub use shared_mem::SharedMem;

use phloem_ir::{
    bind_params, queue_topology, ArrayId, BinOp, BlockReason, BranchId, MemState, Pipeline,
    QueueId, StageKind, StageSpec, StepInterp, StepResult, Tid, Time, Trap, UopClass, Value, World,
};
use phloem_ir::{OpCounts, RaMode};
use phloem_pool::{CancelToken, Pool};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which execution substrate a [`crate::Session`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecBackend {
    /// The cycle-level simulator (default).
    Sim,
    /// Real OS threads and bounded channels on the host.
    Native(NativeConfig),
}

/// Configuration of the native backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NativeConfig {
    /// Channel implementation backing the hardware queues.
    pub channel: ChannelKind,
    /// Worker threads. Stages are assigned round-robin (`stage %
    /// threads`); `0` means one thread per stage, the paper's model.
    pub threads: usize,
}

impl Default for NativeConfig {
    fn default() -> NativeConfig {
        NativeConfig {
            channel: ChannelKind::Mpsc,
            threads: 0,
        }
    }
}

thread_local! {
    /// Ambient backend stack for [`BackendScope`], mirroring
    /// [`crate::CancelScope`]: sessions created while a scope is live
    /// inherit its backend, so the benchsuite's `run()` entry points
    /// (which construct sessions internally) route to the native
    /// backend with no signature changes.
    static AMBIENT_BACKEND: RefCell<Vec<ExecBackend>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard installing an ambient [`ExecBackend`] for the current
/// thread; every [`crate::Session`] created while the guard is live
/// (and not overridden via [`crate::Session::set_backend`]) uses it.
/// Scopes nest; the innermost wins.
pub struct BackendScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl BackendScope {
    /// Installs `backend` until the returned guard drops.
    pub fn enter(backend: ExecBackend) -> BackendScope {
        AMBIENT_BACKEND.with(|s| s.borrow_mut().push(backend));
        BackendScope {
            _not_send: std::marker::PhantomData,
        }
    }

    /// The innermost ambient backend, if a scope is live on this thread.
    pub fn current() -> Option<ExecBackend> {
        AMBIENT_BACKEND.with(|s| s.borrow().last().copied())
    }
}

impl Drop for BackendScope {
    fn drop(&mut self) {
        AMBIENT_BACKEND.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Atoms per stage slice before round-robining to the worker's next
/// stage (matches the interpreter scheduler's slice).
const SLICE: u32 = 256;

/// Park timeout: bounds deadlock-detection and cancellation-poll
/// latency. Progress wakes parked workers immediately; this only fires
/// when nothing happens at all.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// How many elements ahead an RA's base-array loads prefetch.
const RA_PREFETCH_DIST: i64 = 8;

/// Result of one native pipeline invocation.
#[derive(Debug)]
pub struct NativeRun {
    /// Wall-clock nanoseconds the invocation took (at least 1).
    pub wall_nanos: u64,
    /// Committed dynamic-op counters, one slot per stage.
    pub counts: Vec<OpCounts>,
}

/// Rendezvous point for the stage workers: progress epoch, park/wake,
/// first-trap capture, and liveness counters.
struct Hub {
    /// Bumped on every committed enq/deq and stage completion. SeqCst
    /// pairs with `parked` (Dekker-style) so a producer that sees no
    /// parked worker is guaranteed the would-be parker sees its bump.
    epoch: AtomicU64,
    /// Workers currently inside [`Hub::park`].
    parked: AtomicUsize,
    /// Workers that have not yet exited.
    live: AtomicUsize,
    /// Unfinished compute stages; the run is done when it reaches zero
    /// (RAs may stay blocked, exactly like the interpreter scheduler).
    compute_remaining: AtomicUsize,
    abort: AtomicBool,
    trap: Mutex<Option<Trap>>,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Hub {
    fn new(workers: usize, compute: usize) -> Hub {
        Hub {
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            live: AtomicUsize::new(workers),
            compute_remaining: AtomicUsize::new(compute),
            abort: AtomicBool::new(false),
            trap: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn epoch_now(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Records progress and wakes parked workers. The wake is skipped
    /// when nobody is parked; the SeqCst epoch bump before the `parked`
    /// read keeps that skip free of lost wakeups (a concurrent parker
    /// re-reads the epoch under the lock and sees the bump).
    fn progress(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    fn done(&self) -> bool {
        self.compute_remaining.load(Ordering::SeqCst) == 0
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Parks until the epoch moves past `seen`, an abort, or the
    /// timeout. Returns `(woke_by_progress, every_live_worker_parked)` —
    /// the second component sampled at timeout, while this worker is
    /// still counted parked, is the deadlock predicate.
    fn park(&self, seen: u64) -> (bool, bool) {
        self.parked.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + PARK_TIMEOUT;
        let mut woke = true;
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.epoch.load(Ordering::SeqCst) == seen && !self.aborted() {
            let now = Instant::now();
            if now >= deadline {
                woke = false;
                break;
            }
            let (ng, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        drop(g);
        let all_parked = self.parked.load(Ordering::SeqCst) == self.live.load(Ordering::SeqCst);
        self.parked.fetch_sub(1, Ordering::SeqCst);
        (woke, all_parked)
    }

    /// Records the first trap and aborts everyone.
    fn fail(&self, t: Trap) {
        let mut g = self.trap.lock().unwrap_or_else(|e| e.into_inner());
        if g.is_none() {
            *g = Some(t);
        }
        drop(g);
        self.abort.store(true, Ordering::SeqCst);
        self.progress();
    }

    fn finish_compute(&self) {
        self.compute_remaining.fetch_sub(1, Ordering::SeqCst);
        self.progress();
    }

    fn worker_exit(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.progress();
    }
}

/// Aborts the fleet if a stage worker unwinds (the pool contains the
/// panic to its slot; without this, the surviving workers would block
/// forever on the dead worker's channels).
struct PanicGuard<'a> {
    hub: &'a Hub,
    stage_names: Vec<String>,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.hub.fail(Trap::Malformed(format!(
                "native stage worker panicked (stages {:?})",
                self.stage_names
            )));
        }
    }
}

/// Per-stage channel endpoints, handed to the owning worker at startup.
struct StageEndpoints {
    /// Sender per queue id this stage enqueues into.
    senders: Vec<Option<Sender>>,
    /// Receiver per queue id this stage dequeues from.
    receivers: Vec<Option<Receiver>>,
}

/// The native [`World`]: shared memory + channels, no timing. All
/// completion times are 0 — wall-clock is measured around the whole
/// invocation, never per operation.
struct NativeWorld<'a> {
    mem: &'a SharedMem,
    hub: &'a Hub,
    endpoints: StageEndpoints,
    counts: OpCounts,
    /// RA base array: loads from it prefetch ahead.
    ra_base: Option<ArrayId>,
    /// Dummy for the `World::mem` accessors, which the shared stepping
    /// interpreter never calls (memory flows through `load`/`store`).
    scratch: MemState,
}

impl NativeWorld<'_> {
    fn sender(&self, q: QueueId) -> Result<&Sender, Trap> {
        self.endpoints
            .senders
            .get(q.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))
    }

    fn receiver(&self, q: QueueId) -> Result<&Receiver, Trap> {
        self.endpoints
            .receivers
            .get(q.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))
    }
}

impl World for NativeWorld<'_> {
    fn uop(&mut self, _t: Tid, _class: UopClass, _dep: Time) -> Time {
        self.counts.uops += 1;
        0
    }

    fn branch(&mut self, _t: Tid, _site: BranchId, _taken: bool, _cond_ready: Time) -> Time {
        self.counts.branches += 1;
        0
    }

    fn load(
        &mut self,
        _t: Tid,
        array: ArrayId,
        index: i64,
        _dep: Time,
    ) -> Result<(Value, Time), Trap> {
        self.counts.loads += 1;
        if self.ra_base == Some(array) {
            self.mem.prefetch(array, index + RA_PREFETCH_DIST);
        }
        Ok((self.mem.load(array, index)?, 0))
    }

    fn store(
        &mut self,
        _t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        _dep: Time,
    ) -> Result<Time, Trap> {
        self.counts.stores += 1;
        self.mem.store(array, index, value)?;
        Ok(0)
    }

    fn atomic_rmw(
        &mut self,
        _t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        _dep: Time,
    ) -> Result<(Value, Time), Trap> {
        self.counts.atomics += 1;
        Ok((self.mem.rmw(op, array, index, value)?, 0))
    }

    fn try_enq(&mut self, _t: Tid, q: QueueId, w: Value, _dep: Time) -> Result<Option<Time>, Trap> {
        match self.sender(q)?.try_send(w) {
            Ok(()) => {
                self.counts.enqs += 1;
                self.hub.progress();
                Ok(Some(0))
            }
            // A dead consumer means this enqueue can never complete; the
            // producer blocks forever and the deadlock detector reports
            // it, matching the interpreter's behaviour for the same
            // pipeline shape.
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => Ok(None),
        }
    }

    fn try_deq(&mut self, _t: Tid, q: QueueId, _dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        match self.receiver(q)?.try_recv() {
            Ok(v) => {
                self.counts.deqs += 1;
                self.hub.progress();
                Ok(Some((v, 0)))
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => Ok(None),
        }
    }

    fn mem(&self) -> &MemState {
        &self.scratch
    }

    fn mem_mut(&mut self) -> &mut MemState {
        &mut self.scratch
    }
}

/// Builds one channel per referenced queue and distributes the
/// endpoints to the stages the topology names.
fn build_channels(
    pipeline: &Pipeline,
    kind: ChannelKind,
    capacity: usize,
) -> Result<Vec<StageEndpoints>, Trap> {
    let nstages = pipeline.stages.len();
    let nq = pipeline.num_queues as usize;
    let mut eps: Vec<StageEndpoints> = (0..nstages)
        .map(|_| StageEndpoints {
            senders: (0..nq).map(|_| None).collect(),
            receivers: (0..nq).map(|_| None).collect(),
        })
        .collect();
    for q in queue_topology(pipeline) {
        let qi = q.queue.0 as usize;
        if qi >= nq {
            return Err(Trap::BadId(format!("queue {}", q.queue.0)));
        }
        let (tx, rx) = channel(kind, capacity.max(1))
            .map_err(|e| Trap::Malformed(format!("queue {}: {e}", q.queue.0)))?;
        if let Some(c) = q.consumer {
            eps[c].receivers[qi] = Some(rx);
        }
        let mut tx = Some(tx);
        for (i, &p) in q.producers.iter().enumerate() {
            let s = if i + 1 == q.producers.len() {
                tx.take().expect("sender handed out once")
            } else {
                tx.as_ref().expect("sender still held").clone()
            };
            eps[p].senders[qi] = Some(s);
        }
        // A queue with no producers keeps `tx` alive here only until
        // this iteration ends; its receiver then reports Disconnected,
        // which the runtime treats as blocked-forever (deadlock parity
        // with the interpreter). Validation rejects such pipelines
        // before we ever get here.
    }
    Ok(eps)
}

/// Runs one pipeline invocation natively. `mem` is mirrored into shared
/// storage, the stages run to completion on a thread fleet, and the
/// results (partial on a trap) are written back.
///
/// # Errors
/// Traps on runtime errors, deadlock, or cancellation — the same
/// failure surface as the simulator.
pub fn run_native(
    pipeline: &Pipeline,
    mem: &mut MemState,
    params: &[(&str, Value)],
    cfg: &NativeConfig,
    queue_capacity: usize,
    cancel: Option<&CancelToken>,
) -> Result<NativeRun, Trap> {
    let nstages = pipeline.stages.len();
    if nstages == 0 {
        return Ok(NativeRun {
            wall_nanos: 1,
            counts: Vec::new(),
        });
    }
    let threads = if cfg.threads == 0 {
        nstages
    } else {
        cfg.threads
    };
    let nworkers = threads.min(nstages).max(1);
    let is_compute: Vec<bool> = pipeline
        .stages
        .iter()
        .map(|s| matches!(s.kind, StageKind::Compute))
        .collect();
    let ncompute = is_compute.iter().filter(|&&c| c).count();

    let endpoints = build_channels(pipeline, cfg.channel, queue_capacity)?;
    let slots: Vec<Mutex<Option<StageEndpoints>>> =
        endpoints.into_iter().map(|e| Mutex::new(Some(e))).collect();
    let shared = SharedMem::from_mem(mem);
    let hub = Hub::new(nworkers, ncompute);

    let start = Instant::now();
    let pool = Pool::new(nworkers);
    let results = pool.run(nworkers, |widx| {
        // Stage i runs on worker i % nworkers.
        let mine: Vec<usize> = (0..nstages).filter(|i| i % nworkers == widx).collect();
        let _guard = PanicGuard {
            hub: &hub,
            stage_names: mine
                .iter()
                .map(|&i| pipeline.stages[i].program.func.name.clone())
                .collect(),
        };
        let mut interps: Vec<StepInterp> = Vec::with_capacity(mine.len());
        let mut worlds: Vec<NativeWorld> = Vec::with_capacity(mine.len());
        for &i in &mine {
            let s = &pipeline.stages[i];
            let bound = bind_params(&s.program.func, params);
            interps.push(
                StepInterp::new(
                    StageSpec {
                        func: &s.program.func,
                        handlers: &s.program.handlers,
                    },
                    Tid(i as u32),
                    &bound,
                )
                .with_budget(crate::machine::DEFAULT_BUDGET),
            );
            let ra_base = match &s.kind {
                StageKind::Ra(ra) if matches!(ra.mode, RaMode::Indirect | RaMode::Scan) => {
                    Some(ra.base)
                }
                _ => None,
            };
            worlds.push(NativeWorld {
                mem: &shared,
                hub: &hub,
                endpoints: slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each stage's endpoints are claimed once"),
                counts: OpCounts::default(),
                ra_base,
                scratch: MemState::new(),
            });
        }
        let mut finished = vec![false; mine.len()];
        'run: loop {
            if hub.aborted() || hub.done() {
                break;
            }
            if let Some(tok) = cancel {
                if tok.is_set() || tok.poll_expired() {
                    hub.fail(Trap::Cancelled {
                        cycle: 0,
                        detail: format!("native backend: {}", tok.reason()),
                    });
                    break;
                }
            }
            let seen = hub.epoch_now();
            let mut progressed = false;
            let mut all_done = true;
            for k in 0..mine.len() {
                if finished[k] {
                    continue;
                }
                all_done = false;
                match interps[k].run_slice(&mut worlds[k], SLICE) {
                    Ok((n, res)) => {
                        if n > 0 {
                            progressed = true;
                        }
                        match res {
                            StepResult::Finished => {
                                finished[k] = true;
                                if is_compute[mine[k]] {
                                    hub.finish_compute();
                                } else {
                                    hub.progress();
                                }
                            }
                            StepResult::Blocked(BlockReason::Budget) | StepResult::Progress => {
                                progressed = true;
                            }
                            StepResult::Blocked(_) => {}
                        }
                    }
                    Err(t) => {
                        hub.fail(t);
                        break 'run;
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed && !hub.done() && !hub.aborted() {
                let (woke, all_parked) = hub.park(seen);
                if !woke && all_parked && !hub.done() && !hub.aborted() {
                    let blocked: Vec<String> = mine
                        .iter()
                        .zip(&finished)
                        .filter(|(_, &f)| !f)
                        .map(|(&i, _)| pipeline.stages[i].program.func.name.clone())
                        .collect();
                    hub.fail(Trap::Deadlock(format!(
                        "stages blocked with no progress: {blocked:?}"
                    )));
                    break;
                }
            }
        }
        hub.worker_exit();
        let counts: Vec<(usize, OpCounts)> = mine
            .iter()
            .zip(&worlds)
            .map(|(&i, w)| (i, w.counts))
            .collect();
        counts
    });
    let wall_nanos = (start.elapsed().as_nanos() as u64).max(1);

    shared.write_back(mem);
    if let Some(t) = hub.trap.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(t);
    }
    let mut counts = vec![OpCounts::default(); nstages];
    for r in results {
        match r {
            Ok(per_stage) => {
                for (i, c) in per_stage {
                    counts[i] = c;
                }
            }
            Err(p) => {
                // The panic guard should already have recorded a trap;
                // this is the backstop if the guard itself was skipped.
                return Err(Trap::Malformed(format!(
                    "native stage worker panicked: {p}"
                )));
            }
        }
    }
    Ok(NativeRun { wall_nanos, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{ArrayDecl, CtrlHandler, Expr, FunctionBuilder, HandlerEnd, StageProgram};

    const DONE: u32 = 0;

    /// Two-stage producer/consumer pipeline: stage 0 enqueues a[i] for
    /// i in 0..n plus DONE; stage 1 accumulates into out[0].
    fn pc_pipeline() -> (Pipeline, MemState) {
        let q = QueueId(0);
        let mut p = Pipeline::new("pc");

        let mut s0 = FunctionBuilder::new("produce");
        let a = s0.array_i64("a");
        let _out = s0.array_i64("out");
        let i = s0.var_i64("i");
        s0.for_loop(i, Expr::i64(0), Expr::i64(64), |f| {
            let l = f.load(a, Expr::var(i));
            f.enq(q, l);
        });
        s0.enq_ctrl(q, DONE);
        p.add_stage(StageProgram::plain(s0.build()), 0);

        let mut s1 = FunctionBuilder::new("consume");
        let _a = s1.array_i64("a");
        let out = s1.array_i64("out");
        let v = s1.var_i64("v");
        let acc = s1.var_i64("acc");
        s1.while_true(|f| {
            f.deq(v, q);
            f.assign(acc, Expr::add(Expr::var(acc), Expr::var(v)));
        });
        s1.store(out, Expr::i64(0), Expr::var(acc));
        let handlers = vec![CtrlHandler {
            queue: q,
            ctrl: Some(DONE),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        }];
        p.add_stage(
            StageProgram {
                func: s1.build(),
                handlers,
            },
            0,
        );

        let mut mem = MemState::new();
        mem.alloc_i64(ArrayDecl::i64("a"), 0..64);
        mem.alloc(ArrayDecl::i64("out"), 1);
        (p, mem)
    }

    #[test]
    fn producer_consumer_runs_on_every_channel_kind() {
        for kind in ChannelKind::ALL {
            for threads in [1, 2] {
                let (p, mut mem) = pc_pipeline();
                let cfg = NativeConfig {
                    channel: kind,
                    threads,
                };
                let run = run_native(&p, &mut mem, &[], &cfg, 4, None).unwrap();
                assert_eq!(
                    mem.i64_vec(ArrayId(1)),
                    vec![(0..64).sum::<i64>()],
                    "kind={kind} threads={threads}"
                );
                assert!(run.wall_nanos >= 1);
                assert_eq!(run.counts[0].enqs, 65, "64 data + DONE");
                assert_eq!(run.counts[1].deqs, 65);
            }
        }
    }

    #[test]
    fn a_stuck_pipeline_reports_deadlock() {
        // The consumer never sees DONE: producer enqueues one value and
        // finishes; the consumer's while-true blocks forever.
        let q = QueueId(0);
        let mut p = Pipeline::new("stuck");
        let mut s0 = FunctionBuilder::new("one");
        s0.enq(q, Expr::i64(7));
        p.add_stage(StageProgram::plain(s0.build()), 0);
        let mut s1 = FunctionBuilder::new("forever");
        let v = s1.var_i64("v");
        s1.while_true(|f| {
            f.deq(v, q);
        });
        p.add_stage(StageProgram::plain(s1.build()), 0);
        let mut mem = MemState::new();
        let err = run_native(&p, &mut mem, &[], &NativeConfig::default(), 4, None).unwrap_err();
        assert!(
            matches!(err, Trap::Deadlock(ref d) if d.contains("forever")),
            "{err:?}"
        );
    }

    #[test]
    fn cancellation_stops_a_native_run() {
        let q = QueueId(0);
        let mut p = Pipeline::new("cancel");
        let mut s1 = FunctionBuilder::new("forever");
        let v = s1.var_i64("v");
        s1.while_true(|f| {
            f.deq(v, q);
        });
        p.add_stage(StageProgram::plain(s1.build()), 0);
        let mut s0 = FunctionBuilder::new("slow");
        s0.enq(q, Expr::i64(1));
        p.add_stage(StageProgram::plain(s0.build()), 0);
        let mut mem = MemState::new();
        let token = CancelToken::new();
        token.cancel("test says stop");
        let err =
            run_native(&p, &mut mem, &[], &NativeConfig::default(), 4, Some(&token)).unwrap_err();
        assert!(
            matches!(err, Trap::Cancelled { ref detail, .. } if detail.contains("test says stop")),
            "{err:?}"
        );
    }
}
