//! Per-event energy model.
//!
//! Replaces the paper's McPAT + Micron DDR3L models with an event-count
//! model whose per-event constants sit in the ratios McPAT reports for a
//! 22 nm out-of-order core. Fig. 11 compares *relative* energy across
//! program variants, which depends on event mixes and runtime — both of
//! which this model captures.

use serde::{Deserialize, Serialize};

/// Energy constants in picojoules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per issued micro-op (rename/schedule/execute/retire).
    pub uop_pj: f64,
    /// Per conditional branch (adds predictor + possible flush cost).
    pub branch_pj: f64,
    /// Extra energy for a misprediction flush.
    pub mispredict_pj: f64,
    /// Per L1 access.
    pub l1_pj: f64,
    /// Per L2 access.
    pub l2_pj: f64,
    /// Per L3 access.
    pub l3_pj: f64,
    /// Per DRAM line transfer.
    pub dram_pj: f64,
    /// Per queue operation (register-file sized structure).
    pub queue_pj: f64,
    /// Per RA operation.
    pub ra_pj: f64,
    /// Static/leakage per core per cycle.
    pub static_core_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            uop_pj: 60.0,
            branch_pj: 15.0,
            mispredict_pj: 600.0,
            l1_pj: 25.0,
            l2_pj: 90.0,
            l3_pj: 400.0,
            dram_pj: 15_000.0,
            queue_pj: 8.0,
            ra_pj: 12.0,
            static_core_pj_per_cycle: 120.0,
        }
    }
}

/// Energy totals in picojoules, by component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (uops, branches, queue ops, RA ops).
    pub core_dynamic_pj: f64,
    /// Cache energy (L1+L2+L3).
    pub cache_pj: f64,
    /// DRAM energy.
    pub dram_pj: f64,
    /// Static/leakage energy.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.core_dynamic_pj + self.cache_pj + self.dram_pj + self.static_pj
    }

    /// Adds another breakdown.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core_dynamic_pj += other.core_dynamic_pj;
        self.cache_pj += other.cache_pj;
        self.dram_pj += other.dram_pj;
        self.static_pj += other.static_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut a = EnergyBreakdown {
            core_dynamic_pj: 1.0,
            cache_pj: 2.0,
            dram_pj: 3.0,
            static_pj: 4.0,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.total_pj(), 20.0);
    }

    #[test]
    fn dram_dominates_per_event() {
        let m = EnergyModel::default();
        assert!(m.dram_pj > m.l3_pj && m.l3_pj > m.l2_pj && m.l2_pj > m.l1_pj);
        assert!(m.queue_pj < m.uop_pj, "queue ops must be cheap");
    }
}
