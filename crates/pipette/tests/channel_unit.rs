//! Channel-backend unit and stress tests for the native backend's
//! bounded channels: capacity edges, drop-termination protocols, CV
//! in-band ordering, a seeded interleaving stress loop per backend, and
//! panic containment through the pool's `catch_unwind` path.

use phloem_ir::Value;
use phloem_pool::Pool;
use pipette_sim::native::channel::{
    channel, ChannelError, ChannelKind, TryRecvError, TrySendError,
};

/// Zero capacity is a construction error on every backend (the
/// simulator's hardware queues are at least one entry deep; a
/// rendezvous channel has no analogue).
#[test]
fn zero_capacity_is_an_error() {
    for kind in ChannelKind::ALL {
        assert_eq!(
            channel(kind, 0).err(),
            Some(ChannelError::ZeroCapacity),
            "{kind}"
        );
    }
}

/// Capacity 1: exactly one value fits; the second send reports full and
/// hands the value back; a drain reopens the slot.
#[test]
fn capacity_one_edge() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 1).unwrap();
        tx.try_send(Value::I64(1)).unwrap();
        match tx.try_send(Value::I64(2)) {
            Err(TrySendError::Full(Value::I64(2))) => {}
            other => panic!("{kind}: expected Full(2), got {other:?}"),
        }
        assert_eq!(rx.try_recv().unwrap(), Value::I64(1));
        tx.try_send(Value::I64(2)).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Value::I64(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty), "{kind}");
    }
}

/// Power-of-two capacity: fill to exactly `cap`, overflow rejected,
/// drain returns everything in FIFO order.
#[test]
fn power_of_two_capacity_fills_exactly() {
    for kind in ChannelKind::ALL {
        let cap = 16;
        let (tx, rx) = channel(kind, cap).unwrap();
        for i in 0..cap as i64 {
            tx.try_send(Value::I64(i)).unwrap();
        }
        assert!(
            matches!(tx.try_send(Value::I64(99)), Err(TrySendError::Full(_))),
            "{kind}: slot {cap} must not exist"
        );
        for i in 0..cap as i64 {
            assert_eq!(rx.try_recv().unwrap(), Value::I64(i), "{kind}");
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}

/// Producer drop: `Empty` hardens into `Disconnected` once the last
/// sender is gone — but values sent before the drop still drain first.
#[test]
fn producer_drop_terminates_the_receiver() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 4).unwrap();
        let tx2 = tx.clone();
        tx.try_send(Value::I64(1)).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), Value::I64(1));
        assert_eq!(
            rx.try_recv(),
            Err(TryRecvError::Empty),
            "{kind}: one sender clone is still live"
        );
        tx2.try_send(Value::I64(2)).unwrap();
        drop(tx2);
        assert_eq!(rx.try_recv().unwrap(), Value::I64(2), "{kind}: drain first");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected), "{kind}");
    }
}

/// Consumer drop: producers get `Disconnected` (with the value handed
/// back) instead of filling a buffer nobody will drain.
#[test]
fn consumer_drop_terminates_the_senders() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 4).unwrap();
        tx.try_send(Value::I64(1)).unwrap();
        drop(rx);
        match tx.try_send(Value::I64(2)) {
            Err(TrySendError::Disconnected(Value::I64(2))) => {}
            other => panic!("{kind}: expected Disconnected(2), got {other:?}"),
        }
    }
}

/// Control values are in-band: a `Ctrl` word travels the same FIFO as
/// data and arrives in exactly the position it was sent — the property
/// the CV handler protocol depends on.
#[test]
fn ctrl_values_keep_their_in_band_position() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 8).unwrap();
        let seq = [
            Value::I64(10),
            Value::Ctrl(1),
            Value::F64(2.5),
            Value::Ctrl(0),
            Value::I64(-3),
        ];
        for v in seq {
            tx.try_send(v).unwrap();
        }
        for want in seq {
            assert_eq!(rx.try_recv().unwrap(), want, "{kind}");
        }
    }
}

/// Minimal xorshift64* for seeded interleavings (mirrors the fuzz rig).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// 10k messages through real producer/consumer threads with seeded
/// burst sizes and capacities: every value arrives exactly once, in
/// order, with the right discriminant (`I64` vs `F64` vs `Ctrl` must
/// survive the trip). Runs per backend.
#[test]
fn seeded_interleaving_stress_10k_messages() {
    const N: i64 = 10_000;
    for kind in ChannelKind::ALL {
        let mut rng = Rng(0x5EED ^ kind.label().len() as u64);
        let cap = 1 + rng.below(32) as usize;
        let (tx, rx) = channel(kind, cap).unwrap();
        let producer_seed = rng.next() | 1;
        let producer = std::thread::spawn(move || {
            let mut rng = Rng(producer_seed);
            let mut i = 0i64;
            while i < N {
                // Seeded burst, then briefly yield so interleavings vary.
                let burst = 1 + rng.below(17) as i64;
                let mut sent = 0;
                while sent < burst && i < N {
                    let v = match i % 3 {
                        0 => Value::I64(i),
                        1 => Value::F64(i as f64 + 0.5),
                        _ => Value::Ctrl((i % 7) as u32),
                    };
                    match tx.try_send(v) {
                        Ok(()) => {
                            i += 1;
                            sent += 1;
                        }
                        Err(TrySendError::Full(_)) => std::thread::yield_now(),
                        Err(TrySendError::Disconnected(_)) => panic!("receiver died"),
                    }
                }
                if rng.below(4) == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut got = 0i64;
        while got < N {
            match rx.try_recv() {
                Ok(v) => {
                    let want = match got % 3 {
                        0 => Value::I64(got),
                        1 => Value::F64(got as f64 + 0.5),
                        _ => Value::Ctrl((got % 7) as u32),
                    };
                    assert_eq!(v, want, "{kind}: message {got} (cap {cap})");
                    got += 1;
                }
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => {
                    panic!("{kind}: disconnected after {got} of {N}")
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected), "{kind}");
    }
}

/// Fan-in: two producer clones on separate threads; every message
/// arrives exactly once and each producer's own sequence stays ordered
/// (cross-producer order is unspecified — only control tokens whose
/// handlers commute travel fan-in queues).
#[test]
fn fan_in_senders_preserve_per_producer_order() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 8).unwrap();
        let tx2 = tx.clone();
        let mk = |base: i64, tx: pipette_sim::native::channel::Sender| {
            std::thread::spawn(move || {
                for i in 0..500i64 {
                    loop {
                        match tx.try_send(Value::I64(base + i)) {
                            Ok(()) => break,
                            Err(TrySendError::Full(_)) => std::thread::yield_now(),
                            Err(e) => panic!("{e:?}"),
                        }
                    }
                }
            })
        };
        let p1 = mk(0, tx);
        let p2 = mk(10_000, tx2);
        let mut last = [-1i64, -1i64];
        let mut count = 0;
        while count < 1000 {
            match rx.try_recv() {
                Ok(Value::I64(v)) => {
                    let lane = usize::from(v >= 10_000);
                    assert!(v > last[lane], "{kind}: lane {lane} reordered");
                    last[lane] = v;
                    count += 1;
                }
                Ok(other) => panic!("unexpected {other:?}"),
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => panic!("early disconnect"),
            }
        }
        p1.join().unwrap();
        p2.join().unwrap();
        assert_eq!(last[0], 499);
        assert_eq!(last[1], 10_499);
    }
}

/// Panic containment via the pool's `catch_unwind` path: a fleet task
/// that panics mid-conversation fills only its own slot with
/// `Err(TaskPanic)`; its sender drops during the unwind, so the
/// surviving consumer task terminates through the disconnect protocol
/// instead of hanging.
#[test]
fn panic_in_a_channel_task_is_contained_by_the_pool() {
    for kind in ChannelKind::ALL {
        let (tx, rx) = channel(kind, 4).unwrap();
        let tx = std::sync::Mutex::new(Some(tx));
        let rx = std::sync::Mutex::new(Some(rx));
        let pool = Pool::new(2);
        let out = pool.run(2, |i| {
            if i == 0 {
                let tx = tx.lock().unwrap().take().unwrap();
                tx.try_send(Value::I64(41)).unwrap();
                panic!("injected stage panic");
            } else {
                let rx = rx.lock().unwrap().take().unwrap();
                let mut sum = 0i64;
                loop {
                    match rx.try_recv() {
                        Ok(Value::I64(v)) => sum += v,
                        Ok(_) => {}
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                        Err(TryRecvError::Disconnected) => return sum,
                    }
                }
            }
        });
        let e = out[0].as_ref().unwrap_err();
        assert!(e.message.contains("injected stage panic"), "{kind}: {e}");
        assert_eq!(
            out[1].as_ref().unwrap(),
            &41,
            "{kind}: consumer must see the pre-panic value, then terminate"
        );
    }
}
