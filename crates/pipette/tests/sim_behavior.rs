//! Behavioural tests of the timing model using the paper's introductory
//! kernel:
//!
//! ```c
//! for (i = 0; i < n; i++)
//!     if (A[i] > 0) work(B[A[i]]);
//! ```
//!
//! The pipeline-parallel decomposition (fetch A -> filter -> fetch B ->
//! work) must beat the serial version on irregular data, and offloading
//! the B fetch to a reference accelerator must not hurt.

use phloem_ir::{
    interp, ArrayDecl, ArrayId, CtrlHandler, Expr, FunctionBuilder, HandlerEnd, MemState, Pipeline,
    QueueId, RaConfig, RaMode, StageProgram, Stmt, Value,
};
use pipette_sim::{Machine, MachineConfig};

const DONE: u32 = 0;
const N: i64 = 8_000;
const BN: i64 = 1 << 18;

/// Builds input memory: A holds signed indices into B (alternating sign
/// pattern controlled by `alternate`), B holds pseudo-random values.
fn build_mem(alternate: bool) -> (MemState, ArrayId, ArrayId, ArrayId) {
    let mut mem = MemState::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let a_vals: Vec<i64> = (0..N)
        .map(|i| {
            let idx = (next() % BN as u64) as i64;
            let neg = if alternate { i % 2 == 0 } else { false };
            if neg {
                -idx - 1
            } else {
                idx
            }
        })
        .collect();
    let b_vals: Vec<i64> = (0..BN).map(|_| (next() % 1000) as i64).collect();
    let a = mem.alloc_i64(ArrayDecl::i32("A"), a_vals);
    let b = mem.alloc_i64(ArrayDecl::i32("B"), b_vals);
    let out = mem.alloc(ArrayDecl::i64("out"), 1);
    (mem, a, b, out)
}

fn arrays() -> Vec<ArrayDecl> {
    vec![
        ArrayDecl::i32("A"),
        ArrayDecl::i32("B"),
        ArrayDecl::i64("out"),
    ]
}

fn serial_func() -> phloem_ir::Function {
    let mut b = FunctionBuilder::new("serial");
    let n = b.param_i64("n");
    let a_id = b.array_i32("A");
    let b_id = b.array_i32("B");
    let out = b.array_i64("out");
    let i = b.var_i64("i");
    let av = b.var_i64("av");
    let bv = b.var_i64("bv");
    let sum = b.var_i64("sum");
    b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(a_id, Expr::var(i));
        f.assign(av, la);
        f.if_then(
            Expr::bin(phloem_ir::BinOp::Gt, Expr::var(av), Expr::i64(0)),
            |f| {
                let lb = f.load(b_id, Expr::var(av));
                f.assign(bv, lb);
                f.assign(
                    sum,
                    Expr::add(
                        Expr::var(sum),
                        Expr::add(Expr::mul(Expr::var(bv), Expr::i64(3)), Expr::i64(1)),
                    ),
                );
            },
        );
    });
    b.store(out, Expr::i64(0), Expr::var(sum));
    b.build()
}

/// Fetch A -> Filter -> Fetch B -> Work, with control values ending the
/// stream. `use_ra` replaces the "fetch B" stage with an INDIRECT RA.
fn pipeline(use_ra: bool) -> Pipeline {
    let q_a = QueueId(0); // A values
    let q_f = QueueId(1); // filtered indices
    let q_b = QueueId(2); // B values
    let mut p = Pipeline::new(if use_ra { "pipe-ra" } else { "pipe" });

    // Stage 0: fetch A.
    let mut s0 = FunctionBuilder::new("fetch_a");
    let n = s0.param_i64("n");
    let a_id = s0.array_i32("A");
    let _ = s0.array_i32("B");
    let _ = s0.array_i64("out");
    let i = s0.var_i64("i");
    s0.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(a_id, Expr::var(i));
        f.enq(q_a, la);
    });
    s0.enq_ctrl(q_a, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    // Stage 1: filter.
    let mut s1 = FunctionBuilder::new("filter");
    let _ = s1.array_i32("A");
    let _ = s1.array_i32("B");
    let _ = s1.array_i64("out");
    let av = s1.var_i64("av");
    s1.while_true(|f| {
        f.deq(av, q_a);
        f.if_then(
            Expr::bin(phloem_ir::BinOp::Gt, Expr::var(av), Expr::i64(0)),
            |f| f.enq(q_f, Expr::var(av)),
        );
    });
    let h1 = CtrlHandler {
        queue: q_a,
        ctrl: Some(DONE),
        bind: None,
        body: vec![Stmt::EnqCtrl {
            queue: q_f,
            ctrl: DONE,
        }],
        end: HandlerEnd::FinishStage,
    };
    p.add_stage(
        StageProgram {
            func: s1.build(),
            handlers: vec![h1],
        },
        0,
    );

    // Stage 2: fetch B (compute stage or RA).
    if use_ra {
        p.add_ra(
            RaConfig {
                name: "fetch_b".into(),
                mode: RaMode::Indirect,
                base: ArrayId(1),
                in_queue: q_f,
                out_queue: q_b,
                forward_ctrl: true,
                scan_end_ctrl: None,
            },
            &arrays(),
            0,
        );
    } else {
        let mut s2 = FunctionBuilder::new("fetch_b");
        let _ = s2.array_i32("A");
        let b_id = s2.array_i32("B");
        let _ = s2.array_i64("out");
        let idx = s2.var_i64("idx");
        s2.while_true(|f| {
            f.deq(idx, q_f);
            let lb = f.load(b_id, Expr::var(idx));
            f.enq(q_b, lb);
        });
        let h2 = CtrlHandler {
            queue: q_f,
            ctrl: Some(DONE),
            bind: None,
            body: vec![Stmt::EnqCtrl {
                queue: q_b,
                ctrl: DONE,
            }],
            end: HandlerEnd::FinishStage,
        };
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![h2],
            },
            0,
        );
    }

    // Stage 3: work.
    let mut s3 = FunctionBuilder::new("work");
    let _ = s3.array_i32("A");
    let _ = s3.array_i32("B");
    let out = s3.array_i64("out");
    let bv = s3.var_i64("bv");
    let sum = s3.var_i64("sum");
    s3.while_true(|f| {
        f.deq(bv, q_b);
        f.assign(
            sum,
            Expr::add(
                Expr::var(sum),
                Expr::add(Expr::mul(Expr::var(bv), Expr::i64(3)), Expr::i64(1)),
            ),
        );
    });
    let h3 = CtrlHandler {
        queue: q_b,
        ctrl: Some(DONE),
        bind: None,
        body: vec![Stmt::Store {
            array: out,
            index: Expr::i64(0),
            value: Expr::var(sum),
        }],
        end: HandlerEnd::FinishStage,
    };
    p.add_stage(
        StageProgram {
            func: s3.build(),
            handlers: vec![h3],
        },
        0,
    );
    p
}

fn run_serial(alternate: bool) -> (Vec<i64>, u64) {
    let (mem, _, _, out) = build_mem(alternate);
    let f = serial_func();
    let mut p = Pipeline::new("serial");
    p.add_stage(StageProgram::plain(f), 0);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .expect("serial run");
    (run.mem.i64_vec(out), run.stats.cycles)
}

fn run_pipe(use_ra: bool, alternate: bool) -> (Vec<i64>, u64) {
    let (mem, _, _, out) = build_mem(alternate);
    let p = pipeline(use_ra);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .expect("pipeline run");
    (run.mem.i64_vec(out), run.stats.cycles)
}

#[test]
fn pipeline_matches_serial_semantics() {
    let (serial_out, _) = run_serial(true);
    let (pipe_out, _) = run_pipe(false, true);
    let (ra_out, _) = run_pipe(true, true);
    assert_eq!(serial_out, pipe_out);
    assert_eq!(serial_out, ra_out);
    // And the functional oracle agrees.
    let (mem, _, _, out) = build_mem(true);
    let run = interp::run_pipeline(&pipeline(true), mem, &[("n", Value::I64(N))], 24)
        .expect("functional");
    assert_eq!(run.mem.i64_vec(out), serial_out);
}

#[test]
fn decoupling_beats_serial_on_irregular_input() {
    let (_, serial_cycles) = run_serial(true);
    let (_, pipe_cycles) = run_pipe(false, true);
    assert!(
        pipe_cycles * 12 < serial_cycles * 10,
        "expected >=1.2x speedup: serial={serial_cycles}, pipeline={pipe_cycles}"
    );
}

#[test]
fn reference_accelerator_does_not_hurt() {
    let (_, pipe_cycles) = run_pipe(false, true);
    let (_, ra_cycles) = run_pipe(true, true);
    assert!(
        ra_cycles <= pipe_cycles * 11 / 10,
        "RA offload must not slow the pipeline: pipe={pipe_cycles}, ra={ra_cycles}"
    );
}

#[test]
fn unpredictable_branches_slow_the_serial_version() {
    // All-positive A: the filter branch is perfectly predictable.
    let (_, predictable) = run_serial(false);
    let (_, alternating) = run_serial(true);
    // The alternating version does *less* work (half the B loads) yet
    // must not be much faster; mispredictions should eat the difference.
    assert!(
        alternating * 10 > predictable * 7,
        "mispredicts should hurt: predictable={predictable}, alternating={alternating}"
    );
}

#[test]
fn cross_core_pipelines_work() {
    // Same pipeline but the last stage on core 1.
    let (mem, _, _, out) = build_mem(true);
    let mut p = pipeline(false);
    let last = p.stages.len() - 1;
    p.stages[last].core = 1;
    let cfg = MachineConfig::paper_multicore(2);
    let run = Machine::run_once(&cfg, &p, mem, &[("n", Value::I64(N))]).expect("2-core run");
    let (serial_out, _) = run_serial(true);
    assert_eq!(run.mem.i64_vec(out), serial_out);
}

#[test]
fn queue_stalls_are_visible_in_stats() {
    let (mem, _, _, _) = build_mem(true);
    let p = pipeline(false);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .unwrap();
    let total_queue_stalls: u64 = run.stats.threads.iter().map(|t| t.queue_stall_cycles).sum();
    assert!(
        total_queue_stalls > 0,
        "an imbalanced pipeline must show queue stalls"
    );
    let b = run.stats.cycle_breakdown(6);
    assert!(b.total() > 0.0);
}

/// Diagnostic (run with `--ignored --nocapture`): prints cycle counts for
/// calibrating the timing model.
#[test]
#[ignore = "diagnostic only"]
fn print_calibration() {
    let (_, serial) = run_serial(true);
    let (_, pipe) = run_pipe(false, true);
    let (_, ra) = run_pipe(true, true);
    println!(
        "serial={serial} pipe={pipe} ({:.2}x) ra={ra} ({:.2}x)",
        serial as f64 / pipe as f64,
        serial as f64 / ra as f64
    );
}

#[test]
fn scheduler_never_repolls_blocked_threads() {
    // The event-driven scheduler parks blocked threads on wait-lists:
    // `stall_polls` must be structurally zero, while wakeups do occur in
    // any pipeline with real cross-stage flow.
    let (mem, _, _, _) = build_mem(true);
    let p = pipeline(false);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .unwrap();
    for t in &run.stats.threads {
        assert_eq!(
            t.stall_polls, 0,
            "{}: blind re-poll of a parked thread",
            t.name
        );
        assert!(
            t.spurious_wakeups <= t.wakeups,
            "{}: spurious wakeups cannot exceed wakeups",
            t.name
        );
    }
    let total_wakeups: u64 = run.stats.threads.iter().map(|t| t.wakeups).sum();
    assert!(total_wakeups > 0, "queue hand-offs must produce wakeups");
}

#[test]
fn stall_reasons_split_into_full_and_empty() {
    let (mem, _, _, _) = build_mem(true);
    let p = pipeline(false);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .unwrap();
    for t in &run.stats.threads {
        assert_eq!(
            t.queue_stall_cycles,
            t.queue_full_stall_cycles + t.queue_empty_stall_cycles,
            "{}: full/empty split must partition the queue stalls",
            t.name
        );
    }
    // The downstream `work` stage waits for data (empty), the upstream
    // fetch stage waits for space (full) in this imbalanced pipeline.
    let empty: u64 = run
        .stats
        .threads
        .iter()
        .map(|t| t.queue_empty_stall_cycles)
        .sum();
    assert!(empty > 0, "consumers must report queue-empty stalls");
}

#[test]
fn queue_occupancy_stats_are_recorded() {
    let (mem, _, _, _) = build_mem(true);
    let p = pipeline(false);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .unwrap();
    assert_eq!(
        run.stats.queues.len(),
        3,
        "one stats slot per hardware queue"
    );
    for (k, q) in run.stats.queues.iter().enumerate() {
        assert!(q.enqs > 0, "q{k} saw no traffic");
        assert_eq!(q.enqs, q.deqs, "q{k} must drain completely");
        assert!(q.max_occupancy >= 1 && q.max_occupancy <= q.capacity);
        let samples: u64 = q.occupancy_hist.iter().sum();
        assert_eq!(samples, q.enqs + q.deqs, "q{k} histogram samples");
        assert!(q.mean_occupancy() <= q.capacity as f64);
    }
}

#[test]
fn deadlock_reports_the_wait_cycle() {
    // Two stages waiting on each other's output: `ping` deqs q0 before
    // producing into q1, `pong` deqs q1 before producing into q0.
    let q0 = QueueId(0);
    let q1 = QueueId(1);
    let mut p = Pipeline::new("circular");
    let mut a = FunctionBuilder::new("ping");
    let x = a.var_i64("x");
    a.while_true(|f| {
        f.deq(x, q0);
        f.enq(q1, Expr::var(x));
    });
    p.add_stage(StageProgram::plain(a.build()), 0);
    let mut b = FunctionBuilder::new("pong");
    let y = b.var_i64("y");
    b.while_true(|f| {
        f.deq(y, q1);
        f.enq(q0, Expr::var(y));
    });
    p.add_stage(StageProgram::plain(b.build()), 0);

    let err = Machine::run_once(&MachineConfig::paper_1core(), &p, MemState::new(), &[])
        .expect_err("circular wait must deadlock");
    let msg = err.to_string();
    assert!(msg.contains("deadlocked"), "{msg}");
    assert!(msg.contains("wait cycle"), "{msg}");
    assert!(msg.contains("`ping`") && msg.contains("`pong`"), "{msg}");
    // Occupancy/capacity of the blocking queues is part of the report.
    assert!(msg.contains("empty 0/"), "{msg}");
    assert!(msg.contains("q0") && msg.contains("q1"), "{msg}");
}

#[test]
fn starvation_deadlock_reports_no_cycle() {
    // A producer that finishes after fewer items than the consumer
    // dequeues: statically well-formed (the pipeline validator accepts
    // it), but at runtime the consumer blocks with no producer left —
    // the report must say starvation, not cycle.
    let q0 = QueueId(0);
    let mut p = Pipeline::new("starved");
    let mut a = FunctionBuilder::new("producer_done");
    let i = a.var_i64("i");
    a.for_loop(i, Expr::i64(0), Expr::i64(2), |f| {
        f.enq(q0, Expr::var(i));
    });
    p.add_stage(StageProgram::plain(a.build()), 0);
    let mut b = FunctionBuilder::new("starved_consumer");
    let j = b.var_i64("j");
    let y = b.var_i64("y");
    b.for_loop(j, Expr::i64(0), Expr::i64(3), |f| {
        f.deq(y, q0);
    });
    p.add_stage(StageProgram::plain(b.build()), 0);

    let err = Machine::run_once(&MachineConfig::paper_1core(), &p, MemState::new(), &[])
        .expect_err("starved consumer must deadlock");
    let msg = err.to_string();
    assert!(msg.contains("no wait cycle"), "{msg}");
    assert!(msg.contains("starved_consumer"), "{msg}");
}

#[test]
fn malformed_queue_protocol_is_rejected_before_simulation() {
    // A consumer of a queue nobody feeds never reaches the simulator:
    // the pre-sim validator rejects it with a named invariant instead
    // of letting it surface as an opaque runtime deadlock.
    let q0 = QueueId(0);
    let mut p = Pipeline::new("dangling");
    let mut b = FunctionBuilder::new("orphan_consumer");
    let y = b.var_i64("y");
    b.deq(y, q0);
    p.add_stage(StageProgram::plain(b.build()), 0);
    p.num_queues = p.num_queues.max(1);

    let err = Machine::run_once(&MachineConfig::paper_1core(), &p, MemState::new(), &[])
        .expect_err("dangling queue must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("no producer"), "{msg}");
    assert!(msg.contains("orphan_consumer"), "{msg}");
    assert!(msg.contains("pre-sim"), "{msg}");
}

#[test]
fn ra_fed_deadlock_reports_the_ra_in_the_wait_cycle() {
    // Stage `loopback` pushes 80 indices into the RA's input queue
    // before dequeuing a single result: with 24-deep queues both fill,
    // the RA blocks enqueuing its output, the producer blocks enqueuing
    // the input, and the wait cycle runs *through the RA FSM*. The trap
    // must show the RA as a node with its blocked-queue edge, not a
    // truncated compute-only chain.
    let q_in = QueueId(0);
    let q_out = QueueId(1);
    let mut b = FunctionBuilder::new("loopback");
    let base = b.array_i64("base");
    let i = b.var_i64("i");
    let j = b.var_i64("j");
    let x = b.var_i64("x");
    b.for_loop(i, Expr::i64(0), Expr::i64(80), |f| {
        f.enq(q_in, Expr::var(i));
    });
    b.for_loop(j, Expr::i64(0), Expr::i64(80), |f| {
        f.deq(x, q_out);
    });
    let mut p = Pipeline::new("ra_cycle");
    p.add_stage(StageProgram::plain(b.build()), 0);
    p.add_ra(
        RaConfig {
            name: "lookup".into(),
            mode: RaMode::Indirect,
            base,
            in_queue: q_in,
            out_queue: q_out,
            forward_ctrl: false,
            scan_end_ctrl: None,
        },
        &[ArrayDecl::i64("base")],
        0,
    );

    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("base"), 0..128);
    let err = Machine::run_once(&MachineConfig::paper_1core(), &p, mem, &[])
        .expect_err("over-committed RA loop must deadlock");
    let msg = err.to_string();
    assert!(msg.contains("wait cycle"), "{msg}");
    // The RA FSM is a node of the cycle, with its blocked enqueue edge.
    assert!(msg.contains("`ra:lookup` (RA) --[enq q1"), "{msg}");
    // The producer's edge into the RA's input queue is there too.
    assert!(msg.contains("`loopback` --[enq q0"), "{msg}");
}
