//! Behavioural tests of the timing model using the paper's introductory
//! kernel:
//!
//! ```c
//! for (i = 0; i < n; i++)
//!     if (A[i] > 0) work(B[A[i]]);
//! ```
//!
//! The pipeline-parallel decomposition (fetch A -> filter -> fetch B ->
//! work) must beat the serial version on irregular data, and offloading
//! the B fetch to a reference accelerator must not hurt.

use phloem_ir::{
    interp, ArrayDecl, ArrayId, CtrlHandler, Expr, FunctionBuilder, HandlerEnd, MemState,
    Pipeline, QueueId, RaConfig, RaMode, StageProgram, Stmt, Value,
};
use pipette_sim::{Machine, MachineConfig};

const DONE: u32 = 0;
const N: i64 = 8_000;
const BN: i64 = 1 << 18;

/// Builds input memory: A holds signed indices into B (alternating sign
/// pattern controlled by `alternate`), B holds pseudo-random values.
fn build_mem(alternate: bool) -> (MemState, ArrayId, ArrayId, ArrayId) {
    let mut mem = MemState::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let a_vals: Vec<i64> = (0..N)
        .map(|i| {
            let idx = (next() % BN as u64) as i64;
            let neg = if alternate { i % 2 == 0 } else { false };
            if neg {
                -idx - 1
            } else {
                idx
            }
        })
        .collect();
    let b_vals: Vec<i64> = (0..BN).map(|_| (next() % 1000) as i64).collect();
    let a = mem.alloc_i64(ArrayDecl::i32("A"), a_vals);
    let b = mem.alloc_i64(ArrayDecl::i32("B"), b_vals);
    let out = mem.alloc(ArrayDecl::i64("out"), 1);
    (mem, a, b, out)
}

fn arrays() -> Vec<ArrayDecl> {
    vec![ArrayDecl::i32("A"), ArrayDecl::i32("B"), ArrayDecl::i64("out")]
}

fn serial_func() -> phloem_ir::Function {
    let mut b = FunctionBuilder::new("serial");
    let n = b.param_i64("n");
    let a_id = b.array_i32("A");
    let b_id = b.array_i32("B");
    let out = b.array_i64("out");
    let i = b.var_i64("i");
    let av = b.var_i64("av");
    let bv = b.var_i64("bv");
    let sum = b.var_i64("sum");
    b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(a_id, Expr::var(i));
        f.assign(av, la);
        f.if_then(Expr::bin(phloem_ir::BinOp::Gt, Expr::var(av), Expr::i64(0)), |f| {
            let lb = f.load(b_id, Expr::var(av));
            f.assign(bv, lb);
            f.assign(
                sum,
                Expr::add(
                    Expr::var(sum),
                    Expr::add(Expr::mul(Expr::var(bv), Expr::i64(3)), Expr::i64(1)),
                ),
            );
        });
    });
    b.store(out, Expr::i64(0), Expr::var(sum));
    b.build()
}

/// Fetch A -> Filter -> Fetch B -> Work, with control values ending the
/// stream. `use_ra` replaces the "fetch B" stage with an INDIRECT RA.
fn pipeline(use_ra: bool) -> Pipeline {
    let q_a = QueueId(0); // A values
    let q_f = QueueId(1); // filtered indices
    let q_b = QueueId(2); // B values
    let mut p = Pipeline::new(if use_ra { "pipe-ra" } else { "pipe" });

    // Stage 0: fetch A.
    let mut s0 = FunctionBuilder::new("fetch_a");
    let n = s0.param_i64("n");
    let a_id = s0.array_i32("A");
    let _ = s0.array_i32("B");
    let _ = s0.array_i64("out");
    let i = s0.var_i64("i");
    s0.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(a_id, Expr::var(i));
        f.enq(q_a, la);
    });
    s0.enq_ctrl(q_a, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    // Stage 1: filter.
    let mut s1 = FunctionBuilder::new("filter");
    let _ = s1.array_i32("A");
    let _ = s1.array_i32("B");
    let _ = s1.array_i64("out");
    let av = s1.var_i64("av");
    s1.while_true(|f| {
        f.deq(av, q_a);
        f.if_then(
            Expr::bin(phloem_ir::BinOp::Gt, Expr::var(av), Expr::i64(0)),
            |f| f.enq(q_f, Expr::var(av)),
        );
    });
    let h1 = CtrlHandler {
        queue: q_a,
        ctrl: Some(DONE),
        bind: None,
        body: vec![Stmt::EnqCtrl {
            queue: q_f,
            ctrl: DONE,
        }],
        end: HandlerEnd::FinishStage,
    };
    p.add_stage(
        StageProgram {
            func: s1.build(),
            handlers: vec![h1],
        },
        0,
    );

    // Stage 2: fetch B (compute stage or RA).
    if use_ra {
        p.add_ra(
            RaConfig {
                name: "fetch_b".into(),
                mode: RaMode::Indirect,
                base: ArrayId(1),
                in_queue: q_f,
                out_queue: q_b,
                forward_ctrl: true,
                scan_end_ctrl: None,
            },
            &arrays(),
            0,
        );
    } else {
        let mut s2 = FunctionBuilder::new("fetch_b");
        let _ = s2.array_i32("A");
        let b_id = s2.array_i32("B");
        let _ = s2.array_i64("out");
        let idx = s2.var_i64("idx");
        s2.while_true(|f| {
            f.deq(idx, q_f);
            let lb = f.load(b_id, Expr::var(idx));
            f.enq(q_b, lb);
        });
        let h2 = CtrlHandler {
            queue: q_f,
            ctrl: Some(DONE),
            bind: None,
            body: vec![Stmt::EnqCtrl {
                queue: q_b,
                ctrl: DONE,
            }],
            end: HandlerEnd::FinishStage,
        };
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![h2],
            },
            0,
        );
    }

    // Stage 3: work.
    let mut s3 = FunctionBuilder::new("work");
    let _ = s3.array_i32("A");
    let _ = s3.array_i32("B");
    let out = s3.array_i64("out");
    let bv = s3.var_i64("bv");
    let sum = s3.var_i64("sum");
    s3.while_true(|f| {
        f.deq(bv, q_b);
        f.assign(
            sum,
            Expr::add(
                Expr::var(sum),
                Expr::add(Expr::mul(Expr::var(bv), Expr::i64(3)), Expr::i64(1)),
            ),
        );
    });
    let h3 = CtrlHandler {
        queue: q_b,
        ctrl: Some(DONE),
        bind: None,
        body: vec![Stmt::Store {
            array: out,
            index: Expr::i64(0),
            value: Expr::var(sum),
        }],
        end: HandlerEnd::FinishStage,
    };
    p.add_stage(
        StageProgram {
            func: s3.build(),
            handlers: vec![h3],
        },
        0,
    );
    p
}

fn run_serial(alternate: bool) -> (Vec<i64>, u64) {
    let (mem, _, _, out) = build_mem(alternate);
    let f = serial_func();
    let mut p = Pipeline::new("serial");
    p.add_stage(StageProgram::plain(f), 0);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .expect("serial run");
    (run.mem.i64_vec(out), run.stats.cycles)
}

fn run_pipe(use_ra: bool, alternate: bool) -> (Vec<i64>, u64) {
    let (mem, _, _, out) = build_mem(alternate);
    let p = pipeline(use_ra);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .expect("pipeline run");
    (run.mem.i64_vec(out), run.stats.cycles)
}

#[test]
fn pipeline_matches_serial_semantics() {
    let (serial_out, _) = run_serial(true);
    let (pipe_out, _) = run_pipe(false, true);
    let (ra_out, _) = run_pipe(true, true);
    assert_eq!(serial_out, pipe_out);
    assert_eq!(serial_out, ra_out);
    // And the functional oracle agrees.
    let (mem, _, _, out) = build_mem(true);
    let run = interp::run_pipeline(&pipeline(true), mem, &[("n", Value::I64(N))], 24)
        .expect("functional");
    assert_eq!(run.mem.i64_vec(out), serial_out);
}

#[test]
fn decoupling_beats_serial_on_irregular_input() {
    let (_, serial_cycles) = run_serial(true);
    let (_, pipe_cycles) = run_pipe(false, true);
    assert!(
        pipe_cycles * 12 < serial_cycles * 10,
        "expected >=1.2x speedup: serial={serial_cycles}, pipeline={pipe_cycles}"
    );
}

#[test]
fn reference_accelerator_does_not_hurt() {
    let (_, pipe_cycles) = run_pipe(false, true);
    let (_, ra_cycles) = run_pipe(true, true);
    assert!(
        ra_cycles <= pipe_cycles * 11 / 10,
        "RA offload must not slow the pipeline: pipe={pipe_cycles}, ra={ra_cycles}"
    );
}

#[test]
fn unpredictable_branches_slow_the_serial_version() {
    // All-positive A: the filter branch is perfectly predictable.
    let (_, predictable) = run_serial(false);
    let (_, alternating) = run_serial(true);
    // The alternating version does *less* work (half the B loads) yet
    // must not be much faster; mispredictions should eat the difference.
    assert!(
        alternating * 10 > predictable * 7,
        "mispredicts should hurt: predictable={predictable}, alternating={alternating}"
    );
}

#[test]
fn cross_core_pipelines_work() {
    // Same pipeline but the last stage on core 1.
    let (mem, _, _, out) = build_mem(true);
    let mut p = pipeline(false);
    let last = p.stages.len() - 1;
    p.stages[last].core = 1;
    let cfg = MachineConfig::paper_multicore(2);
    let run = Machine::run_once(&cfg, &p, mem, &[("n", Value::I64(N))]).expect("2-core run");
    let (serial_out, _) = run_serial(true);
    assert_eq!(run.mem.i64_vec(out), serial_out);
}

#[test]
fn queue_stalls_are_visible_in_stats() {
    let (mem, _, _, _) = build_mem(true);
    let p = pipeline(false);
    let run = Machine::run_once(
        &MachineConfig::paper_1core(),
        &p,
        mem,
        &[("n", Value::I64(N))],
    )
    .unwrap();
    let total_queue_stalls: u64 = run
        .stats
        .threads
        .iter()
        .map(|t| t.queue_stall_cycles)
        .sum();
    assert!(
        total_queue_stalls > 0,
        "an imbalanced pipeline must show queue stalls"
    );
    let b = run.stats.cycle_breakdown(6);
    assert!(b.total() > 0.0);
}

/// Diagnostic (run with `--ignored --nocapture`): prints cycle counts for
/// calibrating the timing model.
#[test]
#[ignore = "diagnostic only"]
fn print_calibration() {
    let (_, serial) = run_serial(true);
    let (_, pipe) = run_pipe(false, true);
    let (_, ra) = run_pipe(true, true);
    println!("serial={serial} pipe={pipe} ({:.2}x) ra={ra} ({:.2}x)",
        serial as f64 / pipe as f64, serial as f64 / ra as f64);
}
