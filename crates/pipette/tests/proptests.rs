//! Property tests for the memory hierarchy.

use proptest::prelude::*;

use pipette_sim::{HitLevel, MachineConfig, MemHierarchy};

fn cfg() -> MachineConfig {
    let mut c = MachineConfig::paper_1core();
    c.prefetch = false;
    c
}

proptest! {
    /// Temporal locality: an address accessed twice in a row hits L1 the
    /// second time, whatever happened before.
    #[test]
    fn immediate_reuse_hits_l1(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = MemHierarchy::new(&cfg());
        for (i, a) in addrs.iter().enumerate() {
            h.access(0, *a, i as u64 * 10);
            let (lat, lvl) = h.access(0, *a, i as u64 * 10 + 1);
            prop_assert_eq!(lvl, HitLevel::L1);
            prop_assert_eq!(lat, 4);
        }
    }

    /// Latencies are always one of the hierarchy's levels (plus bounded
    /// DRAM queueing), and counters account every access.
    #[test]
    fn latencies_and_counters_are_sane(addrs in proptest::collection::vec(0u64..10_000_000, 1..300)) {
        let mut h = MemHierarchy::new(&cfg());
        let mut now = 0;
        for a in &addrs {
            let (lat, lvl) = h.access(0, *a, now);
            match lvl {
                HitLevel::L1 => prop_assert_eq!(lat, 4),
                HitLevel::L2 => prop_assert_eq!(lat, 12),
                HitLevel::L3 => prop_assert_eq!(lat, 40),
                HitLevel::Mem => prop_assert!(lat >= 160),
            }
            now += lat;
        }
        prop_assert_eq!(h.stats.total(), addrs.len() as u64);
    }

    /// A working set within the L1 capacity never misses after warmup.
    #[test]
    fn small_working_sets_stay_resident(lines in 1u64..64, rounds in 2usize..6) {
        let mut h = MemHierarchy::new(&cfg());
        let mut now = 0;
        for r in 0..rounds {
            for l in 0..lines {
                let (lat, lvl) = h.access(0, l * 64, now);
                now += lat;
                if r > 0 {
                    prop_assert_eq!(lvl, HitLevel::L1, "line {} round {}", l, r);
                }
            }
        }
    }
}
