//! Batched simulation sessions: input setup amortized across requests,
//! execution fanned out over the shared host pool.
//!
//! Building a catalog input is pure but not free (graph generators walk
//! hundreds of thousands of edges); a batch of requests touching the
//! same input must pay that cost once, not once per request.
//! [`PreparedInputs`] materializes each catalog family the first time a
//! name from it is requested and shares the inputs by `Arc` from then
//! on — across requests, batches, and worker threads. For SpMM the
//! transpose is part of the prepared input too (the inner-product
//! kernel consumes B as CSC).
//!
//! [`Batch::run`] is index-ordered and deterministic at any worker
//! count: the pool's determinism contract places result `i` in slot
//! `i`, and each simulation is pure, so a batch returns bit-identical
//! measurements whether it ran on one worker or sixteen.

use phloem_benchsuite::{bfs, cc, prd, radii, spmm, Measurement, Variant};
use phloem_ir::Trap;
use phloem_pool::Pool;
use phloem_workloads::{
    catalog::{self, Scale},
    Graph, SparseMatrix,
};
use pipette_sim::trace::{DigestSink, TraceSink};
use pipette_sim::MachineConfig;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One simulation request inside a batch.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// Benchmark app: `bfs`, `cc`, `prd`, `radii`, `spmm`.
    pub app: String,
    /// The variant to run.
    pub variant: Variant,
    /// Catalog input name (e.g. `coauthor-s`, `enron-s`).
    pub input: String,
    /// Optional watchdog budget in simulated cycles for this request.
    pub cycle_cap: Option<u64>,
}

/// Catalog inputs, built lazily per family and shared by `Arc`.
///
/// Thread-safe: worker threads resolving names concurrently serialize
/// only on the brief map probe, and the first resolver of a family pays
/// its construction while holding the family's slot (subsequent lookups
/// are a clone of an `Arc`).
pub struct PreparedInputs {
    scale: Scale,
    graphs: Mutex<Option<Family<Graph>>>,
    matrices: Mutex<Option<Family<(SparseMatrix, SparseMatrix)>>>,
}

/// One lazily-built catalog family, shared by `Arc` at both levels.
type Family<T> = Arc<HashMap<String, Arc<T>>>;

impl PreparedInputs {
    /// Empty prepared set at the given catalog scale.
    pub fn new(scale: Scale) -> PreparedInputs {
        PreparedInputs {
            scale,
            graphs: Mutex::new(None),
            matrices: Mutex::new(None),
        }
    }

    /// The catalog scale inputs are generated at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Resolves a named graph (training or test catalog), materializing
    /// the graph family on first use.
    pub fn graph(&self, name: &str) -> Option<Arc<Graph>> {
        let mut slot = self.graphs.lock().unwrap_or_else(|e| e.into_inner());
        let map = slot.get_or_insert_with(|| {
            let mut m = HashMap::new();
            for gi in catalog::training_graphs(self.scale)
                .into_iter()
                .chain(catalog::test_graphs(self.scale))
            {
                m.insert(gi.name.to_string(), Arc::new(gi.graph));
            }
            Arc::new(m)
        });
        map.get(name).cloned()
    }

    /// Resolves a named sparse matrix as `(matrix, transpose)`,
    /// materializing the matrix family (and the transposes) on first
    /// use.
    pub fn matrix(&self, name: &str) -> Option<Arc<(SparseMatrix, SparseMatrix)>> {
        let mut slot = self.matrices.lock().unwrap_or_else(|e| e.into_inner());
        let map = slot.get_or_insert_with(|| {
            let mut m = HashMap::new();
            for mi in catalog::spmm_training_matrices(self.scale)
                .into_iter()
                .chain(catalog::spmm_test_matrices(self.scale))
            {
                let bt = mi.matrix.transpose();
                m.insert(mi.name.to_string(), Arc::new((mi.matrix, bt)));
            }
            Arc::new(m)
        });
        map.get(name).cloned()
    }
}

/// Applies a per-request budget on top of the session machine config.
/// A request can only *tighten* the configured cap, never widen it.
fn budgeted(cfg: &MachineConfig, cycle_cap: Option<u64>) -> MachineConfig {
    let mut cfg = cfg.clone();
    if let Some(cap) = cycle_cap {
        cfg.watchdog.cycle_cap = cfg.watchdog.cycle_cap.min(cap.max(1));
    }
    cfg
}

/// Runs one request on the caller's thread. Unknown apps and input
/// names surface as [`Trap::BadId`] — a per-request error, never a
/// batch abort.
pub fn run_one(
    inputs: &PreparedInputs,
    cfg: &MachineConfig,
    req: &SimRequest,
) -> Result<Measurement, Trap> {
    let cfg = budgeted(cfg, req.cycle_cap);
    let v = &req.variant;
    let name = req.input.as_str();
    match req.app.as_str() {
        "spmm" => {
            let m = resolve_matrix(inputs, name)?;
            spmm::run(v, &m.0, &m.1, &cfg, name)
        }
        "bfs" => bfs::run(v, resolve_graph(inputs, name)?.as_ref(), 0, &cfg, name),
        "cc" => cc::run(v, resolve_graph(inputs, name)?.as_ref(), &cfg, name),
        "prd" => prd::run(v, resolve_graph(inputs, name)?.as_ref(), &cfg, name),
        "radii" => radii::run(v, resolve_graph(inputs, name)?.as_ref(), &cfg, name),
        other => Err(Trap::BadId(format!("unknown app {other:?}"))),
    }
}

/// The canonical trace digest of one run: the FNV-1a hash over the
/// pipeline's full event stream plus the number of events folded in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceDigest {
    /// [`DigestSink`] hash over every invocation's event stream.
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
}

/// Like [`run_one`], with a [`DigestSink`] observing every pipeline
/// invocation. The digest is returned even when the run traps, so a
/// failed run's partial trace remains inspectable.
pub fn run_one_traced(
    inputs: &PreparedInputs,
    cfg: &MachineConfig,
    req: &SimRequest,
) -> (Result<Measurement, Trap>, TraceDigest) {
    let cfg = budgeted(cfg, req.cycle_cap);
    let v = &req.variant;
    let name = req.input.as_str();
    let sink: Box<dyn TraceSink> = Box::new(DigestSink::new());
    let (result, sink) = match req.app.as_str() {
        "spmm" => {
            let m = match resolve_matrix(inputs, name) {
                Ok(m) => m,
                Err(t) => {
                    return (
                        Err(t),
                        TraceDigest {
                            digest: 0,
                            events: 0,
                        },
                    )
                }
            };
            spmm::run_traced(v, &m.0, &m.1, &cfg, name, sink)
        }
        "bfs" | "cc" | "prd" | "radii" => {
            let g = match resolve_graph(inputs, name) {
                Ok(g) => g,
                Err(t) => {
                    return (
                        Err(t),
                        TraceDigest {
                            digest: 0,
                            events: 0,
                        },
                    )
                }
            };
            match req.app.as_str() {
                "bfs" => bfs::run_traced(v, &g, 0, &cfg, name, sink),
                "cc" => cc::run_traced(v, &g, &cfg, name, sink),
                "prd" => prd::run_traced(v, &g, &cfg, name, sink),
                _ => radii::run_traced(v, &g, &cfg, name, sink),
            }
        }
        other => {
            return (
                Err(Trap::BadId(format!("unknown app {other:?}"))),
                TraceDigest {
                    digest: 0,
                    events: 0,
                },
            )
        }
    };
    let digest = sink
        .downcast_ref::<DigestSink>()
        .map(|d| TraceDigest {
            digest: d.digest(),
            events: d.count,
        })
        .unwrap_or(TraceDigest {
            digest: 0,
            events: 0,
        });
    (result, digest)
}

fn resolve_graph(inputs: &PreparedInputs, name: &str) -> Result<Arc<Graph>, Trap> {
    inputs
        .graph(name)
        .ok_or_else(|| Trap::BadId(format!("unknown graph input {name:?}")))
}

fn resolve_matrix(
    inputs: &PreparedInputs,
    name: &str,
) -> Result<Arc<(SparseMatrix, SparseMatrix)>, Trap> {
    inputs
        .matrix(name)
        .ok_or_else(|| Trap::BadId(format!("unknown matrix input {name:?}")))
}

/// A batched session over a shared pool, machine config, and prepared
/// inputs.
pub struct Batch<'a> {
    pool: &'a Pool,
    inputs: &'a PreparedInputs,
    machine: &'a MachineConfig,
}

impl<'a> Batch<'a> {
    /// A session borrowing the pool, inputs, and machine config.
    pub fn new(
        pool: &'a Pool,
        inputs: &'a PreparedInputs,
        machine: &'a MachineConfig,
    ) -> Batch<'a> {
        Batch {
            pool,
            inputs,
            machine,
        }
    }

    /// Runs every request, fanned out over the pool, returning results
    /// in request order. Per-request failures (traps, bad names, even a
    /// host-side panic in one task) land in that request's slot; the
    /// batch itself always completes.
    pub fn run(&self, requests: &[SimRequest]) -> Vec<Result<Measurement, Trap>> {
        self.pool
            .map(requests, |_, req| run_one(self.inputs, self.machine, req))
            .into_iter()
            .map(|slot| match slot {
                Ok(r) => r,
                Err(panic) => Err(Trap::Malformed(format!("host task panicked: {panic}"))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MachineConfig {
        MachineConfig::paper_1core()
    }

    #[test]
    fn unknown_names_trap_instead_of_aborting_the_batch() {
        let inputs = PreparedInputs::new(Scale::Tiny);
        let pool = Pool::new(1);
        let cfg = tiny_cfg();
        let reqs = vec![
            SimRequest {
                app: "nosuch".into(),
                variant: Variant::Serial,
                input: "internet-s".into(),
                cycle_cap: None,
            },
            SimRequest {
                app: "bfs".into(),
                variant: Variant::Serial,
                input: "nosuch-graph".into(),
                cycle_cap: None,
            },
        ];
        let out = Batch::new(&pool, &inputs, &cfg).run(&reqs);
        assert!(matches!(out[0], Err(Trap::BadId(_))));
        assert!(matches!(out[1], Err(Trap::BadId(_))));
    }

    #[test]
    fn budget_only_tightens() {
        let mut cfg = tiny_cfg();
        cfg.watchdog.cycle_cap = 1000;
        assert_eq!(budgeted(&cfg, Some(10)).watchdog.cycle_cap, 10);
        assert_eq!(budgeted(&cfg, Some(u64::MAX)).watchdog.cycle_cap, 1000);
        assert_eq!(budgeted(&cfg, Some(0)).watchdog.cycle_cap, 1);
        assert_eq!(budgeted(&cfg, None).watchdog.cycle_cap, 1000);
    }

    #[test]
    fn batch_is_index_ordered_and_worker_count_independent() {
        let inputs = PreparedInputs::new(Scale::Tiny);
        let cfg = tiny_cfg();
        let reqs = vec![
            SimRequest {
                app: "bfs".into(),
                variant: Variant::Serial,
                input: "internet-s".into(),
                cycle_cap: None,
            },
            SimRequest {
                app: "cc".into(),
                variant: Variant::Serial,
                input: "internet-s".into(),
                cycle_cap: None,
            },
        ];
        let one = Batch::new(&Pool::new(1), &inputs, &cfg).run(&reqs);
        let two = Batch::new(&Pool::new(2), &inputs, &cfg).run(&reqs);
        for (a, b) in one.iter().zip(&two) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                crate::key::measurement_digest(a),
                crate::key::measurement_digest(b)
            );
        }
        // Slot order follows request order, not completion order.
        assert_eq!(one[0].as_ref().unwrap().input, "internet-s");
        assert_ne!(
            one[0].as_ref().unwrap().variant,
            String::new(),
            "variant label present"
        );
    }
}
