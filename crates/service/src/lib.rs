//! # phloem-service
//!
//! Compile-and-simulate as a service: the layer that turns the
//! workspace's one-shot compile/simulate/search APIs into a
//! long-running, cache-backed request server.
//!
//! Three pieces:
//!
//! * [`key`] + [`cache`] — content-addressed result caching. Every
//!   cacheable request is keyed by stable FNV-1a digests of its full
//!   semantic inputs (program text, pass switches, machine config,
//!   search options), held in bounded LRU maps with hit/miss/eviction
//!   counters. Any single-field config change produces a distinct key;
//!   host-only scheduling knobs that provably cannot change results
//!   (worker counts) are excluded so identical results share an entry.
//! * [`batch`] — batched sessions: [`batch::Batch::run`] amortizes
//!   catalog-input construction across requests and fans the
//!   simulations out over the shared `phloem-pool`, returning
//!   index-ordered, bit-identical results at any worker count.
//! * [`service`] + the `phloemd` binary — a newline-delimited-JSON
//!   request server (stdin or a Unix socket) running batches
//!   concurrently with per-request watchdog budgets and cache-hit
//!   provenance on every response.
//!
//! The wire protocol lives in [`proto`]; the workspace `serde` is an
//! offline no-op shim, so JSON is hand-rolled there.

pub mod batch;
pub mod cache;
pub mod key;
pub mod persist;
pub mod proto;
pub mod service;

pub use batch::{Batch, PreparedInputs, SimRequest};
pub use cache::{CacheCounters, Lru};
pub use persist::PersistCounters;
pub use proto::{Json, Op, Request};
pub use service::{BatchResult, Service, ServiceConfig};
