//! Content-addressed cache keying: stable FNV-1a digests of programs,
//! configurations, and results.
//!
//! Every key in the service layer is built from an explicit,
//! field-by-field walk of the value — **not** from `std::hash::Hash`
//! (whose output is allowed to change across releases and is randomized
//! for `HashMap`) and not from serde (the offline shim erases it). The
//! walk gives three properties the caches rely on:
//!
//! * **Stability** — the same value digests to the same key in every
//!   process, so replayed workloads hit warm caches and recorded
//!   provenance stays meaningful across runs.
//! * **Sensitivity** — every field is written at a fixed offset in the
//!   byte stream, so mutating any single field changes the stream and
//!   (modulo a 2^-64 FNV collision) the key;
//!   `tests/service_cache.rs` proves this per field for [`PassConfig`]
//!   and [`MachineConfig`].
//! * **Honesty about scheduling** — host-side knobs that provably do
//!   not change results are *excluded* where the determinism suite pins
//!   that invariant: [`search_options_digest`] skips
//!   `SearchOptions::workers`, because `tests/pool_determinism.rs`
//!   guarantees worker count never changes a report, and keying on it
//!   would only split the cache. Machine-level host toggles
//!   (`scheduler`, `engine`, `fast_forward`) stay *in* the machine key:
//!   they are part of the config a client asked to simulate, and a
//!   conservative key is always correct.

use phloem_benchsuite::Measurement;
use phloem_compiler::search::SearchOptions;
use phloem_compiler::{CompileOptions, PassConfig};
use phloem_ir::{ExecEngine, Function};
use pipette_sim::{MachineConfig, RunStats, SchedulerKind};

/// Incremental FNV-1a (64-bit) over a field-tagged byte stream.
#[derive(Clone, Copy, Debug)]
pub struct KeyHasher(u64);

impl KeyHasher {
    /// FNV-1a offset basis.
    pub fn new() -> KeyHasher {
        KeyHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        self
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Writes a `usize` widened to 64 bits.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Writes an `i64` via its two's-complement bits.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Writes an `f64` via its IEEE-754 bits (bit-exact, so `-0.0` and
    /// `0.0` differ — fine for digesting deterministic results).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[v as u8])
    }

    /// Writes a length-prefixed string (the prefix keeps `("ab","c")`
    /// distinct from `("a","bc")`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

/// Digest of an IR function: its name plus the full pretty-printed
/// body. The pretty-printer renders every statement, expression,
/// declared array, and variable name deterministically, so two
/// functions digest equal iff they print equal — the right identity for
/// a compile cache fed by either the PhloemC frontend or builder-made
/// kernels.
pub fn program_digest(f: &Function) -> u64 {
    let mut h = KeyHasher::new();
    h.str(&f.name);
    h.str(&phloem_ir::pretty::function_to_string(f));
    h.finish()
}

/// Digest of the pass-ablation switches (every field).
pub fn pass_config_digest(p: &PassConfig) -> u64 {
    let mut h = KeyHasher::new();
    h.bool(p.recompute)
        .bool(p.use_ra)
        .bool(p.use_cv)
        .bool(p.use_handlers)
        .bool(p.isdce)
        .bool(p.stream_consumers)
        .bool(p.validate_between_passes);
    h.finish()
}

/// Digest of the full compilation options.
pub fn compile_options_digest(o: &CompileOptions) -> u64 {
    let mut h = KeyHasher::new();
    h.u64(pass_config_digest(&o.passes))
        .usize(o.smt_threads)
        .u64(o.max_queues as u64)
        .usize(o.max_ras)
        .usize(o.start_core);
    h.finish()
}

fn scheduler_tag(s: SchedulerKind) -> u64 {
    match s {
        SchedulerKind::EventDriven => 0,
        SchedulerKind::Polling => 1,
    }
}

fn engine_tag(e: ExecEngine) -> u64 {
    match e {
        ExecEngine::Flat => 0,
        ExecEngine::Tree => 1,
    }
}

/// Digest of the machine configuration — every field, including the
/// host-side toggles (`scheduler`, `engine`, `fast_forward`): those are
/// pinned bit-identical by the differential suites, but they are part
/// of the configuration a client names, and a conservative key is
/// always correct (it can only cause an extra miss, never a wrong hit).
pub fn machine_config_digest(m: &MachineConfig) -> u64 {
    let mut h = KeyHasher::new();
    h.usize(m.cores)
        .usize(m.smt_threads)
        .u64(m.issue_width)
        .usize(m.rob_size)
        .usize(m.mshrs)
        .u64(m.mispredict_penalty)
        .usize(m.queue_capacity)
        .u64(m.max_queues as u64)
        .usize(m.ras_per_core)
        .usize(m.ra_concurrency)
        .u64(m.ra_op_latency)
        .u64(m.queue_latency)
        .u64(m.inter_core_queue_latency);
    for c in [&m.l1, &m.l2] {
        h.usize(c.kb).usize(c.ways).u64(c.latency);
    }
    h.usize(m.l3_kb_per_core)
        .usize(m.l3_ways)
        .u64(m.l3_latency)
        .u64(m.dram_latency)
        .usize(m.dram_controllers)
        .u64(m.dram_cycles_per_line)
        .bool(m.prefetch)
        .u64(m.prefetch_degree)
        .u64(m.launch_overhead)
        .u64(scheduler_tag(m.scheduler))
        .u64(engine_tag(m.engine))
        .u64(m.watchdog.cycle_cap)
        .u64(m.watchdog.livelock_window)
        .bool(m.fast_forward);
    h.finish()
}

/// Digest of the machine-configuration fields the **native** backend
/// can observe — the keying counterpart of
/// `tests/native_equivalence.rs`: native execution is real threads and
/// real channels, so the simulated timing model (cache hierarchy, DRAM
/// and queue latencies, issue width, ROB, prefetcher, scheduler,
/// engine, fast-forward, watchdog) provably cannot change its results.
/// Only the fields that shape the *program* — validation limits and
/// channel depth — are keyed:
///
/// * `cores`, `smt_threads`, `max_queues`, `ras_per_core` — pipeline
///   validation limits (`Pipeline::check`), which gate whether a run is
///   admitted at all;
/// * `queue_capacity` — the native channels' bounded depth, which
///   changes blocking behaviour (never results, but deadlock-vs-run
///   for malformed pipelines).
///
/// Keying native work on the full [`machine_config_digest`] would split
/// provenance between configs that are indistinguishable to the
/// backend; `tests/service_native.rs` pins both directions per field.
pub fn native_machine_config_digest(m: &MachineConfig) -> u64 {
    let mut h = KeyHasher::new();
    h.usize(m.cores)
        .usize(m.smt_threads)
        .u64(m.max_queues as u64)
        .usize(m.ras_per_core)
        .usize(m.queue_capacity);
    h.finish()
}

/// Digest of the PGO search options. `workers` is deliberately
/// **excluded**: the determinism suite pins that a search report is
/// byte-identical at every worker count, so keying on it would split
/// the cache between identical results.
pub fn search_options_digest(o: &SearchOptions) -> u64 {
    let mut h = KeyHasher::new();
    h.usize(o.max_stages)
        .usize(o.top_k)
        .u64(compile_options_digest(&o.compile))
        .u64(o.profile_cycle_cap)
        .u64(o.retry_cap_factor);
    h.finish()
}

/// Structural digest of full run statistics: every per-thread counter,
/// per-queue histogram bucket, cache counter, energy term (via f64
/// bits), the makespan, and the invocation count. Two runs digest equal
/// iff their statistics are bit-identical — the witness the service
/// layer uses to prove cached responses match cold-path responses.
pub fn stats_digest(s: &RunStats) -> u64 {
    let mut h = KeyHasher::new();
    h.u64(s.cycles).u64(s.invocations);
    h.usize(s.threads.len());
    for t in &s.threads {
        h.str(&t.name)
            .bool(t.is_ra)
            .u64(t.uops)
            .u64(t.branches)
            .u64(t.mispredicts)
            .u64(t.loads)
            .u64(t.stores)
            .u64(t.enqs)
            .u64(t.deqs)
            .u64(t.queue_stall_cycles)
            .u64(t.queue_full_stall_cycles)
            .u64(t.queue_empty_stall_cycles)
            .u64(t.backend_stall_cycles)
            .u64(t.frontend_stall_cycles)
            .u64(t.stall_polls)
            .u64(t.wakeups)
            .u64(t.spurious_wakeups)
            .u64(t.finish_time);
    }
    h.usize(s.queues.len());
    for q in &s.queues {
        h.usize(q.capacity)
            .u64(q.enqs)
            .u64(q.deqs)
            .usize(q.max_occupancy);
        h.usize(q.occupancy_hist.len());
        for &b in &q.occupancy_hist {
            h.u64(b);
        }
    }
    h.u64(s.cache.l1_hits)
        .u64(s.cache.l2_hits)
        .u64(s.cache.l3_hits)
        .u64(s.cache.mem_accesses)
        .u64(s.cache.prefetches)
        .f64(s.energy.core_dynamic_pj)
        .f64(s.energy.cache_pj)
        .f64(s.energy.dram_pj)
        .f64(s.energy.static_pj);
    h.finish()
}

/// Digest of one measurement (label, input, cycles, full stats).
pub fn measurement_digest(m: &Measurement) -> u64 {
    let mut h = KeyHasher::new();
    h.str(&m.variant)
        .str(&m.input)
        .u64(m.cycles)
        .u64(stats_digest(&m.stats));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_separates_field_boundaries() {
        let mut a = KeyHasher::new();
        a.str("ab").str("c");
        let mut b = KeyHasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn program_digest_is_stable_and_content_addressed() {
        let mk = |bound: i64| {
            let mut b = phloem_ir::FunctionBuilder::new("k");
            let a = b.array_i64("a");
            let i = b.var_i64("i");
            let s = b.var_i64("s");
            b.for_loop(
                i,
                phloem_ir::Expr::i64(0),
                phloem_ir::Expr::i64(bound),
                |f| {
                    let l = f.load(a, phloem_ir::Expr::var(i));
                    f.assign(s, phloem_ir::Expr::add(phloem_ir::Expr::var(s), l));
                },
            );
            b.build()
        };
        // Same content, independently built: same digest.
        assert_eq!(program_digest(&mk(8)), program_digest(&mk(8)));
        // One constant changed: different digest.
        assert_ne!(program_digest(&mk(8)), program_digest(&mk(9)));
    }

    #[test]
    fn search_options_key_ignores_workers() {
        let a = SearchOptions::default();
        let b = SearchOptions {
            workers: a.workers + 7,
            ..a.clone()
        };
        assert_eq!(search_options_digest(&a), search_options_digest(&b));
        let c = SearchOptions {
            top_k: a.top_k + 1,
            ..a.clone()
        };
        assert_ne!(search_options_digest(&a), search_options_digest(&c));
    }

    #[test]
    fn stats_digest_sees_deep_fields() {
        let mut a = RunStats::default();
        let b = a.clone();
        assert_eq!(stats_digest(&a), stats_digest(&b));
        a.queues.push(pipette_sim::QueueStats::new(4));
        assert_ne!(stats_digest(&a), stats_digest(&b));
        let mut c = a.clone();
        c.queues[0].occupancy_hist[2] += 1;
        assert_ne!(stats_digest(&a), stats_digest(&c));
    }
}
