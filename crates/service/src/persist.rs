//! Crash-safe cache snapshots: a checksummed, line-oriented dump of the
//! service's rendered response payloads, written atomically.
//!
//! ## Format
//!
//! ```text
//! phloem-cache v1
//! C <key:16-hex> <check:16-hex> <payload-json>
//! S <key:16-hex> <check:16-hex> <payload-json>
//! ```
//!
//! One entry per line: `C` rows feed the compile cache, `S` rows the
//! search/trace cache. `key` is the content-addressed cache key;
//! `check` is an FNV-1a digest over `(tag, key, payload)` so a torn or
//! bit-flipped line is detected independently of every other line.
//! `payload` is the entry's rendered response payload — compact JSON,
//! so it never contains a newline and the line framing is unambiguous.
//!
//! Entries appear **least recently used first**, per cache, so
//! replaying them through `Lru::insert` on startup reconstructs both
//! the contents *and* the eviction order of the snapshotted cache.
//!
//! ## Guarantees
//!
//! * **Atomic save** — the snapshot is written to `<path>.tmp`,
//!   `sync_all`'d, then renamed over `path`. A crash mid-save leaves
//!   the previous snapshot intact; there is never a moment where
//!   `path` holds a partial file.
//! * **Tolerant load** — a missing file is an empty snapshot; a
//!   corrupt line (bad shape, bad hex, checksum mismatch) is skipped
//!   and counted, never fatal. A corrupt *header* distrusts the whole
//!   file (the format version is unknown) but still only counts, so a
//!   damaged snapshot can never prevent the daemon from starting.

use crate::key::KeyHasher;
use std::io::Write;
use std::path::Path;

/// Magic first line; bump the version when the row format changes.
const HEADER: &str = "phloem-cache v1";

/// Which cache a snapshot row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sel {
    /// The compile cache (`C` rows).
    Compile,
    /// The search/trace cache (`S` rows).
    Search,
}

impl Sel {
    fn tag(self) -> u8 {
        match self {
            Sel::Compile => b'C',
            Sel::Search => b'S',
        }
    }
}

/// Lifetime persistence counters, surfaced by the `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistCounters {
    /// Entries written across all saves.
    pub persisted: u64,
    /// Entries restored from snapshots at load time.
    pub restored: u64,
    /// Snapshot lines skipped as corrupt (checksum/shape/header).
    pub corrupt_skipped: u64,
}

/// Everything a save writes / a load returns: `(key, rendered payload)`
/// pairs per cache, least recently used first.
#[derive(Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Compile-cache entries.
    pub compile: Vec<(u64, String)>,
    /// Search/trace-cache entries.
    pub search: Vec<(u64, String)>,
}

impl Snapshot {
    /// Total entries across both caches.
    pub fn len(&self) -> usize {
        self.compile.len() + self.search.len()
    }

    /// True when the snapshot holds nothing.
    pub fn is_empty(&self) -> bool {
        self.compile.is_empty() && self.search.is_empty()
    }
}

/// A loaded snapshot plus how many lines had to be discarded.
#[derive(Debug, Default)]
pub struct Loaded {
    /// The surviving entries.
    pub snapshot: Snapshot,
    /// Corrupt lines skipped (0 on a clean file).
    pub corrupt_skipped: u64,
}

/// Per-line checksum: FNV-1a over the tag byte, the key, and the
/// payload text. Field order matters (it is part of the format).
fn line_check(sel: Sel, key: u64, payload: &str) -> u64 {
    let mut h = KeyHasher::new();
    h.bytes(&[sel.tag()]).u64(key).str(payload);
    h.finish()
}

/// Writes `snap` to `path` atomically (tmp + `sync_all` + rename).
/// Returns the number of entries written.
pub fn save(path: &Path, snap: &Snapshot) -> std::io::Result<u64> {
    let mut text = String::with_capacity(64 * (1 + snap.len()));
    text.push_str(HEADER);
    text.push('\n');
    let mut written = 0u64;
    for (sel, entries) in [(Sel::Compile, &snap.compile), (Sel::Search, &snap.search)] {
        for (key, payload) in entries {
            debug_assert!(!payload.contains('\n'), "payloads are compact JSON");
            let check = line_check(sel, *key, payload);
            text.push(sel.tag() as char);
            text.push_str(&format!(" {key:016x} {check:016x} "));
            text.push_str(payload);
            text.push('\n');
            written += 1;
        }
    }
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Loads `path`, skipping (and counting) corrupt lines. A missing file
/// is an empty snapshot; any other I/O failure is returned as-is.
/// Decoding is lossy on purpose: a bit-flip into invalid UTF-8 must
/// surface as a per-line checksum mismatch (counted corruption), not an
/// `InvalidData` error that throws the whole snapshot away.
pub fn load(path: &Path) -> std::io::Result<Loaded> {
    let text = match std::fs::read(path) {
        Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Loaded::default()),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    let mut out = Loaded::default();
    if lines.next() != Some(HEADER) {
        // Unknown version or damaged header: the row format cannot be
        // trusted, so the whole file is one corrupt unit.
        out.corrupt_skipped = 1;
        return Ok(out);
    }
    for line in lines {
        if line.is_empty() {
            continue; // trailing newline artifacts are not corruption
        }
        match parse_line(line) {
            Some((Sel::Compile, key, payload)) => out.snapshot.compile.push((key, payload)),
            Some((Sel::Search, key, payload)) => out.snapshot.search.push((key, payload)),
            None => out.corrupt_skipped += 1,
        }
    }
    Ok(out)
}

fn parse_line(line: &str) -> Option<(Sel, u64, String)> {
    let sel = match line.as_bytes().first()? {
        b'C' => Sel::Compile,
        b'S' => Sel::Search,
        _ => return None,
    };
    let rest = line.get(1..)?.strip_prefix(' ')?;
    let (key_hex, rest) = rest.split_once(' ')?;
    let (check_hex, payload) = rest.split_once(' ')?;
    if key_hex.len() != 16 || check_hex.len() != 16 {
        return None;
    }
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let check = u64::from_str_radix(check_hex, 16).ok()?;
    if line_check(sel, key, payload) != check {
        return None;
    }
    Some((sel, key, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("phloem-persist-test-{}-{name}", std::process::id()));
        p
    }

    fn sample() -> Snapshot {
        Snapshot {
            compile: vec![
                (0xdead_beef, r#"{"app":"bfs","stages":4}"#.to_string()),
                (7, r#"{"app":"cc","stages":2}"#.to_string()),
            ],
            search: vec![(42, r#"{"best_cuts":[3],"viable":2}"#.to_string())],
        }
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let path = temp_file("roundtrip");
        let snap = sample();
        assert_eq!(save(&path, &snap).unwrap(), 3);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.corrupt_skipped, 0);
        assert_eq!(loaded.snapshot, snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_snapshot() {
        let loaded = load(Path::new("/nonexistent/phloem-cache-nowhere")).unwrap();
        assert!(loaded.snapshot.is_empty());
        assert_eq!(loaded.corrupt_skipped, 0);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_counted_not_fatal() {
        let path = temp_file("corrupt");
        save(&path, &sample()).unwrap();
        // Flip one payload byte in the middle line; its checksum no
        // longer matches, but the neighbours must survive.
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    l.replace("\"cc\"", "\"CC\"")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, mangled).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.corrupt_skipped, 1);
        assert_eq!(loaded.snapshot.compile.len(), 1);
        assert_eq!(loaded.snapshot.search.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_and_garbage_rows_are_tolerated() {
        let path = temp_file("truncated");
        save(&path, &sample()).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 9); // tear the last line mid-payload
        text.push_str("\nnot a row at all\n");
        std::fs::write(&path, &text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.corrupt_skipped, 2);
        assert_eq!(loaded.snapshot.compile.len(), 2);
        assert!(loaded.snapshot.search.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_utf8_flip_is_counted_corruption_not_an_error() {
        let path = temp_file("nonutf8");
        save(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Stomp an invalid UTF-8 byte into the middle line's payload.
        let line_start = bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        bytes[line_start + 40] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.corrupt_skipped, 1);
        assert_eq!(loaded.snapshot.compile.len(), 1);
        assert_eq!(loaded.snapshot.search.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_header_distrusts_the_file_without_failing() {
        let path = temp_file("header");
        std::fs::write(&path, "phloem-cache v999\nC 00 00 {}\n").unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.snapshot.is_empty());
        assert_eq!(loaded.corrupt_skipped, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_under_replacement() {
        let path = temp_file("atomic");
        save(&path, &sample()).unwrap();
        let second = Snapshot {
            compile: vec![(1, "{}".to_string())],
            search: Vec::new(),
        };
        save(&path, &second).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.snapshot, second);
        assert!(
            !tmp_path(&path).exists(),
            "tmp file must not survive a completed save"
        );
        let _ = std::fs::remove_file(&path);
    }
}
