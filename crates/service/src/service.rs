//! The service core: request validation, content-addressed caching,
//! and batched execution over the shared host pool.
//!
//! ## Batch pipeline
//!
//! [`Service::handle_batch`] runs three phases:
//!
//! 1. **Probe** (sequential): parse and validate every line, compute
//!    cache keys, and probe the caches. Sequencing this phase makes
//!    hit/miss provenance deterministic — two identical cacheable
//!    requests in one batch probe in line order, so both read `miss`
//!    on a cold cache (the value is computed once and shared), and
//!    both read `hit` on a warm one. Duplicate misses are deduplicated
//!    by key so the expensive work runs exactly once per batch.
//! 2. **Compute** (parallel): every miss and every uncacheable request
//!    fans out over the pool. Searches run with `workers = 1` —
//!    batch-level parallelism already keeps the host busy — while
//!    `simulate_native` work *does* spawn a nested fleet (its stage
//!    threads) inside the pool task, through the pool's explicit
//!    nested-fleet path.
//! 3. **Insert + assemble** (sequential): successful cacheable results
//!    are inserted, and responses are rendered in request order.
//!    Cached payloads are stored as rendered-JSON fragments, so a hit
//!    is byte-identical to the miss that populated it (modulo the
//!    `id`/`cache` envelope fields) by construction.
//!
//! Errors are never cached: a trapped search or an illegal compile is
//! recomputed on the next request, so a transient budget failure does
//! not poison the cache — and a cancelled request (deadline or drain)
//! is an error like any other, so cancellation never poisons it
//! either.
//!
//! ## Robustness
//!
//! Three production concerns share this module (see `DESIGN.md` §10):
//!
//! * **Deadlines & cancellation** — every admitted work item runs
//!   under a child of the service-wide drain [`CancelToken`], with the
//!   request's `deadline_ms` armed on it. Simulations observe the
//!   token at watchdog round boundaries and trap as
//!   `Trap::Cancelled`, rendered as a structured `cancelled` error.
//! * **Admission control** — a bounded cost budget
//!   ([`ServiceConfig::max_inflight`]) counts estimated work units in
//!   flight across *all* concurrent batches; work beyond it is shed
//!   with a structured `overloaded` error carrying a `retry_after_ms`
//!   hint instead of queueing without bound.
//! * **Crash-safe persistence & drain** — rendered cache payloads
//!   snapshot to disk atomically ([`crate::persist`]) and reload on
//!   startup; [`Service::begin_drain`] rejects new work with a
//!   structured `draining` error while in-flight work finishes under
//!   a bounded grace window.

use crate::batch::{run_one, run_one_traced, PreparedInputs, SimRequest};
use crate::cache::{CacheCounters, Lru};
use crate::key::{self, KeyHasher};
use crate::persist::{self, PersistCounters, Snapshot};
use crate::proto::{parse, parse_request, Json, Op};
use phloem_benchsuite::{bfs, cc, prd, radii, spmm, Measurement, Variant};
use phloem_compiler::search::{
    search_profiled, CandidateProfile, ProfileOutcome, SearchError, SearchOptions,
};
use phloem_compiler::{compile_static, CompileOptions, PassConfig};
use phloem_ir::{Function, Trap};
use phloem_pool::{CancelToken, FleetStats, Pool};
use phloem_workloads::catalog::Scale;
use pipette_sim::{
    CancelScope, ChannelKind, CompiledPipeline, ExecBackend, MachineConfig, NativeConfig, RunStats,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Simulated machine every request runs on.
    pub machine: MachineConfig,
    /// Catalog scale for named inputs.
    pub scale: Scale,
    /// Host worker threads for batch fan-out.
    pub workers: usize,
    /// Compile-cache capacity (entries).
    pub compile_cache_cap: usize,
    /// Search/trace-cache capacity (entries).
    pub search_cache_cap: usize,
    /// Watchdog budget, in simulated cycles, applied to any request
    /// that does not set its own `cycle_cap`.
    pub default_cycle_cap: u64,
    /// Admission budget in estimated cost units (see `work_cost`): the
    /// most work the service lets execute at once across all
    /// concurrent batches. Work beyond it is shed with a structured
    /// `overloaded` error. A single item larger than the whole budget
    /// is still admitted when the service is otherwise idle, so no
    /// request is unservable by construction.
    pub max_inflight: u64,
    /// Fallback wall-clock deadline applied to any compute request
    /// that does not set its own `deadline_ms`. `None` means no
    /// deadline.
    pub default_deadline_ms: Option<u64>,
    /// Snapshot file for crash-safe cache persistence; loaded (with
    /// corrupt-entry tolerance) at construction, written by
    /// [`Service::persist_now`]. `None` disables persistence.
    pub cache_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            machine: MachineConfig::paper_1core(),
            scale: Scale::Small,
            workers: phloem_pool::default_workers(),
            compile_cache_cap: 256,
            search_cache_cap: 128,
            default_cycle_cap: 200_000_000,
            max_inflight: 256,
            default_deadline_ms: None,
            cache_path: None,
        }
    }
}

/// A cached compile result: the response payload plus the shareable
/// pre-validated pipeline (the `CompiledPipeline` hook — any number of
/// sessions can run it via `Session::run_compiled` without re-paying
/// bytecode compilation or pre-simulation validation).
pub struct CompileValue {
    /// Response payload fields, in render order.
    pub payload: Payload,
    /// The compiled, shareable pipeline. `None` for entries restored
    /// from a persisted snapshot: the response payload round-trips
    /// bit-identically, but the in-memory pipeline is rebuilt lazily
    /// on the next cold compile of the same program if ever needed.
    pub compiled: Option<Arc<CompiledPipeline>>,
}

/// Response payload fields (everything after the `id`/`op`/`ok`/`cache`
/// envelope), in render order.
pub type Payload = Vec<(String, Json)>;

/// Result of one `handle_batch` call.
pub struct BatchResult {
    /// One rendered JSON response per request line, in request order.
    pub responses: Vec<String>,
    /// True when the batch contained a `shutdown` request.
    pub shutdown: bool,
}

struct ErrResp {
    kind: &'static str,
    message: String,
}

enum Work {
    Compile {
        kernel: Function,
        app: String,
        opts: CompileOptions,
        stages: usize,
    },
    Simulate(SimRequest),
    SimulateNative {
        sim: SimRequest,
        native: NativeConfig,
    },
    Search {
        kernel: Function,
        app: String,
        input: String,
        passes: PassConfig,
        opts: SearchOptions,
    },
    Trace(SimRequest),
}

enum Output {
    Compile(Arc<CompileValue>),
    Payload(Arc<Payload>),
}

#[derive(Clone, Copy)]
enum CacheSel {
    Compile,
    Search,
}

enum Resolution {
    /// Fully rendered during the probe phase.
    Done(String),
    /// Waiting on compute slot `slot`.
    Pending {
        id: u64,
        op: Op,
        cache: &'static str,
        slot: usize,
    },
}

/// Per-batch mutable planning state: the admitted work list, its cache
/// keys and cancel tokens (all indexed by slot), in-batch dedup, and
/// the admission cost to release when the batch completes.
#[derive(Default)]
struct BatchState {
    works: Vec<Work>,
    work_keys: Vec<Option<(CacheSel, u64)>>,
    tokens: Vec<CancelToken>,
    pending_by_key: HashMap<u64, usize>,
    admitted: u64,
}

/// Estimated cost units one work item occupies in the admission
/// budget. Coarse by design: a search profiles `top_k` candidate
/// pipelines plus baselines, so it weighs roughly `top_k` simulates.
fn work_cost(w: &Work) -> u64 {
    match w {
        Work::Compile { .. } => 1,
        Work::Simulate(_) | Work::Trace(_) => 2,
        // Native runs finish in real time rather than simulated time,
        // but they occupy real OS threads while they do — same weight
        // as a simulate so a flood of them still sheds.
        Work::SimulateNative { .. } => 2,
        Work::Search { opts, .. } => 2 * (1 + opts.top_k as u64),
    }
}

/// Accumulated host-fleet scheduling counters across every batch the
/// service has run (surfaced by the `stats` op).
#[derive(Default)]
struct FleetAccum {
    batches: u64,
    steals: u64,
    stolen_tasks: u64,
    parks: u64,
    timeout_wakeups: u64,
    skipped: u64,
    per_worker_tasks: Vec<u64>,
}

impl FleetAccum {
    fn absorb(&mut self, s: &FleetStats) {
        self.batches += 1;
        self.steals += s.steals;
        self.stolen_tasks += s.stolen_tasks;
        self.parks += s.parks;
        self.timeout_wakeups += s.timeout_wakeups;
        self.skipped += s.skipped;
        if self.per_worker_tasks.len() < s.per_worker_tasks.len() {
            self.per_worker_tasks.resize(s.per_worker_tasks.len(), 0);
        }
        for (acc, n) in self.per_worker_tasks.iter_mut().zip(&s.per_worker_tasks) {
            *acc += n;
        }
    }
}

/// The compile-and-simulate service: two content-addressed caches, a
/// prepared-input store, and a host pool, shared across batches.
pub struct Service {
    cfg: ServiceConfig,
    pool: Pool,
    inputs: PreparedInputs,
    compile_cache: Mutex<Lru<u64, Arc<CompileValue>>>,
    search_cache: Mutex<Lru<u64, Arc<Payload>>>,
    /// Parent of every per-request token; firing it (drain budget
    /// expiry or a hard cancel) reaches all in-flight work at once.
    drain: CancelToken,
    /// Set by [`Service::begin_drain`]; new compute work is rejected.
    draining: AtomicBool,
    /// Admitted cost units currently executing, across all batches.
    inflight: Mutex<u64>,
    persist: Mutex<PersistCounters>,
    fleet: Mutex<FleetAccum>,
}

impl Service {
    /// A fresh service. Caches start cold unless
    /// [`ServiceConfig::cache_path`] names a readable snapshot, in
    /// which case surviving entries are restored (corrupt lines are
    /// skipped and counted, never fatal).
    pub fn new(cfg: ServiceConfig) -> Service {
        let svc = Service {
            pool: Pool::new(cfg.workers),
            inputs: PreparedInputs::new(cfg.scale),
            compile_cache: Mutex::new(Lru::new(cfg.compile_cache_cap)),
            search_cache: Mutex::new(Lru::new(cfg.search_cache_cap)),
            drain: CancelToken::new(),
            draining: AtomicBool::new(false),
            inflight: Mutex::new(0),
            persist: Mutex::new(PersistCounters::default()),
            fleet: Mutex::new(FleetAccum::default()),
            cfg,
        };
        if let Some(path) = svc.cfg.cache_path.clone() {
            svc.restore_from(&path);
        }
        svc
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Lifetime counters of the (compile, search/trace) caches.
    pub fn counters(&self) -> (CacheCounters, CacheCounters) {
        (
            self.compile_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .counters(),
            self.search_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .counters(),
        )
    }

    /// Lifetime persistence counters (saves, restores, corrupt skips).
    pub fn persist_counters(&self) -> PersistCounters {
        *self.persist.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Starts a graceful drain: new compute requests are rejected with
    /// a structured `draining` error, and every in-flight request's
    /// token inherits a deadline of `budget` from now — work that
    /// outlives the grace window is cancelled, answered, and never
    /// orphaned. Idempotent; the budget only tightens.
    pub fn begin_drain(&self, budget: Duration) {
        self.draining.store(true, Ordering::SeqCst);
        self.drain.arm_deadline(budget);
    }

    /// True once [`Service::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Immediately cancels all in-flight work (a drain with no grace).
    pub fn cancel_all(&self, reason: &str) {
        self.draining.store(true, Ordering::SeqCst);
        self.drain.cancel(reason);
    }

    /// Writes the cache snapshot to [`ServiceConfig::cache_path`]
    /// atomically (temp file + rename). Returns the number of entries
    /// written; `Ok(0)` and a no-op when persistence is disabled.
    pub fn persist_now(&self) -> std::io::Result<u64> {
        let Some(path) = &self.cfg.cache_path else {
            return Ok(0);
        };
        let snap = Snapshot {
            compile: self
                .compile_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .snapshot()
                .into_iter()
                .map(|(k, v)| (k, payload_text(&v.payload)))
                .collect(),
            search: self
                .search_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .snapshot()
                .into_iter()
                .map(|(k, p)| (k, payload_text(&p)))
                .collect(),
        };
        let written = persist::save(path, &snap)?;
        self.persist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .persisted += written;
        Ok(written)
    }

    /// Loads a snapshot into the caches; see [`Service::new`].
    fn restore_from(&self, path: &Path) {
        let loaded = match persist::load(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("phloem-service: cannot read cache snapshot {path:?}: {e}");
                return;
            }
        };
        let mut corrupt = loaded.corrupt_skipped;
        let mut restored = 0u64;
        {
            let mut cache = self.compile_cache.lock().unwrap_or_else(|e| e.into_inner());
            for (k, text) in loaded.snapshot.compile {
                match payload_from_text(&text) {
                    Some(payload) => {
                        cache.insert(
                            k,
                            Arc::new(CompileValue {
                                payload,
                                compiled: None,
                            }),
                        );
                        restored += 1;
                    }
                    None => corrupt += 1,
                }
            }
        }
        {
            let mut cache = self.search_cache.lock().unwrap_or_else(|e| e.into_inner());
            for (k, text) in loaded.snapshot.search {
                match payload_from_text(&text) {
                    Some(payload) => {
                        cache.insert(k, Arc::new(payload));
                        restored += 1;
                    }
                    None => corrupt += 1,
                }
            }
        }
        let mut p = self.persist.lock().unwrap_or_else(|e| e.into_inner());
        p.restored += restored;
        p.corrupt_skipped += corrupt;
    }

    /// Tries to reserve `cost` units of the admission budget. On
    /// refusal, returns a `retry_after_ms` hint that scales with the
    /// current load. An oversized item is admitted when the service is
    /// idle so no request is unservable.
    fn try_admit(&self, cost: u64) -> Result<(), u64> {
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if *inflight > 0 && *inflight + cost > self.cfg.max_inflight {
            return Err((25 * inflight.div_ceil(4)).clamp(25, 1000));
        }
        *inflight += cost;
        Ok(())
    }

    fn release(&self, cost: u64) {
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *inflight = inflight.saturating_sub(cost);
    }

    /// A per-request token: child of the drain token, with the
    /// request's wall-clock deadline armed.
    fn request_token(&self, deadline_ms: Option<u64>) -> CancelToken {
        let tok = self.drain.child();
        if let Some(ms) = deadline_ms {
            tok.arm_deadline(Duration::from_millis(ms));
        }
        tok
    }

    /// The `stats` op's payload: cache counters, accumulated fleet
    /// scheduling counters, persistence counters, and service state.
    fn stats_payload(&self) -> Payload {
        let (c, s) = self.counters();
        let f = self.fleet.lock().unwrap_or_else(|e| e.into_inner());
        let fleet = Json::Obj(vec![
            ("batches".to_string(), Json::u64(f.batches)),
            ("steals".to_string(), Json::u64(f.steals)),
            ("stolen_tasks".to_string(), Json::u64(f.stolen_tasks)),
            ("parks".to_string(), Json::u64(f.parks)),
            ("timeout_wakeups".to_string(), Json::u64(f.timeout_wakeups)),
            ("skipped".to_string(), Json::u64(f.skipped)),
            (
                "per_worker_tasks".to_string(),
                Json::Arr(f.per_worker_tasks.iter().map(|&n| Json::u64(n)).collect()),
            ),
        ]);
        drop(f);
        let p = self.persist_counters();
        let persistence = Json::Obj(vec![
            ("persisted".to_string(), Json::u64(p.persisted)),
            ("restored".to_string(), Json::u64(p.restored)),
            ("corrupt_skipped".to_string(), Json::u64(p.corrupt_skipped)),
        ]);
        let inflight = *self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        vec![
            ("compile".to_string(), counters_json(&c)),
            ("search".to_string(), counters_json(&s)),
            ("fleet".to_string(), fleet),
            ("persistence".to_string(), persistence),
            ("inflight".to_string(), Json::u64(inflight)),
            ("draining".to_string(), Json::Bool(self.is_draining())),
        ]
    }

    /// Handles one batch of request lines (each one JSON object).
    pub fn handle_batch(&self, lines: &[String]) -> BatchResult {
        let mut shutdown = false;
        let mut st = BatchState::default();
        let mut resolutions: Vec<Resolution> = Vec::new();
        let draining = self.is_draining();

        // Phase 1: parse, validate, probe (sequential — provenance and
        // counter updates happen in line order).
        for line in lines {
            let req = match parse_request(line) {
                Ok(r) => r,
                Err(e) => {
                    resolutions.push(Resolution::Done(render_error(
                        0, "parse", "bypass", "parse", &e,
                    )));
                    continue;
                }
            };
            // Compute ops are gated before they touch caches or the
            // admission budget: a draining service rejects them, and a
            // zero deadline is already expired by definition.
            let deadline = req.deadline_ms.or(self.cfg.default_deadline_ms);
            if !matches!(req.op, Op::Stats | Op::Shutdown) {
                if draining {
                    resolutions.push(Resolution::Done(render_error(
                        req.id,
                        req.op.name(),
                        "bypass",
                        "draining",
                        "service is draining; no new work is admitted",
                    )));
                    continue;
                }
                if deadline == Some(0) {
                    resolutions.push(Resolution::Done(render_error(
                        req.id,
                        req.op.name(),
                        "bypass",
                        "cancelled",
                        "deadline_ms is 0: the deadline expired before execution",
                    )));
                    continue;
                }
            }
            let r = match req.op {
                Op::Stats => Resolution::Done(render_ok(
                    req.id,
                    Op::Stats,
                    "bypass",
                    &self.stats_payload(),
                )),
                Op::Shutdown => {
                    shutdown = true;
                    Resolution::Done(render_ok(req.id, Op::Shutdown, "bypass", &[]))
                }
                Op::Simulate => match self.plan_simulate(&req) {
                    Ok(sim) => {
                        let work = Work::Simulate(sim);
                        let cost = work_cost(&work);
                        match self.try_admit(cost) {
                            Ok(()) => {
                                st.admitted += cost;
                                st.tokens.push(self.request_token(deadline));
                                st.works.push(work);
                                st.work_keys.push(None);
                                Resolution::Pending {
                                    id: req.id,
                                    op: Op::Simulate,
                                    cache: "bypass",
                                    slot: st.works.len() - 1,
                                }
                            }
                            Err(retry_ms) => Resolution::Done(render_overloaded(
                                req.id,
                                Op::Simulate.name(),
                                retry_ms,
                            )),
                        }
                    }
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Simulate.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::SimulateNative => match self.plan_simulate_native(&req) {
                    Ok(work) => {
                        let cost = work_cost(&work);
                        match self.try_admit(cost) {
                            Ok(()) => {
                                st.admitted += cost;
                                st.tokens.push(self.request_token(deadline));
                                st.works.push(work);
                                st.work_keys.push(None);
                                Resolution::Pending {
                                    id: req.id,
                                    op: Op::SimulateNative,
                                    cache: "bypass",
                                    slot: st.works.len() - 1,
                                }
                            }
                            Err(retry_ms) => Resolution::Done(render_overloaded(
                                req.id,
                                Op::SimulateNative.name(),
                                retry_ms,
                            )),
                        }
                    }
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::SimulateNative.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Compile => match self.plan_compile(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Compile,
                        CacheSel::Compile,
                        key,
                        work,
                        deadline,
                        &mut st,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Compile.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Search => match self.plan_search(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Search,
                        CacheSel::Search,
                        key,
                        work,
                        deadline,
                        &mut st,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Search.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Trace => match self.plan_trace(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Trace,
                        CacheSel::Search,
                        key,
                        work,
                        deadline,
                        &mut st,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Trace.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
            };
            resolutions.push(r);
        }

        // Phase 2: compute misses and uncacheable work in parallel,
        // each task under its own request token (ambient scope, so
        // every Session the work creates inherits it) and the whole
        // fleet under a drain child (so a drain skips queued tasks
        // instead of starting them).
        let batch_tok = self.drain.child();
        let (slots, fstats) = self.pool.run_cancellable(st.works.len(), &batch_tok, |i| {
            let _scope = CancelScope::enter(st.tokens[i].clone());
            self.execute(&st.works[i], &st.tokens[i])
        });
        self.release(st.admitted);
        if !st.works.is_empty() {
            self.fleet
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .absorb(&fstats);
        }
        let computed: Vec<Result<Output, ErrResp>> = slots
            .into_iter()
            .map(|slot| match slot {
                None => Err(ErrResp {
                    kind: "cancelled",
                    message: format!(
                        "cancelled before execution: {}",
                        nonempty(batch_tok.reason())
                    ),
                }),
                Some(Ok(r)) => r,
                Some(Err(panic)) => Err(ErrResp {
                    kind: "trap",
                    message: format!("host task panicked: {panic}"),
                }),
            })
            .collect();

        // Phase 3: insert successes, then render in request order.
        for (i, result) in computed.iter().enumerate() {
            if let (Some((sel, k)), Ok(out)) = (st.work_keys[i], result) {
                match (sel, out) {
                    (CacheSel::Compile, Output::Compile(v)) => self
                        .compile_cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(k, Arc::clone(v)),
                    (CacheSel::Search, Output::Payload(p)) => self
                        .search_cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(k, Arc::clone(p)),
                    _ => {}
                }
            }
        }
        let responses = resolutions
            .into_iter()
            .map(|r| match r {
                Resolution::Done(s) => s,
                Resolution::Pending {
                    id,
                    op,
                    cache,
                    slot,
                } => match &computed[slot] {
                    Ok(Output::Compile(v)) => render_ok(id, op, cache, &v.payload),
                    Ok(Output::Payload(p)) => render_ok(id, op, cache, p),
                    Err(e) => render_error(id, op.name(), cache, e.kind, &e.message),
                },
            })
            .collect();
        BatchResult {
            responses,
            shutdown,
        }
    }

    /// Probes a cache for `key`; on a hit renders immediately, on a
    /// miss admits and enqueues `work` (deduplicated by key within the
    /// batch — a duplicate rides on the already-admitted slot and its
    /// first requester's token). A miss the admission budget cannot
    /// take is shed as `overloaded`.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        id: u64,
        op: Op,
        sel: CacheSel,
        key: u64,
        work: Work,
        deadline_ms: Option<u64>,
        st: &mut BatchState,
    ) -> Resolution {
        let cached = match sel {
            CacheSel::Compile => self
                .compile_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
                .map(|v| render_ok(id, op, "hit", &v.payload)),
            CacheSel::Search => self
                .search_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
                .map(|p| render_ok(id, op, "hit", &p)),
        };
        if let Some(done) = cached {
            return Resolution::Done(done);
        }
        let slot = match st.pending_by_key.get(&key) {
            Some(&slot) => slot,
            None => {
                let cost = work_cost(&work);
                if let Err(retry_ms) = self.try_admit(cost) {
                    return Resolution::Done(render_overloaded(id, op.name(), retry_ms));
                }
                st.admitted += cost;
                st.tokens.push(self.request_token(deadline_ms));
                st.works.push(work);
                st.work_keys.push(Some((sel, key)));
                let slot = st.works.len() - 1;
                st.pending_by_key.insert(key, slot);
                slot
            }
        };
        Resolution::Pending {
            id,
            op,
            cache: "miss",
            slot,
        }
    }

    // ------------------------------------------------------------------
    // Request planning (validation + key derivation)
    // ------------------------------------------------------------------

    fn plan_compile(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let app = required(&req.app, "app")?;
        let kernel = app_kernel(&app).ok_or_else(|| format!("unknown app {app:?}"))?;
        let passes = parse_passes(req.passes.as_deref())?;
        let stages = req.stages.unwrap_or(4);
        let opts = self.compile_opts(passes);
        let mut h = KeyHasher::new();
        h.u64(1) // op tag
            .u64(key::program_digest(&kernel))
            .u64(key::compile_options_digest(&opts))
            .usize(stages)
            .u64(key::machine_config_digest(&self.cfg.machine));
        let k = h.finish();
        Ok((
            Work::Compile {
                kernel,
                app,
                opts,
                stages,
            },
            k,
        ))
    }

    fn plan_simulate(&self, req: &crate::proto::Request) -> Result<SimRequest, String> {
        let app = required(&req.app, "app")?;
        if app_kernel(&app).is_none() {
            return Err(format!("unknown app {app:?}"));
        }
        let input = required(&req.input, "input")?;
        let variant = self.parse_variant(req)?;
        Ok(SimRequest {
            app,
            variant,
            input,
            cycle_cap: Some(req.cycle_cap.unwrap_or(self.cfg.default_cycle_cap)),
        })
    }

    fn plan_simulate_native(&self, req: &crate::proto::Request) -> Result<Work, String> {
        let sim = self.plan_simulate(req)?;
        let channel = match req.channel.as_deref() {
            None => ChannelKind::Mpsc,
            Some(name) => ChannelKind::parse(name)
                .ok_or_else(|| format!("unknown channel backend {name:?}"))?,
        };
        Ok(Work::SimulateNative {
            sim,
            // `threads` doubles as the data-parallel width in
            // `plan_simulate`'s variant parsing; for the native op it is
            // the worker count (0 = one thread per stage).
            native: NativeConfig {
                channel,
                threads: req.threads.unwrap_or(0),
            },
        })
    }

    fn plan_search(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let app = required(&req.app, "app")?;
        let kernel = app_kernel(&app).ok_or_else(|| format!("unknown app {app:?}"))?;
        let input = required(&req.input, "input")?;
        let passes = parse_passes(req.passes.as_deref())?;
        let opts = SearchOptions {
            max_stages: req.max_stages.unwrap_or(3),
            top_k: req.top_k.unwrap_or(4),
            compile: self.compile_opts(passes),
            // Searches run inside pool tasks; the inner candidate sweep
            // is serial and the batch provides the parallelism (a
            // nested candidate fleet would only fight the batch for the
            // same cores).
            workers: 1,
            profile_cycle_cap: req.cycle_cap.unwrap_or(self.cfg.default_cycle_cap),
            retry_cap_factor: 2,
        };
        let mut h = KeyHasher::new();
        h.u64(2)
            .u64(key::program_digest(&kernel))
            .str(&input)
            .u64(key::search_options_digest(&opts))
            .u64(key::machine_config_digest(&self.cfg.machine));
        let k = h.finish();
        Ok((
            Work::Search {
                kernel,
                app,
                input,
                passes,
                opts,
            },
            k,
        ))
    }

    fn plan_trace(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let sim = self.plan_simulate(req)?;
        let kernel = app_kernel(&sim.app).expect("validated by plan_simulate");
        let mut h = KeyHasher::new();
        h.u64(3)
            .u64(key::program_digest(&kernel))
            .str(&sim.input)
            .u64(variant_digest(&sim.variant))
            .u64(sim.cycle_cap.unwrap_or(u64::MAX))
            .u64(key::machine_config_digest(&self.cfg.machine));
        Ok((Work::Trace(sim), h.finish()))
    }

    fn compile_opts(&self, passes: PassConfig) -> CompileOptions {
        let m = &self.cfg.machine;
        CompileOptions {
            passes,
            smt_threads: m.smt_threads,
            max_queues: m.max_queues,
            max_ras: m.ras_per_core,
            start_core: 0,
        }
    }

    fn parse_variant(&self, req: &crate::proto::Request) -> Result<Variant, String> {
        match req.variant.as_deref().unwrap_or("phloem") {
            "serial" => Ok(Variant::Serial),
            "manual" => Ok(Variant::Manual),
            "data-parallel" | "data_parallel" | "dp" => Ok(Variant::DataParallel(
                req.threads.unwrap_or(self.cfg.machine.smt_threads),
            )),
            "phloem" => Ok(Variant::Phloem {
                passes: parse_passes(req.passes.as_deref())?,
                stages: req.stages.unwrap_or(4),
                cuts: Vec::new(),
            }),
            other => Err(format!("unknown variant {other:?}")),
        }
    }

    // ------------------------------------------------------------------
    // Execution (runs inside pool tasks)
    // ------------------------------------------------------------------

    fn execute(&self, work: &Work, cancel: &CancelToken) -> Result<Output, ErrResp> {
        match work {
            Work::Compile {
                kernel,
                app,
                opts,
                stages,
            } => self.do_compile(kernel, app, opts, *stages),
            Work::Simulate(sim) => self.do_simulate(sim).map(|p| Output::Payload(Arc::new(p))),
            Work::SimulateNative { sim, native } => self
                .do_simulate_native(sim, *native)
                .map(|p| Output::Payload(Arc::new(p))),
            Work::Search {
                kernel,
                app,
                input,
                passes,
                opts,
            } => self
                .do_search(kernel, app, input, *passes, opts, cancel)
                .map(|p| Output::Payload(Arc::new(p))),
            Work::Trace(sim) => self.do_trace(sim).map(|p| Output::Payload(Arc::new(p))),
        }
    }

    fn do_compile(
        &self,
        kernel: &Function,
        app: &str,
        opts: &CompileOptions,
        stages: usize,
    ) -> Result<Output, ErrResp> {
        let pipeline = compile_static(kernel, stages, opts).map_err(|e| ErrResp {
            kind: "compile_error",
            message: e.to_string(),
        })?;
        let compiled = CompiledPipeline::new(&pipeline).map_err(trap_err)?;
        let compute = pipeline
            .stages
            .iter()
            .filter(|s| matches!(s.kind, phloem_ir::StageKind::Compute))
            .count();
        let payload = vec![
            (
                "program".to_string(),
                Json::str(format!("{:016x}", key::program_digest(kernel))),
            ),
            ("app".to_string(), Json::str(app)),
            ("passes".to_string(), Json::str(opts.passes.label())),
            (
                "stages".to_string(),
                Json::u64(pipeline.stages.len() as u64),
            ),
            ("compute_stages".to_string(), Json::u64(compute as u64)),
            (
                "ra_stages".to_string(),
                Json::u64((pipeline.stages.len() - compute) as u64),
            ),
            ("queues".to_string(), Json::u64(pipeline.num_queues as u64)),
        ];
        Ok(Output::Compile(Arc::new(CompileValue {
            payload,
            compiled: Some(Arc::new(compiled)),
        })))
    }

    fn do_simulate(&self, sim: &SimRequest) -> Result<Payload, ErrResp> {
        let m = run_one(&self.inputs, &self.cfg.machine, sim).map_err(trap_err)?;
        Ok(measurement_payload(&m))
    }

    /// Runs one request on the native thread backend. The ambient
    /// [`pipette_sim::BackendScope`] routes every session the app
    /// constructs onto real threads; the per-request cancel token is
    /// already ambient (the caller's `CancelScope`), so deadlines and
    /// drains reach the native run's park loop. The native fleet is a
    /// *nested* fleet inside this pool task — the pool's nested-fleet
    /// path (`phloem-pool`) makes that legal.
    fn do_simulate_native(
        &self,
        sim: &SimRequest,
        native: NativeConfig,
    ) -> Result<Payload, ErrResp> {
        let m = phloem_benchsuite::with_backend(ExecBackend::Native(native), || {
            run_one(&self.inputs, &self.cfg.machine, sim)
        })
        .map_err(trap_err)?;
        let mut payload = measurement_payload(&m);
        // Under the native backend the cycles slot carries wall-clock
        // nanoseconds; label the payload honestly and stamp the
        // native-relevant machine digest (timing-model fields excluded —
        // see `key::native_machine_config_digest`) so provenance groups
        // native results across timing configs.
        payload.push(("backend".to_string(), Json::str("native")));
        payload.push(("channel".to_string(), Json::str(native.channel.label())));
        payload.push(("threads".to_string(), Json::u64(native.threads as u64)));
        payload.push((
            "host_cores".to_string(),
            Json::u64(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ));
        payload.push((
            "machine".to_string(),
            Json::str(format!(
                "{:016x}",
                key::native_machine_config_digest(&self.cfg.machine)
            )),
        ));
        Ok(payload)
    }

    fn do_trace(&self, sim: &SimRequest) -> Result<Payload, ErrResp> {
        let (result, digest) = run_one_traced(&self.inputs, &self.cfg.machine, sim);
        let m = result.map_err(trap_err)?;
        let mut payload = measurement_payload(&m);
        payload.push(("events".to_string(), Json::u64(digest.events)));
        payload.push((
            "trace".to_string(),
            Json::str(format!("{:016x}", digest.digest)),
        ));
        Ok(payload)
    }

    fn do_search(
        &self,
        kernel: &Function,
        app: &str,
        input: &str,
        passes: PassConfig,
        opts: &SearchOptions,
        cancel: &CancelToken,
    ) -> Result<Payload, ErrResp> {
        let report = search_profiled(kernel, opts, |cuts, _pipe, budget| {
            let sim = SimRequest {
                app: app.to_string(),
                variant: Variant::Phloem {
                    passes,
                    stages: opts.max_stages,
                    cuts: cuts.to_vec(),
                },
                input: input.to_string(),
                cycle_cap: Some(budget.cycle_cap),
            };
            match run_one(&self.inputs, &self.cfg.machine, &sim) {
                Ok(m) => {
                    let profile = profile_from_stats(&m.stats);
                    (ProfileOutcome::Ok(m.cycles as f64), Some(profile))
                }
                Err(Trap::CycleLimit { .. }) | Err(Trap::Livelock { .. }) => {
                    (ProfileOutcome::TimedOut, None)
                }
                Err(t) => (ProfileOutcome::Trapped(t.to_string()), None),
            }
        })
        .map_err(|e| match e {
            SearchError::NoPipelines => ErrResp {
                kind: "no_pipelines",
                message: "no candidate pipeline compiles".to_string(),
            },
            // A cancelled search traps every candidate; report the
            // cancellation, not a misleading "nothing was viable".
            SearchError::NoViableCandidate { .. } if cancel.is_set() => ErrResp {
                kind: "cancelled",
                message: format!("search cancelled: {}", nonempty(cancel.reason())),
            },
            SearchError::NoViableCandidate { candidates } => ErrResp {
                kind: "no_viable_candidate",
                message: format!("all {} candidates failed to profile", candidates.len()),
            },
        })?;
        let best = &report.candidates[report.best];
        let viable = report
            .candidates
            .iter()
            .filter(|c| matches!(c.outcome, ProfileOutcome::Ok(_)))
            .count();
        let mut payload = vec![
            (
                "best_cuts".to_string(),
                Json::Arr(best.cuts.iter().map(|c| Json::u64(c.0 as u64)).collect()),
            ),
            (
                "total_stages".to_string(),
                Json::u64(best.total_stages as u64),
            ),
            (
                "compute_stages".to_string(),
                Json::u64(best.compute_stages as u64),
            ),
            (
                "candidates".to_string(),
                Json::u64(report.candidates.len() as u64),
            ),
            ("viable".to_string(), Json::u64(viable as u64)),
            (
                "train_cycles".to_string(),
                Json::Num(best.train_cycles().unwrap_or(f64::NAN)),
            ),
        ];
        if let Some(p) = &best.profile {
            payload.push(("profile".to_string(), profile_json(p)));
        }
        Ok(payload)
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn required(field: &Option<String>, name: &str) -> Result<String, String> {
    field
        .clone()
        .ok_or_else(|| format!("missing required field {name:?}"))
}

/// The benchmark kernel a request's `app` names.
pub fn app_kernel(app: &str) -> Option<Function> {
    match app {
        "bfs" => Some(bfs::kernel()),
        "cc" => Some(cc::kernel()),
        "prd" => Some(prd::scatter_kernel()),
        "radii" => Some(radii::kernel()),
        "spmm" => Some(spmm::kernel()),
        _ => None,
    }
}

/// Parses a pass-preset name; `None` means `all`.
pub fn parse_passes(name: Option<&str>) -> Result<PassConfig, String> {
    match name.map(|s| s.replace('_', "-")).as_deref() {
        None | Some("all") => Ok(PassConfig::all()),
        Some("queues-only") => Ok(PassConfig::queues_only()),
        Some("with-recompute") => Ok(PassConfig::with_recompute()),
        Some("with-cv") => Ok(PassConfig::with_cv()),
        Some("with-dce") => Ok(PassConfig::with_dce()),
        Some("with-handlers") => Ok(PassConfig::with_handlers()),
        Some("all-streaming") => Ok(PassConfig::all_streaming()),
        Some(other) => Err(format!("unknown pass preset {other:?}")),
    }
}

/// Digest of a benchmark variant for trace-cache keying.
fn variant_digest(v: &Variant) -> u64 {
    let mut h = KeyHasher::new();
    match v {
        Variant::Serial => {
            h.u64(0);
        }
        Variant::DataParallel(n) => {
            h.u64(1).usize(*n);
        }
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            h.u64(2)
                .u64(key::pass_config_digest(passes))
                .usize(*stages)
                .usize(cuts.len());
            for c in cuts {
                h.u64(c.0 as u64);
            }
        }
        Variant::Manual => {
            h.u64(3);
        }
    }
    h.finish()
}

fn trap_err(t: Trap) -> ErrResp {
    ErrResp {
        kind: match t {
            Trap::Cancelled { .. } => "cancelled",
            _ => "trap",
        },
        message: t.to_string(),
    }
}

/// Cancel reasons are empty only in pathological interleavings; keep
/// the rendered message self-describing anyway.
fn nonempty(reason: String) -> String {
    if reason.is_empty() {
        "cancelled".to_string()
    } else {
        reason
    }
}

/// Renders a cache payload as one compact JSON object (the persisted
/// form; [`payload_from_text`] inverts it via parse∘render identity).
fn payload_text(p: &Payload) -> String {
    Json::Obj(p.clone()).render()
}

/// Parses a persisted payload back into render-order fields. `None`
/// when the text is not a JSON object (counted as corrupt by the
/// restore path; checksummed snapshots make this unreachable short of
/// a hand-edited file).
fn payload_from_text(text: &str) -> Option<Payload> {
    match parse(text) {
        Ok(Json::Obj(pairs)) => Some(pairs),
        _ => None,
    }
}

fn measurement_payload(m: &Measurement) -> Payload {
    vec![
        ("variant".to_string(), Json::str(m.variant.clone())),
        ("input".to_string(), Json::str(m.input.clone())),
        ("cycles".to_string(), Json::u64(m.cycles)),
        ("invocations".to_string(), Json::u64(m.stats.invocations)),
        (
            "stats".to_string(),
            Json::str(format!("{:016x}", key::stats_digest(&m.stats))),
        ),
    ]
}

/// Builds a cycle-attribution profile from one run's statistics:
/// the critical stage is the one bounding the makespan, utilization is
/// non-stalled share of each stage's active window, and the dominant
/// stall is the largest stall class summed across stages.
pub fn profile_from_stats(stats: &RunStats) -> CandidateProfile {
    let critical_stage = stats
        .threads
        .iter()
        .max_by_key(|t| t.finish_time)
        .map(|t| t.name.clone())
        .unwrap_or_default();
    let stage_utilization = stats
        .threads
        .iter()
        .map(|t| {
            let stalls = t.queue_stall_cycles + t.backend_stall_cycles + t.frontend_stall_cycles;
            let util = if t.finish_time == 0 {
                0.0
            } else {
                1.0 - (stalls.min(t.finish_time) as f64 / t.finish_time as f64)
            };
            (t.name.clone(), util)
        })
        .collect();
    let classes: [(&str, u64); 4] = [
        (
            "queue-full",
            stats
                .threads
                .iter()
                .map(|t| t.queue_full_stall_cycles)
                .sum(),
        ),
        (
            "queue-empty",
            stats
                .threads
                .iter()
                .map(|t| t.queue_empty_stall_cycles)
                .sum(),
        ),
        (
            "backend",
            stats.threads.iter().map(|t| t.backend_stall_cycles).sum(),
        ),
        (
            "frontend",
            stats.threads.iter().map(|t| t.frontend_stall_cycles).sum(),
        ),
    ];
    // max_by_key keeps the *last* maximum; iterate in fixed order and
    // prefer the first on ties for a stable label.
    let dominant_stall = classes
        .iter()
        .rev()
        .max_by_key(|(_, c)| *c)
        .map(|(n, _)| n.to_string())
        .unwrap_or_default();
    CandidateProfile {
        critical_stage,
        stage_utilization,
        dominant_stall,
    }
}

fn profile_json(p: &CandidateProfile) -> Json {
    Json::Obj(vec![
        (
            "critical_stage".to_string(),
            Json::str(p.critical_stage.clone()),
        ),
        (
            "dominant_stall".to_string(),
            Json::str(p.dominant_stall.clone()),
        ),
        (
            "stage_utilization".to_string(),
            Json::Arr(
                p.stage_utilization
                    .iter()
                    .map(|(name, u)| {
                        Json::Arr(vec![
                            Json::str(name.clone()),
                            Json::Num((u * 1e4).round() / 1e4),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn counters_json(c: &CacheCounters) -> Json {
    Json::Obj(vec![
        ("hits".to_string(), Json::u64(c.hits)),
        ("misses".to_string(), Json::u64(c.misses)),
        ("insertions".to_string(), Json::u64(c.insertions)),
        ("evictions".to_string(), Json::u64(c.evictions)),
        (
            "hit_rate".to_string(),
            Json::Num((c.hit_rate() * 1e4).round() / 1e4),
        ),
    ])
}

fn render_ok(id: u64, op: Op, cache: &str, payload: &[(String, Json)]) -> String {
    let mut pairs = vec![
        ("id".to_string(), Json::u64(id)),
        ("op".to_string(), Json::str(op.name())),
        ("ok".to_string(), Json::Bool(true)),
        ("cache".to_string(), Json::str(cache)),
    ];
    pairs.extend(payload.iter().cloned());
    Json::Obj(pairs).render()
}

/// Renders the `overloaded` shed response: a structured error whose
/// object carries a `retry_after_ms` hint next to `kind`/`message`.
fn render_overloaded(id: u64, op: &str, retry_after_ms: u64) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::u64(id)),
        ("op".to_string(), Json::str(op)),
        ("ok".to_string(), Json::Bool(false)),
        ("cache".to_string(), Json::str("bypass")),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("kind".to_string(), Json::str("overloaded")),
                (
                    "message".to_string(),
                    Json::str("admission budget exhausted; retry after the hint"),
                ),
                ("retry_after_ms".to_string(), Json::u64(retry_after_ms)),
            ]),
        ),
    ])
    .render()
}

fn render_error(id: u64, op: &str, cache: &str, kind: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::u64(id)),
        ("op".to_string(), Json::str(op)),
        ("ok".to_string(), Json::Bool(false)),
        ("cache".to_string(), Json::str(cache)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("kind".to_string(), Json::str(kind)),
                ("message".to_string(), Json::str(message)),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_service() -> Service {
        Service::new(ServiceConfig {
            scale: Scale::Tiny,
            workers: 2,
            default_cycle_cap: 50_000_000,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn parse_and_validation_errors_are_structured() {
        let svc = tiny_service();
        let out = svc.handle_batch(&[
            "nonsense".to_string(),
            r#"{"id":1,"op":"compile"}"#.to_string(),
            r#"{"id":2,"op":"compile","app":"nosuch"}"#.to_string(),
            r#"{"id":3,"op":"simulate","app":"bfs","input":"internet-s","variant":"warp"}"#
                .to_string(),
        ]);
        assert_eq!(out.responses.len(), 4);
        assert!(!out.shutdown);
        assert!(out.responses[0].contains(r#""kind":"parse""#));
        assert!(out.responses[1].contains(r#""kind":"bad_request""#));
        assert!(out.responses[1].contains("missing required field"));
        assert!(out.responses[2].contains("unknown app"));
        assert!(out.responses[3].contains("unknown variant"));
    }

    #[test]
    fn compile_misses_then_hits_with_identical_payloads() {
        let svc = tiny_service();
        let req = r#"{"id":1,"op":"compile","app":"bfs","passes":"all"}"#.to_string();
        let cold = svc.handle_batch(std::slice::from_ref(&req));
        assert!(cold.responses[0].contains(r#""cache":"miss""#));
        let warm = svc.handle_batch(&[req]);
        assert!(warm.responses[0].contains(r#""cache":"hit""#));
        assert_eq!(
            cold.responses[0].replace(r#""cache":"miss""#, r#""cache":"hit""#),
            warm.responses[0]
        );
        let (c, _) = svc.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn duplicate_requests_in_one_batch_compute_once() {
        let svc = tiny_service();
        let req = r#"{"id":9,"op":"compile","app":"cc"}"#.to_string();
        let out = svc.handle_batch(&[req.clone(), req]);
        // Both probed a cold cache → both miss, but the work ran once.
        assert!(out.responses[0].contains(r#""cache":"miss""#));
        assert!(out.responses[1].contains(r#""cache":"miss""#));
        assert_eq!(out.responses[0], out.responses[1]);
        let (c, _) = svc.counters();
        assert_eq!((c.misses, c.insertions), (2, 1));
    }

    #[test]
    fn zero_deadline_is_cancelled_before_execution() {
        let svc = tiny_service();
        let out = svc.handle_batch(&[
            r#"{"id":1,"op":"simulate","app":"bfs","input":"internet-s","variant":"serial","deadline_ms":0}"#
                .to_string(),
            r#"{"id":2,"op":"compile","app":"bfs","deadline_ms":0}"#.to_string(),
        ]);
        for resp in &out.responses {
            assert!(resp.contains(r#""kind":"cancelled""#), "{resp}");
            assert!(resp.contains("deadline"), "{resp}");
        }
        // An expired deadline never touches the caches or the pool.
        let (c, s) = svc.counters();
        assert_eq!(c.misses + c.hits + s.misses + s.hits, 0);
    }

    #[test]
    fn overload_sheds_with_a_retry_hint() {
        let svc = Service::new(ServiceConfig {
            scale: Scale::Tiny,
            workers: 2,
            default_cycle_cap: 50_000_000,
            max_inflight: 1,
            ..ServiceConfig::default()
        });
        let out = svc.handle_batch(&[
            // Admitted despite cost > budget: the service is idle.
            r#"{"id":1,"op":"simulate","app":"bfs","input":"internet-s","variant":"serial"}"#
                .to_string(),
            // Shed: the budget is already over-committed.
            r#"{"id":2,"op":"simulate","app":"cc","input":"internet-s","variant":"serial"}"#
                .to_string(),
        ]);
        assert!(
            out.responses[0].contains(r#""ok":true"#),
            "{}",
            out.responses[0]
        );
        assert!(
            out.responses[1].contains(r#""kind":"overloaded""#),
            "{}",
            out.responses[1]
        );
        assert!(
            out.responses[1].contains(r#""retry_after_ms":"#),
            "{}",
            out.responses[1]
        );
        // The budget is released once the batch completes.
        let again = svc.handle_batch(&[
            r#"{"id":3,"op":"simulate","app":"cc","input":"internet-s","variant":"serial"}"#
                .to_string(),
        ]);
        assert!(
            again.responses[0].contains(r#""ok":true"#),
            "{}",
            again.responses[0]
        );
    }

    #[test]
    fn draining_rejects_compute_but_answers_stats_and_shutdown() {
        let svc = tiny_service();
        svc.begin_drain(std::time::Duration::from_secs(5));
        assert!(svc.is_draining());
        let out = svc.handle_batch(&[
            r#"{"id":1,"op":"compile","app":"bfs"}"#.to_string(),
            r#"{"id":2,"op":"stats"}"#.to_string(),
            r#"{"id":3,"op":"shutdown"}"#.to_string(),
        ]);
        assert!(
            out.responses[0].contains(r#""kind":"draining""#),
            "{}",
            out.responses[0]
        );
        assert!(
            out.responses[1].contains(r#""draining":true"#),
            "{}",
            out.responses[1]
        );
        assert!(
            out.responses[2].contains(r#""ok":true"#),
            "{}",
            out.responses[2]
        );
        assert!(out.shutdown);
    }

    #[test]
    fn hard_cancel_skips_queued_work_with_structured_errors() {
        let svc = tiny_service();
        svc.cancel_all("test shutdown");
        let out = svc.handle_batch(&[
            r#"{"id":1,"op":"simulate","app":"bfs","input":"internet-s","variant":"serial"}"#
                .to_string(),
        ]);
        // The draining gate rejects at plan time — the work never runs.
        assert!(
            out.responses[0].contains(r#""kind":"draining""#),
            "{}",
            out.responses[0]
        );
    }

    #[test]
    fn stats_surface_fleet_and_persistence_counters() {
        let svc = tiny_service();
        svc.handle_batch(&[
            r#"{"id":1,"op":"compile","app":"bfs"}"#.to_string(),
            r#"{"id":2,"op":"compile","app":"cc"}"#.to_string(),
        ]);
        let out = svc.handle_batch(&[r#"{"id":3,"op":"stats"}"#.to_string()]);
        let resp = &out.responses[0];
        for field in [
            r#""fleet":{"batches":1"#,
            r#""per_worker_tasks":["#,
            r#""skipped":0"#,
            r#""persistence":{"persisted":0,"restored":0,"corrupt_skipped":0}"#,
            r#""inflight":0"#,
            r#""draining":false"#,
        ] {
            assert!(resp.contains(field), "missing {field} in {resp}");
        }
    }

    #[test]
    fn cache_persists_and_restores_bit_identical_payloads() {
        let mut path = std::env::temp_dir();
        path.push(format!("phloem-service-snap-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            scale: Scale::Tiny,
            workers: 2,
            default_cycle_cap: 50_000_000,
            cache_path: Some(path.clone()),
            ..ServiceConfig::default()
        };
        let reqs = [
            r#"{"id":1,"op":"compile","app":"bfs"}"#.to_string(),
            r#"{"id":2,"op":"trace","app":"bfs","input":"internet-s","variant":"serial"}"#
                .to_string(),
        ];
        let first = Service::new(cfg.clone());
        let cold = first.handle_batch(&reqs);
        assert!(cold
            .responses
            .iter()
            .all(|r| r.contains(r#""cache":"miss""#)));
        let written = first.persist_now().unwrap();
        assert_eq!(written, 2);
        assert_eq!(first.persist_counters().persisted, 2);
        drop(first);

        // A "restarted" service on the same path answers warm hits
        // byte-identical to the cold responses (modulo provenance).
        let second = Service::new(cfg);
        assert_eq!(second.persist_counters().restored, 2);
        assert_eq!(second.persist_counters().corrupt_skipped, 0);
        let warm = second.handle_batch(&reqs);
        for (c, w) in cold.responses.iter().zip(&warm.responses) {
            assert!(w.contains(r#""cache":"hit""#), "{w}");
            assert_eq!(
                c.replace(r#""cache":"miss""#, r#""cache":"hit""#),
                *w,
                "restored payload must be bit-identical"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_is_reported_and_answered() {
        let svc = tiny_service();
        let out = svc.handle_batch(&[r#"{"id":5,"op":"shutdown"}"#.to_string()]);
        assert!(out.shutdown);
        assert!(out.responses[0].contains(r#""ok":true"#));
    }

    #[test]
    fn profile_from_stats_picks_critical_and_dominant() {
        use pipette_sim::ThreadStats;
        let stats = RunStats {
            threads: vec![
                ThreadStats {
                    name: "s0".into(),
                    finish_time: 100,
                    queue_full_stall_cycles: 30,
                    queue_stall_cycles: 30,
                    ..Default::default()
                },
                ThreadStats {
                    name: "s1".into(),
                    finish_time: 200,
                    backend_stall_cycles: 10,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let p = profile_from_stats(&stats);
        assert_eq!(p.critical_stage, "s1");
        assert_eq!(p.dominant_stall, "queue-full");
        assert!((p.stage_utilization[0].1 - 0.7).abs() < 1e-12);
        assert!((p.stage_utilization[1].1 - 0.95).abs() < 1e-12);
    }
}
