//! The service core: request validation, content-addressed caching,
//! and batched execution over the shared host pool.
//!
//! ## Batch pipeline
//!
//! [`Service::handle_batch`] runs three phases:
//!
//! 1. **Probe** (sequential): parse and validate every line, compute
//!    cache keys, and probe the caches. Sequencing this phase makes
//!    hit/miss provenance deterministic — two identical cacheable
//!    requests in one batch probe in line order, so both read `miss`
//!    on a cold cache (the value is computed once and shared), and
//!    both read `hit` on a warm one. Duplicate misses are deduplicated
//!    by key so the expensive work runs exactly once per batch.
//! 2. **Compute** (parallel): every miss and every uncacheable request
//!    fans out over the pool. Work inside a pool task never spawns a
//!    nested fleet — searches run with `workers = 1` — because fleets
//!    hold the pool's shared quiesce lock for their whole run and
//!    re-entrant acquisition is not a supported pattern; batch-level
//!    parallelism already keeps the host busy.
//! 3. **Insert + assemble** (sequential): successful cacheable results
//!    are inserted, and responses are rendered in request order.
//!    Cached payloads are stored as rendered-JSON fragments, so a hit
//!    is byte-identical to the miss that populated it (modulo the
//!    `id`/`cache` envelope fields) by construction.
//!
//! Errors are never cached: a trapped search or an illegal compile is
//! recomputed on the next request, so a transient budget failure does
//! not poison the cache.

use crate::batch::{run_one, run_one_traced, PreparedInputs, SimRequest};
use crate::cache::{CacheCounters, Lru};
use crate::key::{self, KeyHasher};
use crate::proto::{parse_request, Json, Op};
use phloem_benchsuite::{bfs, cc, prd, radii, spmm, Measurement, Variant};
use phloem_compiler::search::{
    search_profiled, CandidateProfile, ProfileOutcome, SearchError, SearchOptions,
};
use phloem_compiler::{compile_static, CompileOptions, PassConfig};
use phloem_ir::{Function, Trap};
use phloem_pool::Pool;
use phloem_workloads::catalog::Scale;
use pipette_sim::{CompiledPipeline, MachineConfig, RunStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Simulated machine every request runs on.
    pub machine: MachineConfig,
    /// Catalog scale for named inputs.
    pub scale: Scale,
    /// Host worker threads for batch fan-out.
    pub workers: usize,
    /// Compile-cache capacity (entries).
    pub compile_cache_cap: usize,
    /// Search/trace-cache capacity (entries).
    pub search_cache_cap: usize,
    /// Watchdog budget, in simulated cycles, applied to any request
    /// that does not set its own `cycle_cap`.
    pub default_cycle_cap: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            machine: MachineConfig::paper_1core(),
            scale: Scale::Small,
            workers: phloem_pool::default_workers(),
            compile_cache_cap: 256,
            search_cache_cap: 128,
            default_cycle_cap: 200_000_000,
        }
    }
}

/// A cached compile result: the response payload plus the shareable
/// pre-validated pipeline (the `CompiledPipeline` hook — any number of
/// sessions can run it via `Session::run_compiled` without re-paying
/// bytecode compilation or pre-simulation validation).
pub struct CompileValue {
    /// Response payload fields, in render order.
    pub payload: Payload,
    /// The compiled, shareable pipeline.
    pub compiled: Arc<CompiledPipeline>,
}

/// Response payload fields (everything after the `id`/`op`/`ok`/`cache`
/// envelope), in render order.
pub type Payload = Vec<(String, Json)>;

/// Result of one `handle_batch` call.
pub struct BatchResult {
    /// One rendered JSON response per request line, in request order.
    pub responses: Vec<String>,
    /// True when the batch contained a `shutdown` request.
    pub shutdown: bool,
}

struct ErrResp {
    kind: &'static str,
    message: String,
}

enum Work {
    Compile {
        kernel: Function,
        app: String,
        opts: CompileOptions,
        stages: usize,
    },
    Simulate(SimRequest),
    Search {
        kernel: Function,
        app: String,
        input: String,
        passes: PassConfig,
        opts: SearchOptions,
    },
    Trace(SimRequest),
}

enum Output {
    Compile(Arc<CompileValue>),
    Payload(Arc<Payload>),
}

#[derive(Clone, Copy)]
enum CacheSel {
    Compile,
    Search,
}

enum Resolution {
    /// Fully rendered during the probe phase.
    Done(String),
    /// Waiting on compute slot `slot`.
    Pending {
        id: u64,
        op: Op,
        cache: &'static str,
        slot: usize,
    },
}

/// The compile-and-simulate service: two content-addressed caches, a
/// prepared-input store, and a host pool, shared across batches.
pub struct Service {
    cfg: ServiceConfig,
    pool: Pool,
    inputs: PreparedInputs,
    compile_cache: Mutex<Lru<u64, Arc<CompileValue>>>,
    search_cache: Mutex<Lru<u64, Arc<Payload>>>,
}

impl Service {
    /// A fresh service with cold caches.
    pub fn new(cfg: ServiceConfig) -> Service {
        Service {
            pool: Pool::new(cfg.workers),
            inputs: PreparedInputs::new(cfg.scale),
            compile_cache: Mutex::new(Lru::new(cfg.compile_cache_cap)),
            search_cache: Mutex::new(Lru::new(cfg.search_cache_cap)),
            cfg,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Lifetime counters of the (compile, search/trace) caches.
    pub fn counters(&self) -> (CacheCounters, CacheCounters) {
        (
            self.compile_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .counters(),
            self.search_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .counters(),
        )
    }

    /// Handles one batch of request lines (each one JSON object).
    pub fn handle_batch(&self, lines: &[String]) -> BatchResult {
        let mut shutdown = false;
        let mut works: Vec<Work> = Vec::new();
        let mut work_keys: Vec<Option<(CacheSel, u64)>> = Vec::new();
        let mut pending_by_key: HashMap<u64, usize> = HashMap::new();
        let mut resolutions: Vec<Resolution> = Vec::new();

        // Phase 1: parse, validate, probe (sequential — provenance and
        // counter updates happen in line order).
        for line in lines {
            let req = match parse_request(line) {
                Ok(r) => r,
                Err(e) => {
                    resolutions.push(Resolution::Done(render_error(
                        0, "parse", "bypass", "parse", &e,
                    )));
                    continue;
                }
            };
            let r = match req.op {
                Op::Stats => {
                    let (c, s) = self.counters();
                    let payload = vec![
                        ("compile".to_string(), counters_json(&c)),
                        ("search".to_string(), counters_json(&s)),
                    ];
                    Resolution::Done(render_ok(req.id, Op::Stats, "bypass", &payload))
                }
                Op::Shutdown => {
                    shutdown = true;
                    Resolution::Done(render_ok(req.id, Op::Shutdown, "bypass", &[]))
                }
                Op::Simulate => match self.plan_simulate(&req) {
                    Ok(sim) => {
                        works.push(Work::Simulate(sim));
                        work_keys.push(None);
                        Resolution::Pending {
                            id: req.id,
                            op: Op::Simulate,
                            cache: "bypass",
                            slot: works.len() - 1,
                        }
                    }
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Simulate.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Compile => match self.plan_compile(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Compile,
                        CacheSel::Compile,
                        key,
                        work,
                        &mut works,
                        &mut work_keys,
                        &mut pending_by_key,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Compile.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Search => match self.plan_search(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Search,
                        CacheSel::Search,
                        key,
                        work,
                        &mut works,
                        &mut work_keys,
                        &mut pending_by_key,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Search.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
                Op::Trace => match self.plan_trace(&req) {
                    Ok((work, key)) => self.probe(
                        req.id,
                        Op::Trace,
                        CacheSel::Search,
                        key,
                        work,
                        &mut works,
                        &mut work_keys,
                        &mut pending_by_key,
                    ),
                    Err(msg) => Resolution::Done(render_error(
                        req.id,
                        Op::Trace.name(),
                        "bypass",
                        "bad_request",
                        &msg,
                    )),
                },
            };
            resolutions.push(r);
        }

        // Phase 2: compute misses and uncacheable work in parallel.
        let computed: Vec<Result<Output, ErrResp>> = self
            .pool
            .map(&works, |_, w| self.execute(w))
            .into_iter()
            .map(|slot| match slot {
                Ok(r) => r,
                Err(panic) => Err(ErrResp {
                    kind: "trap",
                    message: format!("host task panicked: {panic}"),
                }),
            })
            .collect();

        // Phase 3: insert successes, then render in request order.
        for (i, result) in computed.iter().enumerate() {
            if let (Some((sel, k)), Ok(out)) = (work_keys[i], result) {
                match (sel, out) {
                    (CacheSel::Compile, Output::Compile(v)) => self
                        .compile_cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(k, Arc::clone(v)),
                    (CacheSel::Search, Output::Payload(p)) => self
                        .search_cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(k, Arc::clone(p)),
                    _ => {}
                }
            }
        }
        let responses = resolutions
            .into_iter()
            .map(|r| match r {
                Resolution::Done(s) => s,
                Resolution::Pending {
                    id,
                    op,
                    cache,
                    slot,
                } => match &computed[slot] {
                    Ok(Output::Compile(v)) => render_ok(id, op, cache, &v.payload),
                    Ok(Output::Payload(p)) => render_ok(id, op, cache, p),
                    Err(e) => render_error(id, op.name(), cache, e.kind, &e.message),
                },
            })
            .collect();
        BatchResult {
            responses,
            shutdown,
        }
    }

    /// Probes a cache for `key`; on a hit renders immediately, on a
    /// miss enqueues `work` (deduplicated by key within the batch).
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        id: u64,
        op: Op,
        sel: CacheSel,
        key: u64,
        work: Work,
        works: &mut Vec<Work>,
        work_keys: &mut Vec<Option<(CacheSel, u64)>>,
        pending_by_key: &mut HashMap<u64, usize>,
    ) -> Resolution {
        let cached = match sel {
            CacheSel::Compile => self
                .compile_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
                .map(|v| render_ok(id, op, "hit", &v.payload)),
            CacheSel::Search => self
                .search_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
                .map(|p| render_ok(id, op, "hit", &p)),
        };
        if let Some(done) = cached {
            return Resolution::Done(done);
        }
        let slot = *pending_by_key.entry(key).or_insert_with(|| {
            works.push(work);
            work_keys.push(Some((sel, key)));
            works.len() - 1
        });
        Resolution::Pending {
            id,
            op,
            cache: "miss",
            slot,
        }
    }

    // ------------------------------------------------------------------
    // Request planning (validation + key derivation)
    // ------------------------------------------------------------------

    fn plan_compile(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let app = required(&req.app, "app")?;
        let kernel = app_kernel(&app).ok_or_else(|| format!("unknown app {app:?}"))?;
        let passes = parse_passes(req.passes.as_deref())?;
        let stages = req.stages.unwrap_or(4);
        let opts = self.compile_opts(passes);
        let mut h = KeyHasher::new();
        h.u64(1) // op tag
            .u64(key::program_digest(&kernel))
            .u64(key::compile_options_digest(&opts))
            .usize(stages)
            .u64(key::machine_config_digest(&self.cfg.machine));
        let k = h.finish();
        Ok((
            Work::Compile {
                kernel,
                app,
                opts,
                stages,
            },
            k,
        ))
    }

    fn plan_simulate(&self, req: &crate::proto::Request) -> Result<SimRequest, String> {
        let app = required(&req.app, "app")?;
        if app_kernel(&app).is_none() {
            return Err(format!("unknown app {app:?}"));
        }
        let input = required(&req.input, "input")?;
        let variant = self.parse_variant(req)?;
        Ok(SimRequest {
            app,
            variant,
            input,
            cycle_cap: Some(req.cycle_cap.unwrap_or(self.cfg.default_cycle_cap)),
        })
    }

    fn plan_search(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let app = required(&req.app, "app")?;
        let kernel = app_kernel(&app).ok_or_else(|| format!("unknown app {app:?}"))?;
        let input = required(&req.input, "input")?;
        let passes = parse_passes(req.passes.as_deref())?;
        let opts = SearchOptions {
            max_stages: req.max_stages.unwrap_or(3),
            top_k: req.top_k.unwrap_or(4),
            compile: self.compile_opts(passes),
            // Searches run inside pool tasks; nested fleets are not a
            // supported pattern (see the module docs), so the inner
            // candidate sweep is serial and the batch provides the
            // parallelism.
            workers: 1,
            profile_cycle_cap: req.cycle_cap.unwrap_or(self.cfg.default_cycle_cap),
            retry_cap_factor: 2,
        };
        let mut h = KeyHasher::new();
        h.u64(2)
            .u64(key::program_digest(&kernel))
            .str(&input)
            .u64(key::search_options_digest(&opts))
            .u64(key::machine_config_digest(&self.cfg.machine));
        let k = h.finish();
        Ok((
            Work::Search {
                kernel,
                app,
                input,
                passes,
                opts,
            },
            k,
        ))
    }

    fn plan_trace(&self, req: &crate::proto::Request) -> Result<(Work, u64), String> {
        let sim = self.plan_simulate(req)?;
        let kernel = app_kernel(&sim.app).expect("validated by plan_simulate");
        let mut h = KeyHasher::new();
        h.u64(3)
            .u64(key::program_digest(&kernel))
            .str(&sim.input)
            .u64(variant_digest(&sim.variant))
            .u64(sim.cycle_cap.unwrap_or(u64::MAX))
            .u64(key::machine_config_digest(&self.cfg.machine));
        Ok((Work::Trace(sim), h.finish()))
    }

    fn compile_opts(&self, passes: PassConfig) -> CompileOptions {
        let m = &self.cfg.machine;
        CompileOptions {
            passes,
            smt_threads: m.smt_threads,
            max_queues: m.max_queues,
            max_ras: m.ras_per_core,
            start_core: 0,
        }
    }

    fn parse_variant(&self, req: &crate::proto::Request) -> Result<Variant, String> {
        match req.variant.as_deref().unwrap_or("phloem") {
            "serial" => Ok(Variant::Serial),
            "manual" => Ok(Variant::Manual),
            "data-parallel" | "data_parallel" | "dp" => Ok(Variant::DataParallel(
                req.threads.unwrap_or(self.cfg.machine.smt_threads),
            )),
            "phloem" => Ok(Variant::Phloem {
                passes: parse_passes(req.passes.as_deref())?,
                stages: req.stages.unwrap_or(4),
                cuts: Vec::new(),
            }),
            other => Err(format!("unknown variant {other:?}")),
        }
    }

    // ------------------------------------------------------------------
    // Execution (runs inside pool tasks)
    // ------------------------------------------------------------------

    fn execute(&self, work: &Work) -> Result<Output, ErrResp> {
        match work {
            Work::Compile {
                kernel,
                app,
                opts,
                stages,
            } => self.do_compile(kernel, app, opts, *stages),
            Work::Simulate(sim) => self.do_simulate(sim).map(|p| Output::Payload(Arc::new(p))),
            Work::Search {
                kernel,
                app,
                input,
                passes,
                opts,
            } => self
                .do_search(kernel, app, input, *passes, opts)
                .map(|p| Output::Payload(Arc::new(p))),
            Work::Trace(sim) => self.do_trace(sim).map(|p| Output::Payload(Arc::new(p))),
        }
    }

    fn do_compile(
        &self,
        kernel: &Function,
        app: &str,
        opts: &CompileOptions,
        stages: usize,
    ) -> Result<Output, ErrResp> {
        let pipeline = compile_static(kernel, stages, opts).map_err(|e| ErrResp {
            kind: "compile_error",
            message: e.to_string(),
        })?;
        let compiled = CompiledPipeline::new(&pipeline).map_err(|t| ErrResp {
            kind: "trap",
            message: t.to_string(),
        })?;
        let compute = pipeline
            .stages
            .iter()
            .filter(|s| matches!(s.kind, phloem_ir::StageKind::Compute))
            .count();
        let payload = vec![
            (
                "program".to_string(),
                Json::str(format!("{:016x}", key::program_digest(kernel))),
            ),
            ("app".to_string(), Json::str(app)),
            ("passes".to_string(), Json::str(opts.passes.label())),
            (
                "stages".to_string(),
                Json::u64(pipeline.stages.len() as u64),
            ),
            ("compute_stages".to_string(), Json::u64(compute as u64)),
            (
                "ra_stages".to_string(),
                Json::u64((pipeline.stages.len() - compute) as u64),
            ),
            ("queues".to_string(), Json::u64(pipeline.num_queues as u64)),
        ];
        Ok(Output::Compile(Arc::new(CompileValue {
            payload,
            compiled: Arc::new(compiled),
        })))
    }

    fn do_simulate(&self, sim: &SimRequest) -> Result<Payload, ErrResp> {
        let m = run_one(&self.inputs, &self.cfg.machine, sim).map_err(trap_err)?;
        Ok(measurement_payload(&m))
    }

    fn do_trace(&self, sim: &SimRequest) -> Result<Payload, ErrResp> {
        let (result, digest) = run_one_traced(&self.inputs, &self.cfg.machine, sim);
        let m = result.map_err(trap_err)?;
        let mut payload = measurement_payload(&m);
        payload.push(("events".to_string(), Json::u64(digest.events)));
        payload.push((
            "trace".to_string(),
            Json::str(format!("{:016x}", digest.digest)),
        ));
        Ok(payload)
    }

    fn do_search(
        &self,
        kernel: &Function,
        app: &str,
        input: &str,
        passes: PassConfig,
        opts: &SearchOptions,
    ) -> Result<Payload, ErrResp> {
        let report = search_profiled(kernel, opts, |cuts, _pipe, budget| {
            let sim = SimRequest {
                app: app.to_string(),
                variant: Variant::Phloem {
                    passes,
                    stages: opts.max_stages,
                    cuts: cuts.to_vec(),
                },
                input: input.to_string(),
                cycle_cap: Some(budget.cycle_cap),
            };
            match run_one(&self.inputs, &self.cfg.machine, &sim) {
                Ok(m) => {
                    let profile = profile_from_stats(&m.stats);
                    (ProfileOutcome::Ok(m.cycles as f64), Some(profile))
                }
                Err(Trap::CycleLimit { .. }) | Err(Trap::Livelock { .. }) => {
                    (ProfileOutcome::TimedOut, None)
                }
                Err(t) => (ProfileOutcome::Trapped(t.to_string()), None),
            }
        })
        .map_err(|e| match e {
            SearchError::NoPipelines => ErrResp {
                kind: "no_pipelines",
                message: "no candidate pipeline compiles".to_string(),
            },
            SearchError::NoViableCandidate { candidates } => ErrResp {
                kind: "no_viable_candidate",
                message: format!("all {} candidates failed to profile", candidates.len()),
            },
        })?;
        let best = &report.candidates[report.best];
        let viable = report
            .candidates
            .iter()
            .filter(|c| matches!(c.outcome, ProfileOutcome::Ok(_)))
            .count();
        let mut payload = vec![
            (
                "best_cuts".to_string(),
                Json::Arr(best.cuts.iter().map(|c| Json::u64(c.0 as u64)).collect()),
            ),
            (
                "total_stages".to_string(),
                Json::u64(best.total_stages as u64),
            ),
            (
                "compute_stages".to_string(),
                Json::u64(best.compute_stages as u64),
            ),
            (
                "candidates".to_string(),
                Json::u64(report.candidates.len() as u64),
            ),
            ("viable".to_string(), Json::u64(viable as u64)),
            (
                "train_cycles".to_string(),
                Json::Num(best.train_cycles().unwrap_or(f64::NAN)),
            ),
        ];
        if let Some(p) = &best.profile {
            payload.push(("profile".to_string(), profile_json(p)));
        }
        Ok(payload)
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn required(field: &Option<String>, name: &str) -> Result<String, String> {
    field
        .clone()
        .ok_or_else(|| format!("missing required field {name:?}"))
}

/// The benchmark kernel a request's `app` names.
pub fn app_kernel(app: &str) -> Option<Function> {
    match app {
        "bfs" => Some(bfs::kernel()),
        "cc" => Some(cc::kernel()),
        "prd" => Some(prd::scatter_kernel()),
        "radii" => Some(radii::kernel()),
        "spmm" => Some(spmm::kernel()),
        _ => None,
    }
}

/// Parses a pass-preset name; `None` means `all`.
pub fn parse_passes(name: Option<&str>) -> Result<PassConfig, String> {
    match name.map(|s| s.replace('_', "-")).as_deref() {
        None | Some("all") => Ok(PassConfig::all()),
        Some("queues-only") => Ok(PassConfig::queues_only()),
        Some("with-recompute") => Ok(PassConfig::with_recompute()),
        Some("with-cv") => Ok(PassConfig::with_cv()),
        Some("with-dce") => Ok(PassConfig::with_dce()),
        Some("with-handlers") => Ok(PassConfig::with_handlers()),
        Some("all-streaming") => Ok(PassConfig::all_streaming()),
        Some(other) => Err(format!("unknown pass preset {other:?}")),
    }
}

/// Digest of a benchmark variant for trace-cache keying.
fn variant_digest(v: &Variant) -> u64 {
    let mut h = KeyHasher::new();
    match v {
        Variant::Serial => {
            h.u64(0);
        }
        Variant::DataParallel(n) => {
            h.u64(1).usize(*n);
        }
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            h.u64(2)
                .u64(key::pass_config_digest(passes))
                .usize(*stages)
                .usize(cuts.len());
            for c in cuts {
                h.u64(c.0 as u64);
            }
        }
        Variant::Manual => {
            h.u64(3);
        }
    }
    h.finish()
}

fn trap_err(t: Trap) -> ErrResp {
    ErrResp {
        kind: "trap",
        message: t.to_string(),
    }
}

fn measurement_payload(m: &Measurement) -> Payload {
    vec![
        ("variant".to_string(), Json::str(m.variant.clone())),
        ("input".to_string(), Json::str(m.input.clone())),
        ("cycles".to_string(), Json::u64(m.cycles)),
        ("invocations".to_string(), Json::u64(m.stats.invocations)),
        (
            "stats".to_string(),
            Json::str(format!("{:016x}", key::stats_digest(&m.stats))),
        ),
    ]
}

/// Builds a cycle-attribution profile from one run's statistics:
/// the critical stage is the one bounding the makespan, utilization is
/// non-stalled share of each stage's active window, and the dominant
/// stall is the largest stall class summed across stages.
pub fn profile_from_stats(stats: &RunStats) -> CandidateProfile {
    let critical_stage = stats
        .threads
        .iter()
        .max_by_key(|t| t.finish_time)
        .map(|t| t.name.clone())
        .unwrap_or_default();
    let stage_utilization = stats
        .threads
        .iter()
        .map(|t| {
            let stalls = t.queue_stall_cycles + t.backend_stall_cycles + t.frontend_stall_cycles;
            let util = if t.finish_time == 0 {
                0.0
            } else {
                1.0 - (stalls.min(t.finish_time) as f64 / t.finish_time as f64)
            };
            (t.name.clone(), util)
        })
        .collect();
    let classes: [(&str, u64); 4] = [
        (
            "queue-full",
            stats
                .threads
                .iter()
                .map(|t| t.queue_full_stall_cycles)
                .sum(),
        ),
        (
            "queue-empty",
            stats
                .threads
                .iter()
                .map(|t| t.queue_empty_stall_cycles)
                .sum(),
        ),
        (
            "backend",
            stats.threads.iter().map(|t| t.backend_stall_cycles).sum(),
        ),
        (
            "frontend",
            stats.threads.iter().map(|t| t.frontend_stall_cycles).sum(),
        ),
    ];
    // max_by_key keeps the *last* maximum; iterate in fixed order and
    // prefer the first on ties for a stable label.
    let dominant_stall = classes
        .iter()
        .rev()
        .max_by_key(|(_, c)| *c)
        .map(|(n, _)| n.to_string())
        .unwrap_or_default();
    CandidateProfile {
        critical_stage,
        stage_utilization,
        dominant_stall,
    }
}

fn profile_json(p: &CandidateProfile) -> Json {
    Json::Obj(vec![
        (
            "critical_stage".to_string(),
            Json::str(p.critical_stage.clone()),
        ),
        (
            "dominant_stall".to_string(),
            Json::str(p.dominant_stall.clone()),
        ),
        (
            "stage_utilization".to_string(),
            Json::Arr(
                p.stage_utilization
                    .iter()
                    .map(|(name, u)| {
                        Json::Arr(vec![
                            Json::str(name.clone()),
                            Json::Num((u * 1e4).round() / 1e4),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn counters_json(c: &CacheCounters) -> Json {
    Json::Obj(vec![
        ("hits".to_string(), Json::u64(c.hits)),
        ("misses".to_string(), Json::u64(c.misses)),
        ("insertions".to_string(), Json::u64(c.insertions)),
        ("evictions".to_string(), Json::u64(c.evictions)),
        (
            "hit_rate".to_string(),
            Json::Num((c.hit_rate() * 1e4).round() / 1e4),
        ),
    ])
}

fn render_ok(id: u64, op: Op, cache: &str, payload: &[(String, Json)]) -> String {
    let mut pairs = vec![
        ("id".to_string(), Json::u64(id)),
        ("op".to_string(), Json::str(op.name())),
        ("ok".to_string(), Json::Bool(true)),
        ("cache".to_string(), Json::str(cache)),
    ];
    pairs.extend(payload.iter().cloned());
    Json::Obj(pairs).render()
}

fn render_error(id: u64, op: &str, cache: &str, kind: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::u64(id)),
        ("op".to_string(), Json::str(op)),
        ("ok".to_string(), Json::Bool(false)),
        ("cache".to_string(), Json::str(cache)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("kind".to_string(), Json::str(kind)),
                ("message".to_string(), Json::str(message)),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_service() -> Service {
        Service::new(ServiceConfig {
            scale: Scale::Tiny,
            workers: 2,
            default_cycle_cap: 50_000_000,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn parse_and_validation_errors_are_structured() {
        let svc = tiny_service();
        let out = svc.handle_batch(&[
            "nonsense".to_string(),
            r#"{"id":1,"op":"compile"}"#.to_string(),
            r#"{"id":2,"op":"compile","app":"nosuch"}"#.to_string(),
            r#"{"id":3,"op":"simulate","app":"bfs","input":"internet-s","variant":"warp"}"#
                .to_string(),
        ]);
        assert_eq!(out.responses.len(), 4);
        assert!(!out.shutdown);
        assert!(out.responses[0].contains(r#""kind":"parse""#));
        assert!(out.responses[1].contains(r#""kind":"bad_request""#));
        assert!(out.responses[1].contains("missing required field"));
        assert!(out.responses[2].contains("unknown app"));
        assert!(out.responses[3].contains("unknown variant"));
    }

    #[test]
    fn compile_misses_then_hits_with_identical_payloads() {
        let svc = tiny_service();
        let req = r#"{"id":1,"op":"compile","app":"bfs","passes":"all"}"#.to_string();
        let cold = svc.handle_batch(std::slice::from_ref(&req));
        assert!(cold.responses[0].contains(r#""cache":"miss""#));
        let warm = svc.handle_batch(&[req]);
        assert!(warm.responses[0].contains(r#""cache":"hit""#));
        assert_eq!(
            cold.responses[0].replace(r#""cache":"miss""#, r#""cache":"hit""#),
            warm.responses[0]
        );
        let (c, _) = svc.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn duplicate_requests_in_one_batch_compute_once() {
        let svc = tiny_service();
        let req = r#"{"id":9,"op":"compile","app":"cc"}"#.to_string();
        let out = svc.handle_batch(&[req.clone(), req]);
        // Both probed a cold cache → both miss, but the work ran once.
        assert!(out.responses[0].contains(r#""cache":"miss""#));
        assert!(out.responses[1].contains(r#""cache":"miss""#));
        assert_eq!(out.responses[0], out.responses[1]);
        let (c, _) = svc.counters();
        assert_eq!((c.misses, c.insertions), (2, 1));
    }

    #[test]
    fn shutdown_is_reported_and_answered() {
        let svc = tiny_service();
        let out = svc.handle_batch(&[r#"{"id":5,"op":"shutdown"}"#.to_string()]);
        assert!(out.shutdown);
        assert!(out.responses[0].contains(r#""ok":true"#));
    }

    #[test]
    fn profile_from_stats_picks_critical_and_dominant() {
        use pipette_sim::ThreadStats;
        let stats = RunStats {
            threads: vec![
                ThreadStats {
                    name: "s0".into(),
                    finish_time: 100,
                    queue_full_stall_cycles: 30,
                    queue_stall_cycles: 30,
                    ..Default::default()
                },
                ThreadStats {
                    name: "s1".into(),
                    finish_time: 200,
                    backend_stall_cycles: 10,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let p = profile_from_stats(&stats);
        assert_eq!(p.critical_stage, "s1");
        assert_eq!(p.dominant_stall, "queue-full");
        assert!((p.stage_utilization[0].1 - 0.7).abs() < 1e-12);
        assert!((p.stage_utilization[1].1 - 0.95).abs() < 1e-12);
    }
}
