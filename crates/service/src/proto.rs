//! The `phloemd` wire protocol: newline-delimited JSON, hand-rolled.
//!
//! The workspace's `serde` is an offline no-op shim (derives emit empty
//! impls), so this module carries its own minimal JSON: a recursive-
//! descent parser and a deterministic renderer over a small [`Json`]
//! tree. Objects preserve insertion order (a `Vec` of pairs, not a
//! map), so a response renders byte-identically every time — the
//! property the cache bit-identity tests and the serve bench's
//! replay-equality check both lean on.
//!
//! One request per line; a **blank line ends a batch** (the daemon
//! answers each batch before reading the next, so a client can observe
//! warm-cache behaviour within a single connection).

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (every integer the protocol carries
/// fits in the 53-bit mantissa; cycle counts are capped far below it).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience `u64` constructor.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `usize`, via [`Json::as_u64`].
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// Renders compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates collapse to the replacement
                            // character; the protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.b[self.i..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Request operations the service understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Compile an app kernel under a pass preset; cached.
    Compile,
    /// Run one benchmark variant on one input; uncached (`bypass`).
    Simulate,
    /// Run one benchmark variant on the native thread backend (real OS
    /// threads, bounded channels); uncached (`bypass`) — the payload
    /// carries wall-clock time, which is not content-addressable.
    SimulateNative,
    /// PGO candidate search on one input; cached.
    Search,
    /// Traced run producing the canonical event-stream digest; cached.
    Trace,
    /// Report cache counters; uncached.
    Stats,
    /// Ask the daemon to exit after this batch.
    Shutdown,
}

impl Op {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Compile => "compile",
            Op::Simulate => "simulate",
            Op::SimulateNative => "simulate_native",
            Op::Search => "search",
            Op::Trace => "trace",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One parsed request line. Fields beyond `id`/`op` are optional at the
/// protocol layer; the service validates per-op requirements and
/// answers a structured `bad_request` error rather than dropping the
/// line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Benchmark app: `bfs`, `cc`, `prd`, `radii`, `spmm`.
    pub app: Option<String>,
    /// Named workload input (see `phloem-workloads`' catalog).
    pub input: Option<String>,
    /// Simulate variant: `serial`, `data-parallel`, `phloem`, `manual`.
    pub variant: Option<String>,
    /// Pass preset: `all`, `queues-only`, `with-recompute`, `with-cv`,
    /// `with-dce`, `with-handlers`, `all-streaming`.
    pub passes: Option<String>,
    /// Stage budget for `compile` / the `phloem` variant.
    pub stages: Option<usize>,
    /// Thread count for the `data-parallel` variant — and, for
    /// `simulate_native`, the native worker count (`0`/absent = one
    /// thread per stage).
    pub threads: Option<usize>,
    /// Channel backend for `simulate_native`: `mpsc`, `ring`, `hybrid`.
    pub channel: Option<String>,
    /// Per-request watchdog budget in simulated cycles.
    pub cycle_cap: Option<u64>,
    /// Search: candidate decoupling points drawn from the ranking top.
    pub top_k: Option<usize>,
    /// Search: maximum compute stages per candidate.
    pub max_stages: Option<usize>,
    /// Wall-clock deadline for this request, in milliseconds. `0` is
    /// legal and means "already expired": the service answers a
    /// structured `cancelled` error without running anything.
    pub deadline_ms: Option<u64>,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line)?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = match v.get("op").and_then(Json::as_str) {
        Some("compile") => Op::Compile,
        Some("simulate") => Op::Simulate,
        Some("simulate_native") => Op::SimulateNative,
        Some("search") => Op::Search,
        Some("trace") => Op::Trace,
        Some("stats") => Op::Stats,
        Some("shutdown") => Op::Shutdown,
        Some(other) => return Err(format!("unknown op {other:?}")),
        None => return Err("missing \"op\"".into()),
    };
    let id = match v.get("id") {
        Some(j) => j.as_u64().ok_or("\"id\" must be a non-negative integer")?,
        None => return Err("missing \"id\"".into()),
    };
    let s = |k: &str| v.get(k).and_then(Json::as_str).map(String::from);
    Ok(Request {
        id,
        op,
        app: s("app"),
        input: s("input"),
        variant: s("variant"),
        passes: s("passes"),
        stages: v.get("stages").and_then(Json::as_usize),
        threads: v.get("threads").and_then(Json::as_usize),
        channel: s("channel"),
        cycle_cap: v.get("cycle_cap").and_then(Json::as_u64),
        top_k: v.get("top_k").and_then(Json::as_usize),
        max_stages: v.get("max_stages").and_then(Json::as_usize),
        deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y\n","d":null},"e":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
    }

    #[test]
    fn render_is_deterministic_and_integral() {
        let v = Json::Obj(vec![
            ("n".into(), Json::u64(123_456_789)),
            ("f".into(), Json::Num(0.5)),
        ]);
        assert_eq!(v.render(), r#"{"n":123456789,"f":0.5}"#);
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse("{} x").is_err());
        assert!(parse("1.2.3").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_a_request_line() {
        let r = parse_request(
            r#"{"id":7,"op":"simulate","app":"bfs","variant":"phloem","input":"coauthor-s","stages":4}"#,
        )
        .unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.op, Op::Simulate);
        assert_eq!(r.app.as_deref(), Some("bfs"));
        assert_eq!(r.stages, Some(4));
        assert_eq!(r.cycle_cap, None);
        assert_eq!(r.deadline_ms, None);
        assert!(parse_request(r#"{"id":1,"op":"frobnicate"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn id_is_required_and_integral() {
        let missing = parse_request(r#"{"op":"stats"}"#).unwrap_err();
        assert!(missing.contains("missing \"id\""), "{missing}");
        let bad = parse_request(r#"{"id":"seven","op":"stats"}"#).unwrap_err();
        assert!(bad.contains("non-negative integer"), "{bad}");
        assert!(parse_request(r#"{"id":-1,"op":"stats"}"#).is_err());
        let r = parse_request(r#"{"id":3,"op":"stats","deadline_ms":0}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(0));
    }

    #[test]
    fn unicode_escapes_and_multibyte_decode() {
        let v = parse("\"\\u0041\\u00e9 é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
