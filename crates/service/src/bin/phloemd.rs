//! `phloemd` — the Phloem compile-and-simulate daemon.
//!
//! Reads newline-delimited JSON requests, one per line; a **blank line
//! (or EOF) ends a batch**. Each batch is validated and cache-probed in
//! line order, executed concurrently on the host pool, and answered
//! with one JSON response per request line, in order, followed by a
//! blank line. Caches persist across batches (and, in socket mode,
//! across connections), so a replayed workload observes warm hits.
//!
//! ```text
//! phloemd [--socket PATH] [--scale tiny|small|full] [--workers N]
//!         [--cycle-cap N] [--compile-cache N] [--search-cache N]
//!         [--max-inflight N] [--deadline-ms N] [--cache-path PATH]
//!         [--drain-ms N] [--max-conns N]
//! ```
//!
//! Ops: `compile`, `simulate`, `simulate_native`, `search`, `trace`,
//! `stats`, `shutdown`. `simulate_native` runs the variant on the
//! native thread backend (real OS threads; optional `"channel":
//! "mpsc"|"ring"|"hybrid"` and `"threads": N` fields, `0` = one thread
//! per stage) and reports wall-clock nanoseconds in the `cycles` slot,
//! uncached; it honours `deadline_ms` like any compute op — the native
//! park loop observes the request's cancel token.
//!
//! Without `--socket`, requests come from stdin and responses go to
//! stdout (errors and lifecycle notes to stderr). With `--socket PATH`,
//! the daemon serves connections **concurrently** (one thread each, up
//! to `--max-conns`; excess connections are answered with a structured
//! `overloaded` error frame and closed).
//!
//! ## Robustness (see `DESIGN.md` §10)
//!
//! * Request lines are read under a byte limit (`PHLOEMD_MAX_LINE_BYTES`,
//!   default 1 MiB): an oversized line is discarded up to its newline
//!   and answered with a structured `request_too_large` error — the
//!   connection stays usable.
//! * Socket reads carry a timeout (`PHLOEMD_READ_TIMEOUT_MS`, default
//!   30000; `0` disables): a stalled client gets one `timed_out` error
//!   frame and its connection is closed.
//! * `--cache-path` enables crash-safe persistence: the snapshot is
//!   rewritten atomically after every batch, so even a SIGKILL'd
//!   daemon restarts with the last batch's caches warm.
//! * A `{"op":"shutdown"}` request answers its batch, then drains:
//!   new work is rejected with a structured `draining` error while
//!   in-flight batches finish under the `--drain-ms` grace window
//!   (work that outlives it is cancelled and answered, not orphaned),
//!   the cache is persisted, and the daemon exits.

use phloem_service::{Json, Service, ServiceConfig};
use phloem_workloads::catalog::Scale;
use std::io::{BufRead, BufReader, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: phloemd [--socket PATH] [--scale tiny|small|full] [--workers N] \
         [--cycle-cap N] [--compile-cache N] [--search-cache N] [--max-inflight N] \
         [--deadline-ms N] [--cache-path PATH] [--drain-ms N] [--max-conns N]\n\
         env: PHLOEMD_MAX_LINE_BYTES (default 1048576), PHLOEMD_READ_TIMEOUT_MS \
         (default 30000; 0 disables)"
    );
    std::process::exit(2);
}

/// Stream-level protection limits (shared by stdin and socket modes;
/// the read timeout only applies to sockets).
#[derive(Clone, Copy)]
struct Limits {
    max_line_bytes: usize,
    read_timeout: Option<Duration>,
}

impl Limits {
    fn from_env() -> Limits {
        let max_line_bytes = env_num("PHLOEMD_MAX_LINE_BYTES", 1 << 20).max(64);
        let timeout_ms = env_num("PHLOEMD_READ_TIMEOUT_MS", 30_000);
        Limits {
            max_line_bytes,
            read_timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms as u64)),
        }
    }
}

fn env_num(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("phloemd: ignoring {name}={v:?}: expected an integer");
            default
        }),
        Err(_) => default,
    }
}

fn main() {
    let mut cfg = ServiceConfig {
        scale: Scale::Tiny,
        ..ServiceConfig::default()
    };
    let mut socket: Option<String> = None;
    let mut drain_ms: u64 = 2_000;
    let mut max_conns: usize = 16;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("phloemd: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--scale" => {
                cfg.scale = match value("--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("phloemd: unknown scale {other:?}");
                        usage()
                    }
                }
            }
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers").max(1),
            "--cycle-cap" => {
                cfg.default_cycle_cap = parse_num(&value("--cycle-cap"), "--cycle-cap") as u64
            }
            "--compile-cache" => {
                cfg.compile_cache_cap = parse_num(&value("--compile-cache"), "--compile-cache")
            }
            "--search-cache" => {
                cfg.search_cache_cap = parse_num(&value("--search-cache"), "--search-cache")
            }
            "--max-inflight" => {
                cfg.max_inflight =
                    parse_num(&value("--max-inflight"), "--max-inflight").max(1) as u64
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms =
                    Some(parse_num(&value("--deadline-ms"), "--deadline-ms") as u64)
            }
            "--cache-path" => cfg.cache_path = Some(value("--cache-path").into()),
            "--drain-ms" => drain_ms = parse_num(&value("--drain-ms"), "--drain-ms") as u64,
            "--max-conns" => max_conns = parse_num(&value("--max-conns"), "--max-conns").max(1),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("phloemd: unknown argument {other:?}");
                usage()
            }
        }
    }
    let limits = Limits::from_env();
    let service = Arc::new(Service::new(cfg));
    match socket {
        None => serve_stdio(&service, limits),
        Some(path) => serve_socket(&service, &path, limits, max_conns, drain_ms),
    }
}

fn parse_num(s: &str, name: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("phloemd: {name} expects an integer, got {s:?}");
        usage()
    })
}

/// Persists the cache snapshot if configured, logging (not dying) on
/// failure — a full disk must not take the daemon down with it.
fn persist_caches(service: &Service) {
    if let Err(e) = service.persist_now() {
        eprintln!("phloemd: cache persist failed: {e}");
    }
}

/// Serves batches from stdin until EOF or a `shutdown` request.
fn serve_stdio(service: &Service, limits: Limits) {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        match serve_stream(service, &mut reader, &mut out, limits) {
            StreamEnd::Continue => persist_caches(service),
            StreamEnd::Eof => break,
            StreamEnd::Shutdown => break,
            StreamEnd::Timeout => break, // unreachable on stdin
            StreamEnd::Error(e) => {
                eprintln!("phloemd: stdin stream error: {e}");
                break;
            }
        }
    }
    persist_caches(service);
}

/// Serves socket connections concurrently (thread per connection, up
/// to `max_conns`). The accept loop polls a nonblocking listener so it
/// observes the shutdown flag within ~25ms; shutdown then drains:
/// reject-new is flipped first, in-flight batches get `drain_ms` of
/// grace (work that outlives it is cancelled and answered), idle
/// readers are unblocked, threads are joined, and the cache is
/// persisted before exit.
fn serve_socket(
    service: &Arc<Service>,
    path: &str,
    limits: Limits,
    max_conns: usize,
    drain_ms: u64,
) {
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("phloemd: cannot bind {path:?}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("phloemd: cannot set nonblocking accept: {e}");
        std::process::exit(1);
    }
    eprintln!("phloemd: listening on {path:?}");
    let shutdown = Arc::new(AtomicBool::new(false));
    // Read-half clones of live connections, so a drain can unblock
    // threads parked in `read` (they observe EOF and finish up).
    let live: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        handles.retain(|h| !h.is_finished());
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(e) => {
                eprintln!("phloemd: accept failed: {e}");
                continue;
            }
        };
        if handles.len() >= max_conns {
            refuse_connection(stream, max_conns);
            continue;
        }
        let (service, shutdown, live) = (
            Arc::clone(service),
            Arc::clone(&shutdown),
            Arc::clone(&live),
        );
        handles.push(std::thread::spawn(move || {
            serve_connection(&service, stream, limits, &shutdown, &live);
        }));
    }
    // Drain: reject new work, give in-flight batches a bounded grace
    // window, and unblock idle readers so every thread can exit.
    service.begin_drain(Duration::from_millis(drain_ms));
    for conn in live.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let _ = conn.shutdown(std::net::Shutdown::Read);
    }
    for h in handles {
        let _ = h.join();
    }
    persist_caches(service);
    let _ = std::fs::remove_file(path);
    eprintln!("phloemd: drained and exiting");
}

/// Answers a connection beyond the cap with one structured error frame.
fn refuse_connection(mut stream: UnixStream, max_conns: usize) {
    let line = error_line(
        "overloaded",
        &format!("connection limit reached ({max_conns}); retry later"),
    );
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n\n");
}

/// Deregisters (and thereby closes) a connection's drain clone when its
/// thread finishes — otherwise the registry would hold the socket open
/// and the peer would never observe EOF.
struct LiveGuard<'a> {
    live: &'a Mutex<Vec<UnixStream>>,
    fd: std::os::fd::RawFd,
}

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|s| s.as_raw_fd() != self.fd);
    }
}

fn serve_connection(
    service: &Service,
    stream: UnixStream,
    limits: Limits,
    shutdown: &AtomicBool,
    live: &Mutex<Vec<UnixStream>>,
) {
    if let Some(t) = limits.read_timeout {
        let _ = stream.set_read_timeout(Some(t));
    }
    let _live_guard = match stream.try_clone() {
        Ok(clone) => {
            let fd = clone.as_raw_fd();
            live.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            Some(LiveGuard { live, fd })
        }
        Err(_) => None,
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("phloemd: cannot clone stream: {e}");
            return;
        }
    });
    let mut writer = stream;
    loop {
        match serve_stream(service, &mut reader, &mut writer, limits) {
            StreamEnd::Continue => persist_caches(service),
            StreamEnd::Eof => break,
            StreamEnd::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                persist_caches(service);
                break;
            }
            StreamEnd::Timeout => {
                // The timed-out frame was already answered; a stalled
                // client does not get to hold the connection slot.
                break;
            }
            StreamEnd::Error(e) => {
                eprintln!("phloemd: connection error: {e}");
                break;
            }
        }
    }
}

enum StreamEnd {
    /// The batch was answered; more may follow on this stream.
    Continue,
    /// The input side closed.
    Eof,
    /// A `shutdown` request asked the daemon to exit.
    Shutdown,
    /// The read timeout fired; the connection is done.
    Timeout,
    /// An I/O failure ended the stream.
    Error(std::io::Error),
}

/// One line of a frame: a request to hand to the service, or an
/// oversized line that was discarded and is answered inline.
enum FrameLine {
    Req(String),
    Oversized,
}

/// What one bounded line read produced.
enum LineRead {
    Line(String),
    Blank,
    TooLong,
    Eof,
    TimedOut,
    Err(std::io::Error),
}

/// Reads one `\n`-terminated line of at most `max` bytes. A longer
/// line is consumed (and discarded) up to its newline so the stream
/// stays framed, then reported as [`LineRead::TooLong`].
fn read_limited_line<R: BufRead>(input: &mut R, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut overlong = false;
    loop {
        let chunk = match input.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::TimedOut
            }
            Err(e) => return LineRead::Err(e),
        };
        if chunk.is_empty() {
            // EOF. A partial unterminated line still counts as a line
            // (EOF ends the batch), unless nothing was read at all.
            return match (buf.is_empty(), overlong) {
                (true, false) => LineRead::Eof,
                (_, true) => LineRead::TooLong,
                (false, false) => finish_line(buf),
            };
        }
        let (consumed, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        if !overlong {
            buf.extend_from_slice(&chunk[..consumed]);
            if buf.len() > max {
                overlong = true;
                buf = Vec::new();
            }
        }
        input.consume(consumed);
        if done {
            return if overlong {
                LineRead::TooLong
            } else {
                finish_line(buf)
            };
        }
    }
}

fn finish_line(buf: Vec<u8>) -> LineRead {
    let text = String::from_utf8_lossy(&buf);
    let trimmed = text.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() {
        LineRead::Blank
    } else {
        LineRead::Line(trimmed.to_string())
    }
}

/// A structured error response constructed daemon-side (before the
/// service ever sees the line), matching the service's error shape.
fn error_line(kind: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::u64(0)),
        ("op".to_string(), Json::str("read")),
        ("ok".to_string(), Json::Bool(false)),
        ("cache".to_string(), Json::str("bypass")),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("kind".to_string(), Json::str(kind)),
                ("message".to_string(), Json::str(message)),
            ]),
        ),
    ])
    .render()
}

/// Reads one batch (lines until a blank line or EOF), answers it, and
/// reports how the stream should proceed. An empty batch at EOF is not
/// answered (so trailing newlines don't produce empty frames).
fn serve_stream<R: BufRead, W: Write>(
    service: &Service,
    input: &mut R,
    out: &mut W,
    limits: Limits,
) -> StreamEnd {
    let mut frame: Vec<FrameLine> = Vec::new();
    let mut at_eof = false;
    let mut timed_out = false;
    loop {
        match read_limited_line(input, limits.max_line_bytes) {
            LineRead::Line(l) => frame.push(FrameLine::Req(l)),
            LineRead::TooLong => frame.push(FrameLine::Oversized),
            LineRead::Blank => break,
            LineRead::Eof => {
                at_eof = true;
                break;
            }
            LineRead::TimedOut => {
                timed_out = true;
                break;
            }
            LineRead::Err(e) => return StreamEnd::Error(e),
        }
    }
    if timed_out {
        // Answer what we can: one error frame telling the client its
        // request stalled, then close the connection.
        let line = error_line(
            "timed_out",
            "read timed out mid-request; closing the connection",
        );
        let _ = out
            .write_all(line.as_bytes())
            .and_then(|_| out.write_all(b"\n\n"))
            .and_then(|_| out.flush());
        return StreamEnd::Timeout;
    }
    if frame.is_empty() {
        return if at_eof {
            StreamEnd::Eof
        } else {
            // A lone blank line: acknowledge with an empty frame so the
            // client's frame counting stays in sync.
            match out.write_all(b"\n").and_then(|_| out.flush()) {
                Ok(()) => StreamEnd::Continue,
                Err(e) => StreamEnd::Error(e),
            }
        };
    }
    let lines: Vec<String> = frame
        .iter()
        .filter_map(|l| match l {
            FrameLine::Req(s) => Some(s.clone()),
            FrameLine::Oversized => None,
        })
        .collect();
    let result = service.handle_batch(&lines);
    let mut answered = result.responses.iter();
    for line in &frame {
        let resp = match line {
            FrameLine::Req(_) => answered
                .next()
                .cloned()
                .unwrap_or_else(|| error_line("trap", "response missing for request line")),
            FrameLine::Oversized => error_line(
                "request_too_large",
                &format!(
                    "request line exceeds {} bytes and was discarded",
                    limits.max_line_bytes
                ),
            ),
        };
        if let Err(e) = out
            .write_all(resp.as_bytes())
            .and_then(|_| out.write_all(b"\n"))
        {
            return StreamEnd::Error(e);
        }
    }
    if let Err(e) = out.write_all(b"\n").and_then(|_| out.flush()) {
        return StreamEnd::Error(e);
    }
    if result.shutdown {
        StreamEnd::Shutdown
    } else if at_eof {
        StreamEnd::Eof
    } else {
        StreamEnd::Continue
    }
}
