//! `phloemd` — the Phloem compile-and-simulate daemon.
//!
//! Reads newline-delimited JSON requests, one per line; a **blank line
//! (or EOF) ends a batch**. Each batch is validated and cache-probed in
//! line order, executed concurrently on the host pool, and answered
//! with one JSON response per request line, in order, followed by a
//! blank line. Caches persist across batches (and, in socket mode,
//! across connections), so a replayed workload observes warm hits.
//!
//! ```text
//! phloemd [--socket PATH] [--scale tiny|small|full] [--workers N]
//!         [--cycle-cap N] [--compile-cache N] [--search-cache N]
//! ```
//!
//! Without `--socket`, requests come from stdin and responses go to
//! stdout (errors and lifecycle notes to stderr). With `--socket PATH`,
//! the daemon listens on a Unix socket and serves connections
//! sequentially with the same framing. A `{"op":"shutdown"}` request
//! answers, finishes its batch, and exits the daemon.

use phloem_service::{Service, ServiceConfig};
use phloem_workloads::catalog::Scale;
use std::io::{BufRead, BufReader, Write};

fn usage() -> ! {
    eprintln!(
        "usage: phloemd [--socket PATH] [--scale tiny|small|full] [--workers N] \
         [--cycle-cap N] [--compile-cache N] [--search-cache N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServiceConfig {
        scale: Scale::Tiny,
        ..ServiceConfig::default()
    };
    let mut socket: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("phloemd: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--scale" => {
                cfg.scale = match value("--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("phloemd: unknown scale {other:?}");
                        usage()
                    }
                }
            }
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers").max(1),
            "--cycle-cap" => {
                cfg.default_cycle_cap = parse_num(&value("--cycle-cap"), "--cycle-cap") as u64
            }
            "--compile-cache" => {
                cfg.compile_cache_cap = parse_num(&value("--compile-cache"), "--compile-cache")
            }
            "--search-cache" => {
                cfg.search_cache_cap = parse_num(&value("--search-cache"), "--search-cache")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("phloemd: unknown argument {other:?}");
                usage()
            }
        }
    }
    let service = Service::new(cfg);
    match socket {
        None => serve_stdio(&service),
        Some(path) => serve_socket(&service, &path),
    }
}

fn parse_num(s: &str, name: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("phloemd: {name} expects an integer, got {s:?}");
        usage()
    })
}

/// Serves batches from stdin until EOF or a `shutdown` request.
fn serve_stdio(service: &Service) {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        match serve_stream(service, &mut reader, &mut out) {
            StreamEnd::Continue => {}
            StreamEnd::Eof | StreamEnd::Shutdown => break,
            StreamEnd::Error(e) => {
                eprintln!("phloemd: stdin stream error: {e}");
                break;
            }
        }
    }
}

/// Accepts socket connections sequentially; the service (and its
/// caches) outlives each connection, so a reconnecting client sees
/// warm caches. A `shutdown` request ends the accept loop.
fn serve_socket(service: &Service, path: &str) {
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("phloemd: cannot bind {path:?}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("phloemd: listening on {path:?}");
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("phloemd: accept failed: {e}");
                continue;
            }
        };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("phloemd: cannot clone stream: {e}");
                continue;
            }
        });
        let mut writer = stream;
        loop {
            match serve_stream(service, &mut reader, &mut writer) {
                StreamEnd::Continue => {}
                StreamEnd::Eof => break,
                StreamEnd::Shutdown => {
                    let _ = std::fs::remove_file(path);
                    return;
                }
                StreamEnd::Error(e) => {
                    eprintln!("phloemd: connection error: {e}");
                    break;
                }
            }
        }
    }
}

enum StreamEnd {
    /// The batch was answered; more may follow on this stream.
    Continue,
    /// The input side closed.
    Eof,
    /// A `shutdown` request asked the daemon to exit.
    Shutdown,
    /// An I/O failure ended the stream.
    Error(std::io::Error),
}

/// Reads one batch (lines until a blank line or EOF), answers it, and
/// reports how the stream should proceed. An empty batch at EOF is not
/// answered (so trailing newlines don't produce empty frames).
fn serve_stream<R: BufRead, W: Write>(service: &Service, input: &mut R, out: &mut W) -> StreamEnd {
    let mut lines = Vec::new();
    let mut at_eof = false;
    loop {
        let mut line = String::new();
        match input.read_line(&mut line) {
            Ok(0) => {
                at_eof = true;
                break;
            }
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    break;
                }
                lines.push(trimmed.to_string());
            }
            Err(e) => return StreamEnd::Error(e),
        }
    }
    if lines.is_empty() {
        return if at_eof {
            StreamEnd::Eof
        } else {
            // A lone blank line: acknowledge with an empty frame so the
            // client's frame counting stays in sync.
            match out.write_all(b"\n").and_then(|_| out.flush()) {
                Ok(()) => StreamEnd::Continue,
                Err(e) => StreamEnd::Error(e),
            }
        };
    }
    let result = service.handle_batch(&lines);
    for resp in &result.responses {
        if let Err(e) = out
            .write_all(resp.as_bytes())
            .and_then(|_| out.write_all(b"\n"))
        {
            return StreamEnd::Error(e);
        }
    }
    if let Err(e) = out.write_all(b"\n").and_then(|_| out.flush()) {
        return StreamEnd::Error(e);
    }
    if result.shutdown {
        StreamEnd::Shutdown
    } else if at_eof {
        StreamEnd::Eof
    } else {
        StreamEnd::Continue
    }
}
