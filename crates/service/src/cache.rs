//! A small bounded LRU map with hit/miss/eviction counters.
//!
//! The service keeps two of these (compile and search results), both
//! keyed by content digests from [`crate::key`]. Capacity is bounded so
//! a long-running `phloemd` cannot grow without limit; eviction is
//! least-recently-*used* (probes refresh recency, not just inserts).
//!
//! The implementation is a `HashMap` plus a monotonically increasing
//! use-stamp per entry, with an O(n) scan on eviction. For the service
//! caches — hundreds of entries, each guarding seconds of compile or
//! simulate work — the scan is noise; a doubly-linked intrusive list
//! would only add unsafe code for no observable win.

use std::collections::HashMap;
use std::hash::Hash;

/// Hit/miss/insert/evict counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes that found the key.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Values displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits over probes; 0 when nothing has been probed.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// Bounded least-recently-used map.
pub struct Lru<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, (u64, V)>,
    counters: CacheCounters,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1 —
    /// a zero-capacity cache would turn every insert into a self-evict,
    /// which no caller wants; pass-through is spelled "don't cache").
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            capacity: capacity.max(1),
            clock: 0,
            map: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Looks up `key`, refreshing its recency and counting the probe.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some((stamp, v)) => {
                *stamp = self.clock;
                self.counters.hits += 1;
                Some(v.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Stores `key → value`, evicting the least recently used entry if
    /// the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.counters.evictions += 1;
            }
        }
        self.counters.insertions += 1;
        self.map.insert(key, (self.clock, value));
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the lifetime counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Clones out every entry, **least recently used first**. Replaying
    /// the returned pairs through [`Lru::insert`] on an empty cache of
    /// the same capacity reconstructs identical contents *and* identical
    /// eviction order — the property the crash-safe snapshot leans on.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut entries: Vec<(u64, K, V)> = self
            .map
            .iter()
            .map(|(k, (stamp, v))| (*stamp, k.clone(), v.clone()))
            .collect();
        entries.sort_by_key(|(stamp, _, _)| *stamp);
        entries.into_iter().map(|(_, k, v)| (k, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // "b" is now the LRU entry
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(3));
        let n = c.counters();
        assert_eq!((n.insertions, n.evictions), (3, 1));
        assert_eq!((n.hits, n.misses), (3, 1));
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // existing key: no eviction even at capacity
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut c = Lru::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn snapshot_orders_by_recency_and_replays_identically() {
        let mut c = Lru::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.get(&"a"); // "b" is now the LRU entry
        assert_eq!(c.snapshot(), vec![("b", 2), ("c", 3), ("a", 1)]);

        let mut replayed = Lru::new(3);
        for (k, v) in c.snapshot() {
            replayed.insert(k, v);
        }
        replayed.insert("d", 4); // evicts "b" in both worlds
        assert_eq!(replayed.get(&"b"), None);
        assert_eq!(replayed.get(&"c"), Some(3));
        assert_eq!(replayed.get(&"a"), Some(1));
    }

    #[test]
    fn hit_rate_counts_probes() {
        let mut c = Lru::new(4);
        assert_eq!(c.counters().hit_rate(), 0.0);
        c.insert("a", 1);
        c.get(&"a");
        c.get(&"x");
        assert!((c.counters().hit_rate() - 0.5).abs() < 1e-12);
    }
}
