//! Daemon error-path coverage: every malformed or hostile input gets a
//! structured per-request error, and the connection (and daemon) stay
//! usable afterwards.

use phloem_service::proto::parse;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn spawn_phloemd(envs: &[(&str, &str)], extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_phloemd"));
    cmd.args(extra)
        .args(["--scale", "tiny", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn phloemd")
}

/// Splits a daemon transcript into blank-line-terminated frames.
fn frames(transcript: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for line in transcript.lines() {
        if line.is_empty() {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(line.to_string());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn error_kind(resp: &str) -> String {
    let v = parse(resp).unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"));
    assert_eq!(v.get("ok").and_then(|j| j.as_bool()), Some(false), "{resp}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap_or_else(|| panic!("no error.kind in {resp}"))
        .to_string()
}

/// Feeds `input` to a fresh stdin-mode daemon and returns its frames.
fn run_stdin(envs: &[(&str, &str)], input: &str) -> Vec<Vec<String>> {
    let mut child = spawn_phloemd(envs, &[]);
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    drop(child.stdin.take());
    let mut transcript = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut transcript)
        .unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "phloemd exited with {status}");
    frames(&transcript)
}

#[test]
fn malformed_unknown_and_missing_id_are_structured_and_non_fatal() {
    // One frame of four broken lines and one good one; then a second
    // frame proving the daemon is still answering.
    let input = concat!(
        "{\"id\":1,\"op\":\"frobnicate\"}\n",              // unknown op
        "{\"op\":\"stats\"}\n",                            // missing id
        "{\"id\":\"x\",\"op\":\"stats\"}\n",               // non-integer id
        "this is not json\n",                              // malformed
        "{\"id\":5,\"op\":\"compile\",\"app\":\"bfs\"}\n", // still works
        "\n",
        "{\"id\":6,\"op\":\"stats\"}\n",
        "\n",
    );
    let frames = run_stdin(&[], input);
    assert_eq!(frames.len(), 2, "daemon must answer both frames");
    let first = &frames[0];
    assert_eq!(first.len(), 5);
    assert_eq!(error_kind(&first[0]), "parse"); // unknown op is a parse-level reject
    assert!(first[0].contains("unknown op"), "{}", first[0]);
    assert_eq!(error_kind(&first[1]), "parse");
    assert!(first[1].contains("missing \\\"id\\\""), "{}", first[1]);
    assert_eq!(error_kind(&first[2]), "parse");
    assert_eq!(error_kind(&first[3]), "parse");
    assert!(first[4].contains(r#""ok":true"#), "{}", first[4]);
    assert!(frames[1][0].contains(r#""ok":true"#), "{}", frames[1][0]);
}

#[test]
fn eof_mid_batch_still_answers_the_partial_batch() {
    // No trailing blank line: EOF ends the batch, which must still be
    // answered in full before the daemon exits cleanly.
    let input = "{\"id\":1,\"op\":\"compile\",\"app\":\"bfs\"}\n{\"id\":2,\"op\":\"stats\"}";
    let frames = run_stdin(&[], input);
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].len(), 2);
    assert!(frames[0][0].contains(r#""id":1"#));
    assert!(frames[0][0].contains(r#""ok":true"#));
    assert!(frames[0][1].contains(r#""id":2"#));
    assert!(frames[0][1].contains(r#""ok":true"#));
}

#[test]
fn zero_deadline_is_a_structured_cancelled_error() {
    let input = concat!(
        "{\"id\":1,\"op\":\"simulate\",\"app\":\"bfs\",\"input\":\"internet-s\",",
        "\"variant\":\"serial\",\"deadline_ms\":0}\n",
        "{\"id\":2,\"op\":\"stats\"}\n",
        "\n",
    );
    let frames = run_stdin(&[], input);
    assert_eq!(frames[0].len(), 2);
    assert_eq!(error_kind(&frames[0][0]), "cancelled");
    assert!(frames[0][0].contains("deadline"), "{}", frames[0][0]);
    assert!(frames[0][1].contains(r#""ok":true"#), "{}", frames[0][1]);
}

#[test]
fn oversized_line_is_discarded_with_request_too_large() {
    // Cap lines at 256 bytes; send a huge (valid-JSON!) line between
    // two good requests. The oversized one is answered in place and
    // its neighbours are unaffected.
    let huge = format!(
        "{{\"id\":2,\"op\":\"stats\",\"pad\":\"{}\"}}",
        "x".repeat(4096)
    );
    let input = format!(
        "{{\"id\":1,\"op\":\"stats\"}}\n{huge}\n{{\"id\":3,\"op\":\"stats\"}}\n\n{{\"id\":4,\"op\":\"stats\"}}\n\n"
    );
    let frames = run_stdin(&[("PHLOEMD_MAX_LINE_BYTES", "256")], &input);
    assert_eq!(frames.len(), 2);
    let first = &frames[0];
    assert_eq!(first.len(), 3, "one response per request line: {first:?}");
    assert!(first[0].contains(r#""id":1"#) && first[0].contains(r#""ok":true"#));
    assert_eq!(error_kind(&first[1]), "request_too_large");
    assert!(first[2].contains(r#""id":3"#) && first[2].contains(r#""ok":true"#));
    // Next frame still answered: the stream stayed framed.
    assert!(frames[1][0].contains(r#""id":4"#), "{}", frames[1][0]);
}

#[test]
fn socket_read_timeout_answers_timed_out_and_frees_the_connection() {
    let path = std::env::temp_dir().join(format!("phloemd-errors-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = spawn_phloemd(
        &[("PHLOEMD_READ_TIMEOUT_MS", "150")],
        &["--socket", path.to_str().unwrap()],
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !path.exists() {
        assert!(std::time::Instant::now() < deadline, "no socket bound");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Send half a request and stall: the daemon must answer one
    // timed_out error frame and close this connection.
    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"{\"id\":1,\"op\":\"sta").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(error_kind(line.trim_end()), "timed_out");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap(); // connection closed
    assert_eq!(rest.trim(), "");

    // The daemon is still healthy: a new connection works, and
    // shutdown exits cleanly.
    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{{\"id\":2,\"op\":\"shutdown\"}}").unwrap();
    writeln!(writer).unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "{line}");
    let status = child.wait().unwrap();
    assert!(status.success(), "phloemd exited with {status}");
    assert!(!path.exists());
}
