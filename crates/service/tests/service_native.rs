//! The `simulate_native` op and its keying contract.
//!
//! Two properties are pinned here:
//!
//! * **Backend-irrelevant exclusion**: the native machine digest
//!   ([`phloem_service::key::native_machine_config_digest`]) ignores
//!   every timing-model field — native execution cannot observe cache
//!   latencies, the scheduler, or the watchdog — while remaining
//!   sensitive to the validation limits and channel depth the backend
//!   *can* observe. Both directions are swept field by field.
//! * **Op behaviour**: `simulate_native` answers `bypass` (wall-clock
//!   is not content-addressable), annotates the payload with its
//!   backend/channel/threads/host_cores, validates the channel name,
//!   and honours zero deadlines like every other compute op.

use phloem_service::key::{machine_config_digest, native_machine_config_digest};
use phloem_service::{Service, ServiceConfig};
use phloem_workloads::catalog::Scale;
use pipette_sim::{ExecEngine, MachineConfig, SchedulerKind};

/// Labeled single-field mutations of a [`MachineConfig`].
type FieldMutators = Vec<(&'static str, fn(&mut MachineConfig))>;

/// Fields the native backend can observe: each must change the key.
fn native_relevant() -> FieldMutators {
    vec![
        ("cores", |m| m.cores += 1),
        ("smt_threads", |m| m.smt_threads += 1),
        ("max_queues", |m| m.max_queues += 1),
        ("ras_per_core", |m| m.ras_per_core += 1),
        ("queue_capacity", |m| m.queue_capacity += 1),
    ]
}

/// Timing-model fields the native backend provably cannot observe:
/// none may change the key (the full simulator digest must still see
/// every one of them — that direction is pinned in
/// `service_cache.rs`).
fn native_irrelevant() -> FieldMutators {
    vec![
        ("issue_width", |m| m.issue_width += 1),
        ("rob_size", |m| m.rob_size += 1),
        ("mshrs", |m| m.mshrs += 1),
        ("mispredict_penalty", |m| m.mispredict_penalty += 1),
        ("ra_concurrency", |m| m.ra_concurrency += 1),
        ("ra_op_latency", |m| m.ra_op_latency += 1),
        ("queue_latency", |m| m.queue_latency += 1),
        ("l1.latency", |m| m.l1.latency += 1),
        ("l2.kb", |m| m.l2.kb += 1),
        ("l3_latency", |m| m.l3_latency += 1),
        ("dram_latency", |m| m.dram_latency += 1),
        ("prefetch", |m| m.prefetch = !m.prefetch),
        ("launch_overhead", |m| m.launch_overhead += 1),
        ("scheduler", |m| m.scheduler = SchedulerKind::Polling),
        ("engine", |m| m.engine = ExecEngine::Tree),
        ("fast_forward", |m| m.fast_forward = !m.fast_forward),
        ("watchdog.cycle_cap", |m| m.watchdog.cycle_cap /= 2),
    ]
}

#[test]
fn native_key_sees_exactly_the_fields_the_backend_can_observe() {
    let base = MachineConfig::paper_1core();
    let base_key = native_machine_config_digest(&base);
    for (name, mutate) in native_relevant() {
        let mut m = base.clone();
        mutate(&mut m);
        assert_ne!(
            native_machine_config_digest(&m),
            base_key,
            "{name} shapes native validation/blocking and must be keyed"
        );
    }
    for (name, mutate) in native_irrelevant() {
        let mut m = base.clone();
        mutate(&mut m);
        assert_eq!(
            native_machine_config_digest(&m),
            base_key,
            "{name} is timing-model only; keying it would split native provenance"
        );
        // ... while the full simulator key must still see it.
        assert_ne!(
            machine_config_digest(&m),
            machine_config_digest(&base),
            "{name} must stay in the full machine key"
        );
    }
}

fn tiny_service() -> Service {
    Service::new(ServiceConfig {
        scale: Scale::Tiny,
        workers: 2,
        default_cycle_cap: 50_000_000,
        ..ServiceConfig::default()
    })
}

#[test]
fn simulate_native_answers_bypass_with_backend_annotations() {
    let svc = tiny_service();
    let out = svc.handle_batch(&[
        r#"{"id":1,"op":"simulate_native","app":"bfs","input":"internet-s","variant":"serial"}"#
            .to_string(),
        r#"{"id":2,"op":"simulate_native","app":"cc","input":"internet-s","variant":"phloem","channel":"ring","threads":2}"#
            .to_string(),
    ]);
    for resp in &out.responses {
        assert!(resp.contains(r#""ok":true"#), "{resp}");
        assert!(resp.contains(r#""cache":"bypass""#), "{resp}");
        assert!(resp.contains(r#""backend":"native""#), "{resp}");
        assert!(resp.contains(r#""host_cores":"#), "{resp}");
        assert!(resp.contains(r#""machine":""#), "{resp}");
    }
    assert!(out.responses[0].contains(r#""channel":"mpsc""#));
    assert!(out.responses[0].contains(r#""threads":0"#));
    assert!(out.responses[1].contains(r#""channel":"ring""#));
    assert!(out.responses[1].contains(r#""threads":2"#));
    // Native measurements are never cached.
    let (c, s) = svc.counters();
    assert_eq!(c.misses + c.hits + s.misses + s.hits, 0);
}

#[test]
fn simulate_native_validates_channel_and_app() {
    let svc = tiny_service();
    let out = svc.handle_batch(&[
        r#"{"id":1,"op":"simulate_native","app":"bfs","input":"internet-s","channel":"carrier-pigeon"}"#
            .to_string(),
        r#"{"id":2,"op":"simulate_native","app":"nosuch","input":"internet-s"}"#.to_string(),
        r#"{"id":3,"op":"simulate_native","app":"bfs"}"#.to_string(),
    ]);
    assert!(
        out.responses[0].contains(r#""kind":"bad_request""#)
            && out.responses[0].contains("unknown channel backend"),
        "{}",
        out.responses[0]
    );
    assert!(
        out.responses[1].contains("unknown app"),
        "{}",
        out.responses[1]
    );
    assert!(
        out.responses[2].contains("missing required field"),
        "{}",
        out.responses[2]
    );
}

#[test]
fn simulate_native_honours_zero_deadlines() {
    let svc = tiny_service();
    let out = svc.handle_batch(&[
        r#"{"id":1,"op":"simulate_native","app":"bfs","input":"internet-s","variant":"serial","deadline_ms":0}"#
            .to_string(),
    ]);
    assert!(
        out.responses[0].contains(r#""kind":"cancelled""#),
        "{}",
        out.responses[0]
    );
}

#[test]
fn stats_surface_timeout_wakeups() {
    let svc = tiny_service();
    svc.handle_batch(&[
        r#"{"id":1,"op":"simulate_native","app":"bfs","input":"internet-s","variant":"serial"}"#
            .to_string(),
    ]);
    let out = svc.handle_batch(&[r#"{"id":2,"op":"stats"}"#.to_string()]);
    assert!(
        out.responses[0].contains(r#""timeout_wakeups":"#),
        "{}",
        out.responses[0]
    );
}
