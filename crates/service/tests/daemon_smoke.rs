//! End-to-end daemon smoke tests: the in-process service, the spawned
//! `phloemd` binary over stdin, and the Unix-socket mode — all at
//! `Scale::Tiny` so debug-build simulation stays fast.

use phloem_benchsuite::Variant;
use phloem_pool::Pool;
use phloem_service::proto::parse;
use phloem_service::{Batch, PreparedInputs, Service, ServiceConfig, SimRequest};
use phloem_workloads::catalog::Scale;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn tiny_service() -> Service {
    Service::new(ServiceConfig {
        scale: Scale::Tiny,
        workers: 2,
        ..ServiceConfig::default()
    })
}

fn mixed_batch() -> Vec<String> {
    vec![
        r#"{"id":1,"op":"compile","app":"bfs"}"#.to_string(),
        r#"{"id":2,"op":"simulate","app":"bfs","input":"internet-s","variant":"serial"}"#
            .to_string(),
        r#"{"id":3,"op":"trace","app":"cc","input":"internet-s","variant":"phloem","stages":2}"#
            .to_string(),
        r#"{"id":4,"op":"compile","app":"spmm","passes":"queues-only"}"#.to_string(),
    ]
}

/// Splits a daemon transcript into blank-line-terminated frames.
fn frames(transcript: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for line in transcript.lines() {
        if line.is_empty() {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(line.to_string());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn assert_warm_matches_cold(cold: &[String], warm: &[String]) {
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(warm) {
        let cv = parse(c).unwrap();
        let wv = parse(w).unwrap();
        assert_eq!(cv.get("ok").and_then(|j| j.as_bool()), Some(true), "{c}");
        assert_eq!(wv.get("ok").and_then(|j| j.as_bool()), Some(true), "{w}");
        let op = cv.get("op").and_then(|j| j.as_str()).unwrap().to_string();
        let warm_cache = wv.get("cache").and_then(|j| j.as_str()).unwrap();
        if op == "simulate" {
            // Simulations bypass the caches but must replay identically.
            assert_eq!(warm_cache, "bypass", "{w}");
            assert_eq!(c, w, "simulate responses must be bit-identical");
        } else {
            assert_eq!(warm_cache, "hit", "warm {op} should hit: {w}");
            assert_eq!(
                &c.replace(r#""cache":"miss""#, r#""cache":"hit""#),
                w,
                "warm hit must be bit-identical to the cold response"
            );
        }
    }
}

#[test]
fn in_process_replay_hits_and_matches_the_direct_api() {
    let svc = tiny_service();
    let batch = mixed_batch();
    let cold = svc.handle_batch(&batch);
    let warm = svc.handle_batch(&batch);
    assert!(!cold.shutdown && !warm.shutdown);
    assert_warm_matches_cold(&cold.responses, &warm.responses);

    // The simulate response must agree with the direct Batch API.
    let resp = parse(&warm.responses[1]).unwrap();
    let cycles = resp.get("cycles").and_then(|j| j.as_u64()).unwrap();
    let pool = Pool::new(1);
    let inputs = PreparedInputs::new(Scale::Tiny);
    let machine = svc.config().machine.clone();
    let direct = Batch::new(&pool, &inputs, &machine).run(&[SimRequest {
        app: "bfs".into(),
        variant: Variant::Serial,
        input: "internet-s".into(),
        cycle_cap: None,
    }]);
    let direct = direct[0].as_ref().expect("direct run succeeds");
    assert_eq!(cycles, direct.cycles, "service and direct API disagree");

    // Warm replay hit-rate over cacheable ops must be 100% here; the
    // acceptance bar for the bench is >= 50%.
    let (compile, search) = svc.counters();
    let hits = compile.hits + search.hits;
    let probes = hits + compile.misses + search.misses;
    assert_eq!(hits * 2, probes, "expected exactly half the probes to hit");
}

fn spawn_phloemd(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_phloemd"))
        .args(extra)
        .args(["--scale", "tiny", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn phloemd")
}

#[test]
fn phloemd_stdin_two_pass_replay_is_warm() {
    let mut child = spawn_phloemd(&[]);
    let batch = mixed_batch();
    {
        let stdin = child.stdin.as_mut().unwrap();
        for pass in 0..2 {
            for line in &batch {
                writeln!(stdin, "{line}").unwrap();
            }
            writeln!(stdin).unwrap();
            let _ = pass;
        }
    }
    drop(child.stdin.take());
    let mut transcript = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut transcript)
        .unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "phloemd exited with {status}");
    let frames = frames(&transcript);
    assert_eq!(
        frames.len(),
        2,
        "expected two response frames:\n{transcript}"
    );
    assert_eq!(frames[0].len(), batch.len());
    assert_warm_matches_cold(&frames[0], &frames[1]);
}

/// Sends one batch over a connected socket and reads its response frame.
fn socket_round_trip(path: &std::path::Path, lines: &[String]) -> Vec<String> {
    let stream = std::os::unix::net::UnixStream::connect(path).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for line in lines {
        writeln!(writer, "{line}").unwrap();
    }
    writeln!(writer).unwrap();
    writer.flush().unwrap();
    let mut frame = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            break;
        }
        frame.push(trimmed.to_string());
    }
    frame
}

#[test]
fn phloemd_socket_persists_caches_across_connections() {
    let path = std::env::temp_dir().join(format!("phloemd-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = spawn_phloemd(&["--socket", path.to_str().unwrap()]);

    // Wait for the daemon to bind the socket.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "phloemd never bound {path:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let batch = mixed_batch();
    let cold = socket_round_trip(&path, &batch);
    assert_eq!(cold.len(), batch.len());
    // A NEW connection must see the caches the first one filled.
    let warm = socket_round_trip(&path, &batch);
    assert_warm_matches_cold(&cold, &warm);

    // Stats over the wire report the accumulated counters.
    let stats = socket_round_trip(&path, &[r#"{"id":9,"op":"stats"}"#.to_string()]);
    let stats = parse(&stats[0]).unwrap();
    let compile = stats.get("compile").expect("compile counters");
    assert!(compile.get("hits").and_then(|j| j.as_u64()).unwrap() >= 2);

    // Shutdown ends the daemon and removes the socket file.
    let bye = socket_round_trip(&path, &[r#"{"id":10,"op":"shutdown"}"#.to_string()]);
    assert!(bye[0].contains(r#""ok":true"#));
    let status = child.wait().unwrap();
    assert!(status.success(), "phloemd exited with {status}");
    assert!(!path.exists(), "socket file should be removed on shutdown");
}
