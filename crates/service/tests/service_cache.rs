//! Cache-key sensitivity and cache-hit bit-identity.
//!
//! The service's correctness rests on two properties proved here:
//!
//! * **Invalidation**: changing any single field of [`PassConfig`] or
//!   [`MachineConfig`] produces a distinct cache key, so a stale entry
//!   can never answer for a different configuration.
//! * **Bit-identity**: a cache hit returns exactly the bytes the cold
//!   path produced, across every `{scheduler} × {engine}` host-model
//!   combination — and because both knobs are host-side only, the
//!   simulated statistics digests also agree *across* the grid.

use phloem_compiler::PassConfig;
use phloem_service::key::{machine_config_digest, pass_config_digest};
use phloem_service::proto::{parse, Json};
use phloem_service::{Service, ServiceConfig};
use phloem_workloads::catalog::Scale;
use pipette_sim::{ExecEngine, MachineConfig, SchedulerKind};
use proptest::prelude::*;
use std::collections::HashSet;

/// One named single-field mutation of a [`MachineConfig`].
type Mutator = (&'static str, fn(&mut MachineConfig));

/// Every field of [`MachineConfig`], each mutated in isolation. Adding
/// a field to the struct without extending this list fails the
/// `every_machine_field_has_its_own_key` sweep only if the digest also
/// misses it — the list is the test's definition of "every field", kept
/// in sync with `key::machine_config_digest` by review.
fn machine_mutators() -> Vec<Mutator> {
    vec![
        ("cores", |m| m.cores += 1),
        ("smt_threads", |m| m.smt_threads += 1),
        ("issue_width", |m| m.issue_width += 1),
        ("rob_size", |m| m.rob_size += 1),
        ("mshrs", |m| m.mshrs += 1),
        ("mispredict_penalty", |m| m.mispredict_penalty += 1),
        ("queue_capacity", |m| m.queue_capacity += 1),
        ("max_queues", |m| m.max_queues += 1),
        ("ras_per_core", |m| m.ras_per_core += 1),
        ("ra_concurrency", |m| m.ra_concurrency += 1),
        ("ra_op_latency", |m| m.ra_op_latency += 1),
        ("queue_latency", |m| m.queue_latency += 1),
        ("inter_core_queue_latency", |m| {
            m.inter_core_queue_latency += 1
        }),
        ("l1.kb", |m| m.l1.kb += 1),
        ("l1.ways", |m| m.l1.ways += 1),
        ("l1.latency", |m| m.l1.latency += 1),
        ("l2.kb", |m| m.l2.kb += 1),
        ("l2.ways", |m| m.l2.ways += 1),
        ("l2.latency", |m| m.l2.latency += 1),
        ("l3_kb_per_core", |m| m.l3_kb_per_core += 1),
        ("l3_ways", |m| m.l3_ways += 1),
        ("l3_latency", |m| m.l3_latency += 1),
        ("dram_latency", |m| m.dram_latency += 1),
        ("dram_controllers", |m| m.dram_controllers += 1),
        ("dram_cycles_per_line", |m| m.dram_cycles_per_line += 1),
        ("prefetch", |m| m.prefetch = !m.prefetch),
        ("prefetch_degree", |m| m.prefetch_degree += 1),
        ("launch_overhead", |m| m.launch_overhead += 1),
        ("scheduler", |m| {
            m.scheduler = match m.scheduler {
                SchedulerKind::EventDriven => SchedulerKind::Polling,
                SchedulerKind::Polling => SchedulerKind::EventDriven,
            }
        }),
        ("engine", |m| {
            m.engine = match m.engine {
                ExecEngine::Flat => ExecEngine::Tree,
                ExecEngine::Tree => ExecEngine::Flat,
            }
        }),
        ("watchdog.cycle_cap", |m| {
            m.watchdog.cycle_cap = m.watchdog.cycle_cap.wrapping_sub(1)
        }),
        ("watchdog.livelock_window", |m| {
            m.watchdog.livelock_window = m.watchdog.livelock_window.wrapping_sub(1)
        }),
        ("fast_forward", |m| m.fast_forward = !m.fast_forward),
    ]
}

type PassMutator = (&'static str, fn(&mut PassConfig));

fn pass_mutators() -> Vec<PassMutator> {
    vec![
        ("recompute", |p| p.recompute = !p.recompute),
        ("use_ra", |p| p.use_ra = !p.use_ra),
        ("use_cv", |p| p.use_cv = !p.use_cv),
        ("use_handlers", |p| p.use_handlers = !p.use_handlers),
        ("isdce", |p| p.isdce = !p.isdce),
        ("stream_consumers", |p| {
            p.stream_consumers = !p.stream_consumers
        }),
        ("validate_between_passes", |p| {
            p.validate_between_passes = !p.validate_between_passes
        }),
    ]
}

#[test]
fn every_machine_field_has_its_own_key() {
    let base = MachineConfig::paper_1core();
    let base_key = machine_config_digest(&base);
    let mut seen: HashSet<u64> = HashSet::from([base_key]);
    for (name, mutate) in machine_mutators() {
        let mut m = base.clone();
        mutate(&mut m);
        let key = machine_config_digest(&m);
        assert_ne!(key, base_key, "mutating {name} did not change the key");
        assert!(
            seen.insert(key),
            "mutating {name} collided with another single-field mutation"
        );
    }
}

#[test]
fn every_pass_switch_has_its_own_key() {
    let base = PassConfig::all();
    let base_key = pass_config_digest(&base);
    let mut seen: HashSet<u64> = HashSet::from([base_key]);
    for (name, mutate) in pass_mutators() {
        let mut p = base;
        mutate(&mut p);
        let key = pass_config_digest(&p);
        assert_ne!(key, base_key, "toggling {name} did not change the key");
        assert!(seen.insert(key), "toggling {name} collided");
    }
    // The named presets are pairwise distinct too.
    let presets = [
        PassConfig::all(),
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all_streaming(),
    ];
    let keys: HashSet<u64> = presets.iter().map(pass_config_digest).collect();
    assert_eq!(keys.len(), presets.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random non-empty combination of single-field mutations moves
    /// the key away from the base config (mutations touch disjoint
    /// fields, so they cannot cancel), and two different combinations
    /// produce different keys.
    #[test]
    fn random_mutation_sets_change_the_machine_key(
        picks in proptest::collection::vec(0usize..34, 1..6),
        other in proptest::collection::vec(0usize..34, 1..6),
    ) {
        let muts = machine_mutators();
        let apply = |set: &[usize]| {
            let mut m = MachineConfig::paper_1core();
            let mut used: Vec<usize> = set.to_vec();
            used.sort_unstable();
            used.dedup();
            for &i in &used {
                (muts[i % muts.len()].1)(&mut m);
            }
            (used, machine_config_digest(&m))
        };
        let base = machine_config_digest(&MachineConfig::paper_1core());
        let (used_a, key_a) = apply(&picks);
        let (used_b, key_b) = apply(&other);
        prop_assert!(key_a != base, "mutations {:?} left the key unchanged", used_a);
        if used_a != used_b {
            prop_assert!(key_a != key_b,
                "mutation sets {:?} and {:?} collided", used_a, used_b);
        } else {
            prop_assert_eq!(key_a, key_b);
        }
    }
}

// ---------------------------------------------------------------------
// Cache-hit bit-identity across the {scheduler} × {engine} grid
// ---------------------------------------------------------------------

fn grid_service(scheduler: SchedulerKind, engine: ExecEngine) -> Service {
    let mut machine = MachineConfig::paper_1core();
    machine.scheduler = scheduler;
    machine.engine = engine;
    Service::new(ServiceConfig {
        machine,
        scale: Scale::Tiny,
        workers: 2,
        default_cycle_cap: 50_000_000,
        ..ServiceConfig::default()
    })
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {resp:?}"))
}

#[test]
fn cache_hits_are_bit_identical_across_the_host_model_grid() {
    let batch = vec![
        r#"{"id":1,"op":"compile","app":"bfs","passes":"all","stages":3}"#.to_string(),
        r#"{"id":2,"op":"trace","app":"bfs","input":"internet-s","variant":"phloem","stages":2}"#
            .to_string(),
    ];
    let grid = [
        (SchedulerKind::EventDriven, ExecEngine::Flat),
        (SchedulerKind::EventDriven, ExecEngine::Tree),
        (SchedulerKind::Polling, ExecEngine::Flat),
        (SchedulerKind::Polling, ExecEngine::Tree),
    ];
    let mut stats_digests = Vec::new();
    let mut trace_digests = Vec::new();
    for (scheduler, engine) in grid {
        let svc = grid_service(scheduler, engine);
        let cold = svc.handle_batch(&batch);
        let warm = svc.handle_batch(&batch);
        for (c, w) in cold.responses.iter().zip(&warm.responses) {
            assert!(c.contains(r#""cache":"miss""#), "cold run should miss: {c}");
            assert!(w.contains(r#""cache":"hit""#), "warm run should hit: {w}");
            // The hit is the miss, byte for byte, modulo provenance.
            assert_eq!(&c.replace(r#""cache":"miss""#, r#""cache":"hit""#), w);
        }
        let trace = parse(&warm.responses[1]).unwrap();
        assert_eq!(field(&trace, "ok").as_bool(), Some(true));
        stats_digests.push(field(&trace, "stats").as_str().unwrap().to_string());
        trace_digests.push(field(&trace, "trace").as_str().unwrap().to_string());
        let (compile, search) = svc.counters();
        assert_eq!((compile.hits, compile.misses), (1, 1));
        assert_eq!((search.hits, search.misses), (1, 1));
    }
    // Scheduler and engine are host-side knobs: every grid point must
    // produce the same simulated statistics and the same event stream.
    assert!(
        stats_digests.windows(2).all(|w| w[0] == w[1]),
        "stats digests diverged across the grid: {stats_digests:?}"
    );
    assert!(
        trace_digests.windows(2).all(|w| w[0] == w[1]),
        "trace digests diverged across the grid: {trace_digests:?}"
    );
}

#[test]
fn machine_config_change_invalidates_service_responses() {
    // The same request against two services differing in ONE machine
    // field must not share cache state — prove it end-to-end by
    // checking both services miss on first contact.
    let a = grid_service(SchedulerKind::EventDriven, ExecEngine::Flat);
    let req = vec![r#"{"id":1,"op":"compile","app":"cc"}"#.to_string()];
    let first = a.handle_batch(&req);
    assert!(first.responses[0].contains(r#""cache":"miss""#));
    // Same service, mutated config would be a different service value;
    // keys embed the machine digest, so a fresh service with a bumped
    // queue capacity starts cold even if caches were shared by design.
    let mut machine = MachineConfig::paper_1core();
    machine.queue_capacity += 1;
    let b = Service::new(ServiceConfig {
        machine,
        scale: Scale::Tiny,
        workers: 1,
        ..ServiceConfig::default()
    });
    let second = b.handle_batch(&req);
    assert!(second.responses[0].contains(r#""cache":"miss""#));
}
