//! # taco-mini
//!
//! A miniature tensor-algebra compiler in the spirit of **Taco**
//! (Kjolstad et al., OOPSLA 2017), providing the domain-specific
//! frontend the Phloem paper combines with its compiler (Sec. IV-D):
//! tensor-index expressions over mixed sparse/dense formats are lowered
//! to serial loop nests that Phloem then pipelines automatically.
//!
//! Only the shapes the paper evaluates are supported (one CSR operand,
//! dense vectors/matrices otherwise): SpMV, Residual, MTMul, and SDDMM.
//!
//! ```
//! use taco_mini::{kernels, Format};
//!
//! let spmv = kernels::spmv();
//! assert_eq!(spmv.phases.len(), 1);
//! let mtmul = kernels::mtmul();
//! assert_eq!(mtmul.phases.len(), 2, "scatter kernels get an init phase");
//! # let _ = Format::Csr;
//! ```

#![warn(missing_docs)]

pub mod lower;
pub mod parser;

pub use lower::{lower, Format, Kernel, LowerError};
pub use parser::{parse, Access, Factor, ParseError, TensorAssign};

use std::collections::HashMap;

/// Parses and lowers in one step.
///
/// # Errors
/// Propagates parse and lowering errors (as strings).
pub fn compile(src: &str, formats: &[(&str, Format)]) -> Result<Kernel, String> {
    let assign = parse(src).map_err(|e| e.to_string())?;
    let fm: HashMap<String, Format> = formats.iter().map(|(n, f)| (n.to_string(), *f)).collect();
    lower(&assign, &fm).map_err(|e| e.to_string())
}

/// The four kernels of the paper's Taco evaluation (Fig. 12).
pub mod kernels {
    use super::*;

    /// `y = A x`.
    pub fn spmv() -> Kernel {
        compile(
            "y(i) = A(i,j) * x(j)",
            &[
                ("A", Format::Csr),
                ("x", Format::DenseVec),
                ("y", Format::DenseVec),
            ],
        )
        .expect("spmv lowers")
    }

    /// `y = b - A x`.
    pub fn residual() -> Kernel {
        compile(
            "y(i) = b(i) - A(i,j) * x(j)",
            &[
                ("A", Format::Csr),
                ("b", Format::DenseVec),
                ("x", Format::DenseVec),
                ("y", Format::DenseVec),
            ],
        )
        .expect("residual lowers")
    }

    /// `y = alpha Aᵀ x + beta z`.
    pub fn mtmul() -> Kernel {
        compile(
            "y(j) = alpha * A(i,j) * x(i) + beta * z(j)",
            &[
                ("A", Format::Csr),
                ("x", Format::DenseVec),
                ("z", Format::DenseVec),
                ("y", Format::DenseVec),
            ],
        )
        .expect("mtmul lowers")
    }

    /// `A = B ∘ (C D)` (sampled dense-dense matrix multiplication).
    pub fn sddmm() -> Kernel {
        compile(
            "A(i,j) = B(i,j) * C(i,k) * D(k,j)",
            &[
                ("A", Format::Csr),
                ("B", Format::Csr),
                ("C", Format::DenseMat),
                ("D", Format::DenseMat),
            ],
        )
        .expect("sddmm lowers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_ir::{interp, ArrayDecl, MemState, Value};

    fn tiny_csr() -> (Vec<i64>, Vec<i64>, Vec<f64>) {
        // 3x3: [[1, 0, 2], [0, 3, 0], [4, 0, 5]]
        (
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    fn alloc_csr(mem: &mut MemState, rp: &[i64], ci: &[i64], va: &[f64], p: &str) {
        mem.alloc_i64(ArrayDecl::i32(format!("{p}_rp")), rp.iter().copied());
        mem.alloc_i64(ArrayDecl::i32(format!("{p}_ci")), ci.iter().copied());
        mem.alloc_f64(ArrayDecl::f64(format!("{p}_val")), va.iter().copied());
    }

    #[test]
    fn spmv_matches_host_math() {
        let k = kernels::spmv();
        assert_eq!(k.array_names, vec!["A_rp", "A_ci", "A_val", "x", "y"]);
        let (rp, ci, va) = tiny_csr();
        let mut mem = MemState::new();
        alloc_csr(&mut mem, &rp, &ci, &va, "A");
        mem.alloc_f64(ArrayDecl::f64("x"), [1.0, 2.0, 3.0]);
        let y = mem.alloc(ArrayDecl::f64("y"), 3);
        let run = interp::run_serial(&k.phases[0], mem, &[("n", Value::I64(3))]).unwrap();
        assert_eq!(run.mem.f64_vec(y), vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn residual_matches_host_math() {
        let k = kernels::residual();
        let (rp, ci, va) = tiny_csr();
        let mut mem = MemState::new();
        alloc_csr(&mut mem, &rp, &ci, &va, "A");
        mem.alloc_f64(ArrayDecl::f64("b"), [10.0, 10.0, 10.0]);
        mem.alloc_f64(ArrayDecl::f64("x"), [1.0, 2.0, 3.0]);
        let y = mem.alloc(ArrayDecl::f64("y"), 3);
        let run = interp::run_serial(&k.phases[0], mem, &[("n", Value::I64(3))]).unwrap();
        assert_eq!(run.mem.f64_vec(y), vec![3.0, 4.0, -9.0]);
    }

    #[test]
    fn mtmul_matches_host_math() {
        let k = kernels::mtmul();
        assert_eq!(k.phases.len(), 2);
        let (rp, ci, va) = tiny_csr();
        let mut mem = MemState::new();
        alloc_csr(&mut mem, &rp, &ci, &va, "A");
        mem.alloc_f64(ArrayDecl::f64("x"), [1.0, 2.0, 3.0]);
        mem.alloc_f64(ArrayDecl::f64("z"), [1.0, 1.0, 1.0]);
        let y = mem.alloc(ArrayDecl::f64("y"), 3);
        let params = [
            ("n", Value::I64(3)),
            ("m", Value::I64(3)),
            ("alpha", Value::F64(2.0)),
            ("beta", Value::F64(0.5)),
        ];
        let mut cur = mem;
        for ph in &k.phases {
            cur = interp::run_serial(ph, cur, &params).unwrap().mem;
        }
        // A^T x = [1*1+4*3, 3*2, 2*1+5*3] = [13, 6, 17]
        assert_eq!(cur.f64_vec(y), vec![26.5, 12.5, 34.5]);
    }

    #[test]
    fn sddmm_matches_host_math() {
        let k = kernels::sddmm();
        let (rp, ci, va) = tiny_csr();
        let kdim = 2usize;
        let mut mem = MemState::new();
        alloc_csr(&mut mem, &rp, &ci, &va, "B");
        // C: 3 x 2; D: 2 x 3, row-major.
        let c = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let d = [1.0, 0.0, 2.0, 0.0, 1.0, 0.5];
        mem.alloc_f64(ArrayDecl::f64("C"), c.iter().copied());
        mem.alloc_f64(ArrayDecl::f64("D"), d.iter().copied());
        let out = mem.alloc(ArrayDecl::f64("A_val_out"), va.len());
        let run = interp::run_serial(
            &k.phases[0],
            mem,
            &[
                ("n", Value::I64(3)),
                ("kdim", Value::I64(kdim as i64)),
                ("m", Value::I64(3)),
            ],
        )
        .unwrap();
        let mut want = Vec::new();
        for i in 0..3usize {
            for p in rp[i]..rp[i + 1] {
                let j = ci[p as usize] as usize;
                let mut dot = 0.0;
                for t in 0..kdim {
                    dot += c[i * kdim + t] * d[t * 3 + j];
                }
                want.push(va[p as usize] * dot);
            }
        }
        assert_eq!(run.mem.f64_vec(out), want);
    }

    #[test]
    fn phases_validate() {
        for k in [
            kernels::spmv(),
            kernels::residual(),
            kernels::mtmul(),
            kernels::sddmm(),
        ] {
            for ph in &k.phases {
                ph.validate().unwrap_or_else(|e| panic!("{}: {e}", ph.name));
            }
        }
    }
}
