//! Lowering tensor-index expressions to Phloem IR loop nests.
//!
//! Like Taco, the lowerer derives the loop structure from the formats:
//! the (single) CSR operand drives a `for row / for nonzero` nest;
//! dense operands become direct address computations; an index that
//! appears only on the right-hand side is reduced; a left-hand-side
//! index that equals the sparse *column* index produces a
//! scatter-accumulate (e.g. `y = Aᵀx`), split into an initialization
//! phase plus a scatter phase — Phloem then pipelines each phase.

use crate::parser::{Access, Factor, TensorAssign, Term};
use phloem_ir::Value;
use phloem_ir::{ArrayDecl, ArrayId, Expr, Function, FunctionBuilder, VarId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Storage format of one tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Format {
    /// Compressed sparse rows (row_ptr / col_idx / vals arrays).
    Csr,
    /// Dense vector of `f64`.
    DenseVec,
    /// Dense row-major matrix of `f64`.
    DenseMat,
    /// Runtime scalar parameter.
    Scalar,
}

/// Lowering error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// A compiled kernel: one or more program phases plus the memory layout
/// contract (array order and scalar parameter names).
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Program phases in execution order (Phloem decouples each phase
    /// individually; phases synchronize between them).
    pub phases: Vec<Function>,
    /// Array declarations in [`ArrayId`] order; the host must allocate
    /// memory in exactly this order.
    pub arrays: Vec<ArrayDecl>,
    /// Names of the arrays (same order), mapping tensors to array slots:
    /// the CSR tensor `A` contributes `A_rp`, `A_ci`, `A_val`.
    pub array_names: Vec<String>,
    /// Scalar parameters every phase accepts (`n` = sparse rows, plus
    /// `m`/`kdim` when used, plus user scalars like `alpha`).
    pub params: Vec<String>,
}

impl Kernel {
    /// Index of a named array in the layout.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn array(&self, name: &str) -> ArrayId {
        let i = self
            .array_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"));
        ArrayId(i as u32)
    }
}

struct Layout {
    decls: Vec<ArrayDecl>,
    names: Vec<String>,
}

impl Layout {
    fn add(&mut self, name: &str, decl: ArrayDecl) -> usize {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i;
        }
        self.names.push(name.to_string());
        self.decls.push(decl);
        self.names.len() - 1
    }
}

fn sparse_access<'a>(
    assign: &'a TensorAssign,
    formats: &HashMap<String, Format>,
) -> Result<&'a Access, LowerError> {
    let mut found = None;
    for t in &assign.terms {
        for f in &t.factors {
            if let Factor::Access(a) = f {
                if formats.get(&a.tensor) == Some(&Format::Csr) {
                    match found {
                        None => found = Some(a),
                        Some(prev) if prev == a => {}
                        Some(_) => {
                            return Err(LowerError(
                                "co-iteration over multiple sparse operands is not supported"
                                    .into(),
                            ))
                        }
                    }
                }
            }
        }
    }
    found.ok_or_else(|| LowerError("no CSR operand found".into()))
}

/// Lowers a parsed assignment given the tensor formats.
///
/// # Errors
/// Returns [`LowerError`] for shapes outside the supported patterns
/// (one CSR operand; dense everything else).
pub fn lower(
    assign: &TensorAssign,
    formats: &HashMap<String, Format>,
) -> Result<Kernel, LowerError> {
    let sparse = sparse_access(assign, formats)?.clone();
    if sparse.indices.len() != 2 {
        return Err(LowerError("the CSR operand must be a matrix".into()));
    }
    let (ri, ci) = (sparse.indices[0].clone(), sparse.indices[1].clone());

    let mut layout = Layout {
        decls: Vec::new(),
        names: Vec::new(),
    };
    let sp = &sparse.tensor;
    layout.add(&format!("{sp}_rp"), ArrayDecl::i32(format!("{sp}_rp")));
    layout.add(&format!("{sp}_ci"), ArrayDecl::i32(format!("{sp}_ci")));
    layout.add(&format!("{sp}_val"), ArrayDecl::f64(format!("{sp}_val")));

    // Classify the output (its format must be declared).
    let lhs = &assign.lhs;
    formats
        .get(&lhs.tensor)
        .ok_or_else(|| LowerError(format!("no format for `{}`", lhs.tensor)))?;

    // Contraction index: appears on the RHS but neither in the sparse
    // access nor on the LHS (dense-dense contraction, e.g. SDDMM's k).
    let mut contraction: Option<String> = None;
    for t in &assign.terms {
        for f in &t.factors {
            if let Factor::Access(a) = f {
                for ix in &a.indices {
                    if *ix != ri && *ix != ci && !lhs.indices.contains(ix) {
                        contraction = Some(ix.clone());
                    }
                }
            }
        }
    }

    // Register dense operands & scalars.
    let mut params: Vec<String> = vec!["n".into()];
    let mut scalars: Vec<String> = Vec::new();
    for t in &assign.terms {
        for f in &t.factors {
            match f {
                Factor::Access(a) if a.tensor != *sp => match formats.get(&a.tensor) {
                    Some(Format::DenseVec) => {
                        layout.add(&a.tensor, ArrayDecl::f64(a.tensor.clone()));
                    }
                    Some(Format::DenseMat) => {
                        layout.add(&a.tensor, ArrayDecl::f64(a.tensor.clone()));
                    }
                    other => {
                        return Err(LowerError(format!(
                            "unsupported operand format {other:?} for `{}`",
                            a.tensor
                        )))
                    }
                },
                Factor::Scalar(s) if !scalars.contains(s) => {
                    scalars.push(s.clone());
                }
                _ => {}
            }
        }
    }

    let scatter = lhs.indices == vec![ci.clone()];
    let sddmm = lhs.indices == vec![ri.clone(), ci.clone()];
    let rowwise = lhs.indices == vec![ri.clone()];
    if !(scatter || sddmm || rowwise) {
        return Err(LowerError(format!(
            "unsupported output indexing {:?}",
            lhs.indices
        )));
    }
    if scatter {
        params.push("m".into());
    }
    if contraction.is_some() {
        params.push("kdim".into());
        params.push("m".into());
    }
    params.extend(scalars.iter().cloned());

    // Output array.
    let out_name = if sddmm {
        format!("{}_val_out", lhs.tensor)
    } else {
        lhs.tensor.clone()
    };
    layout.add(&out_name, ArrayDecl::f64(out_name.clone()));

    let kernel_name = format!("taco_{}", lhs.tensor);
    let mut phases = Vec::new();

    // Scatter outputs need an initialization phase for the terms that do
    // not contain the sparse operand (e.g. `beta * z(j)`).
    if scatter {
        let mut b = FunctionBuilder::new(format!("{kernel_name}:init"));
        let (vars, arrays) = declare(&mut b, &layout, &params);
        let jv = b.var_i64("j");
        let m = vars["m"];
        let acc = b.var_f64("initacc");
        b.for_loop(jv, Expr::i64(0), Expr::var(m), |f| {
            f.assign(acc, Expr::f64(0.0));
            for t in &assign.terms {
                if term_has_sparse(t, sp) {
                    continue;
                }
                let prod = term_product(f, t, sp, &vars, &arrays, &layout, |ix| {
                    if ix == ci {
                        Some(Expr::var(jv))
                    } else {
                        None
                    }
                });
                f.assign(acc, Expr::add(Expr::var(acc), prod));
            }
            f.store(arrays[&out_name], Expr::var(jv), Expr::var(acc));
        });
        phases.push(b.build());
    }

    // Main sparse phase.
    {
        let mut b = FunctionBuilder::new(format!("{kernel_name}:main"));
        let (vars, arrays) = declare(&mut b, &layout, &params);
        let n = vars["n"];
        let iv = b.var_i64("i");
        let s = b.var_i64("s");
        let e = b.var_i64("e");
        let k = b.var_i64("k");
        let col = b.var_i64("col");
        let acc = b.var_f64("acc");
        let rp = arrays[&format!("{sp}_rp")];
        let cia = arrays[&format!("{sp}_ci")];
        let val = arrays[&format!("{sp}_val")];
        let contraction = contraction.clone();
        b.for_loop(iv, Expr::i64(0), Expr::var(n), |f| {
            let l1 = f.load(rp, Expr::var(iv));
            f.assign(s, l1);
            let l2 = f.load(rp, Expr::add(Expr::var(iv), Expr::i64(1)));
            f.assign(e, l2);
            if rowwise {
                f.assign(acc, Expr::f64(0.0));
            }
            f.for_loop(k, Expr::var(s), Expr::var(e), |f| {
                let lc = f.load(cia, Expr::var(k));
                f.assign(col, lc);
                let resolve = |ix: &str| -> Option<Expr> {
                    if ix == ri {
                        Some(Expr::var(iv))
                    } else if ix == ci {
                        Some(Expr::var(col))
                    } else {
                        None
                    }
                };
                // Product over the sparse terms (value + dense factors).
                for t in &assign.terms {
                    if !term_has_sparse(t, sp) {
                        continue;
                    }
                    let mut prod = if t.sign < 0.0 {
                        Expr::f64(-1.0)
                    } else {
                        Expr::f64(1.0)
                    };
                    let lv = f.load(val, Expr::var(k));
                    prod = smul(prod, lv);
                    for fac in &t.factors {
                        match fac {
                            Factor::Access(a) if a.tensor == *sp => {}
                            Factor::Access(a) => {
                                match formats.get(&a.tensor) {
                                    Some(Format::DenseVec) => {
                                        let ix = resolve(&a.indices[0]).expect("vec index");
                                        let ld = f.load(arrays[&a.tensor], ix);
                                        prod = smul(prod, ld);
                                    }
                                    Some(Format::DenseMat) => {
                                        // Handled below via the contraction loop.
                                    }
                                    _ => unreachable!("checked above"),
                                }
                            }
                            Factor::Scalar(sc) => {
                                prod = smul(prod, Expr::var(vars[sc.as_str()]));
                            }
                            Factor::Const(c) => prod = smul(prod, Expr::f64(*c)),
                        }
                    }
                    if let Some(cx) = &contraction {
                        // Dense-dense dot product (SDDMM): acc2 = sum_t
                        // C[i*kdim+t] * D[t*m+col].
                        let kdim = vars["kdim"];
                        let m = vars["m"];
                        let tvar = f.var_i64("t");
                        let dot = f.var_f64("dot");
                        f.assign(dot, Expr::f64(0.0));
                        let mats: Vec<&Access> = assign
                            .terms
                            .iter()
                            .flat_map(|t| &t.factors)
                            .filter_map(|fa| match fa {
                                Factor::Access(a)
                                    if formats.get(&a.tensor) == Some(&Format::DenseMat) =>
                                {
                                    Some(a)
                                }
                                _ => None,
                            })
                            .collect();
                        f.for_loop(tvar, Expr::i64(0), Expr::var(kdim), |f| {
                            let mut p = Expr::f64(1.0);
                            for a in &mats {
                                // Row-major address from the two indices.
                                let (r0, c0) = (&a.indices[0], &a.indices[1]);
                                let row = if r0 == cx.as_str() {
                                    Expr::var(tvar)
                                } else {
                                    resolve(r0).expect("mat row")
                                };
                                let colx = if c0 == cx.as_str() {
                                    Expr::var(tvar)
                                } else {
                                    resolve(c0).expect("mat col")
                                };
                                let stride = if r0 == cx.as_str() || *r0 == ci {
                                    // D is kdim x m.
                                    Expr::var(m)
                                } else {
                                    Expr::var(kdim)
                                };
                                let addr = Expr::add(Expr::mul(row, stride), colx);
                                let ld = f.load(arrays[&a.tensor], addr);
                                p = smul(p, ld);
                            }
                            f.assign(dot, Expr::add(Expr::var(dot), p));
                        });
                        prod = smul(prod, Expr::var(dot));
                    }
                    if rowwise {
                        f.assign(acc, Expr::add(Expr::var(acc), prod));
                    } else if scatter {
                        let yv = f.var_f64("yv");
                        let ly = f.load(arrays[&out_name], Expr::var(col));
                        f.assign(yv, ly);
                        f.store(
                            arrays[&out_name],
                            Expr::var(col),
                            Expr::add(Expr::var(yv), prod),
                        );
                    } else {
                        // SDDMM: one output per nonzero.
                        f.store(arrays[&out_name], Expr::var(k), prod);
                    }
                }
            });
            if rowwise {
                // Row epilogue: non-sparse terms (e.g. `b(i)`), then store.
                let mut total = Expr::var(acc);
                for t in &assign.terms {
                    if term_has_sparse(t, sp) {
                        continue;
                    }
                    let prod = term_product(f, t, sp, &vars, &arrays, &layout, |ix| {
                        if ix == ri {
                            Some(Expr::var(iv))
                        } else {
                            None
                        }
                    });
                    total = Expr::add(total, prod);
                }
                f.store(arrays[&out_name], Expr::var(iv), total);
            }
        });
        phases.push(b.build());
    }

    Ok(Kernel {
        name: kernel_name,
        phases,
        arrays: layout.decls,
        array_names: layout.names,
        params,
    })
}

/// Multiplication with unit-constant folding (keeps generated inner
/// loops lean enough for reference-accelerator extraction).
fn smul(a: Expr, b: Expr) -> Expr {
    match (&a, &b) {
        (Expr::Const(Value::F64(x)), _) if *x == 1.0 => b,
        (_, Expr::Const(Value::F64(x))) if *x == 1.0 => a,
        _ => Expr::mul(a, b),
    }
}

fn term_has_sparse(t: &Term, sp: &str) -> bool {
    t.factors
        .iter()
        .any(|f| matches!(f, Factor::Access(a) if a.tensor == sp))
}

fn declare(
    b: &mut FunctionBuilder,
    layout: &Layout,
    params: &[String],
) -> (HashMap<String, VarId>, HashMap<String, ArrayId>) {
    let mut vars = HashMap::new();
    for p in params {
        let v = if p == "n" || p == "m" || p == "kdim" {
            b.param_i64(p.clone())
        } else {
            b.param_f64(p.clone())
        };
        vars.insert(p.clone(), v);
    }
    let mut arrays = HashMap::new();
    for (name, decl) in layout.names.iter().zip(&layout.decls) {
        let id = b.array(decl.clone());
        arrays.insert(name.clone(), id);
    }
    (vars, arrays)
}

fn term_product(
    f: &mut FunctionBuilder,
    t: &Term,
    sp: &str,
    vars: &HashMap<String, VarId>,
    arrays: &HashMap<String, ArrayId>,
    _layout: &Layout,
    resolve: impl Fn(&str) -> Option<Expr>,
) -> Expr {
    let mut prod = if t.sign < 0.0 {
        Expr::f64(-1.0)
    } else {
        Expr::f64(1.0)
    };
    for fac in &t.factors {
        match fac {
            Factor::Access(a) if a.tensor == sp => unreachable!("non-sparse term"),
            Factor::Access(a) => {
                let ix = resolve(&a.indices[0]).expect("resolvable index");
                let ld = f.load(arrays[&a.tensor], ix);
                prod = smul(prod, ld);
            }
            Factor::Scalar(s) => prod = smul(prod, Expr::var(vars[s.as_str()])),
            Factor::Const(c) => prod = smul(prod, Expr::f64(*c)),
        }
    }
    prod
}
