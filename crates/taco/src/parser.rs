//! Parser for tensor-index expressions in Taco's concrete syntax,
//! e.g. `y(i) = A(i,j) * x(j)` or `A(i,j) = B(i,j) * C(i,k) * D(k,j)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One tensor access, e.g. `A(i,j)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Tensor name.
    pub tensor: String,
    /// Index variable names.
    pub indices: Vec<String>,
}

/// A multiplicative factor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Factor {
    /// Tensor access.
    Access(Access),
    /// Named scalar (bound at runtime), e.g. `alpha`.
    Scalar(String),
    /// Literal constant.
    Const(f64),
}

/// A product of factors with a sign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// +1.0 or -1.0.
    pub sign: f64,
    /// Factors multiplied together.
    pub factors: Vec<Factor>,
}

/// A parsed assignment `lhs = term ± term ± ...`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorAssign {
    /// Left-hand-side access.
    pub lhs: Access,
    /// Right-hand-side sum of terms.
    pub terms: Vec<Term>,
}

/// Parse error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    LParen,
    RParen,
    Comma,
    Eq,
    Plus,
    Minus,
    Star,
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '+' => {
                chars.next();
                toks.push(Tok::Plus);
            }
            '-' => {
                chars.next();
                toks.push(Tok::Minus);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = s
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{s}`")))?;
                toks.push(Tok::Num(v));
            }
            other => return Err(ParseError(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if *t == want => Ok(()),
            other => Err(ParseError(format!("expected {want:?}, got {other:?}"))),
        }
    }

    fn access_or_scalar(&mut self) -> Result<Factor, ParseError> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Factor::Const(*v)),
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.expect(Tok::LParen)?;
                    let mut indices = Vec::new();
                    loop {
                        match self.next() {
                            Some(Tok::Ident(i)) => indices.push(i.clone()),
                            other => {
                                return Err(ParseError(format!(
                                    "expected index variable, got {other:?}"
                                )))
                            }
                        }
                        match self.next() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            other => {
                                return Err(ParseError(format!(
                                    "expected `,` or `)`, got {other:?}"
                                )))
                            }
                        }
                    }
                    Ok(Factor::Access(Access {
                        tensor: name,
                        indices,
                    }))
                } else {
                    Ok(Factor::Scalar(name))
                }
            }
            other => Err(ParseError(format!("expected factor, got {other:?}"))),
        }
    }

    fn term(&mut self, sign: f64) -> Result<Term, ParseError> {
        let mut factors = vec![self.access_or_scalar()?];
        while matches!(self.peek(), Some(Tok::Star)) {
            self.next();
            factors.push(self.access_or_scalar()?);
        }
        Ok(Term { sign, factors })
    }
}

/// Parses a tensor assignment.
///
/// # Errors
/// Returns a [`ParseError`] for malformed input.
pub fn parse(src: &str) -> Result<TensorAssign, ParseError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
    };
    let Factor::Access(lhs) = p.access_or_scalar()? else {
        return Err(ParseError("left-hand side must be a tensor access".into()));
    };
    p.expect(Tok::Eq)?;
    let mut terms = vec![p.term(1.0)?];
    loop {
        match p.peek() {
            Some(Tok::Plus) => {
                p.next();
                terms.push(p.term(1.0)?);
            }
            Some(Tok::Minus) => {
                p.next();
                terms.push(p.term(-1.0)?);
            }
            None => break,
            other => return Err(ParseError(format!("unexpected token {other:?}"))),
        }
    }
    Ok(TensorAssign { lhs, terms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spmv() {
        let a = parse("y(i) = A(i,j) * x(j)").unwrap();
        assert_eq!(a.lhs.tensor, "y");
        assert_eq!(a.lhs.indices, vec!["i"]);
        assert_eq!(a.terms.len(), 1);
        assert_eq!(a.terms[0].factors.len(), 2);
    }

    #[test]
    fn parses_mtmul_with_scalars_and_signs() {
        let a = parse("y(j) = alpha * A(i,j) * x(i) + beta * z(j)").unwrap();
        assert_eq!(a.terms.len(), 2);
        assert_eq!(a.terms[0].sign, 1.0);
        assert!(matches!(a.terms[0].factors[0], Factor::Scalar(_)));
        let r = parse("y(i) = b(i) - A(i,j) * x(j)").unwrap();
        assert_eq!(r.terms[1].sign, -1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("y(i = A(i,j)").is_err());
        assert!(parse("= A(i,j)").is_err());
        assert!(parse("y(i) = A(i,1)").is_err());
    }
}
