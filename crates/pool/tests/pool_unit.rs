//! Unit tests for the work-stealing fleet: result determinism, steal
//! fairness, park/unpark, panic containment, and the empty/singleton
//! edges. Timing-shaped scenarios use sleeps, which work on any host
//! (including a single-core one: sleeping threads release the CPU).

use phloem_pool::{CancelToken, Pool, TaskPanic};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Every slot holds its own task's result, in index order, at any
/// worker count.
#[test]
fn results_land_in_index_order() {
    for workers in [1, 2, 3, 8, 64] {
        let pool = Pool::new(workers);
        let out = pool.run(37, |i| i * i);
        assert_eq!(out.len(), 37);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i * i), "workers={workers}");
        }
    }
}

/// Each task runs exactly once even under heavy stealing pressure.
#[test]
fn each_task_runs_exactly_once() {
    let counts: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
    let pool = Pool::new(8);
    let out = pool.run(200, |i| {
        counts[i].fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(out.len(), 200);
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
    }
}

/// Steal fairness: when worker 0's seeded block head-of-line-blocks on
/// an expensive task, the rest of its block must be executed by other
/// workers (this is exactly the static-chunking pathology the pool
/// exists to fix).
#[test]
fn idle_workers_steal_a_blocked_workers_backlog() {
    let pool = Pool::new(4);
    // 40 tasks, 4 workers -> worker 0 is seeded indices 0..10. Task 0
    // sleeps long enough for the other workers to drain everything else
    // and come stealing.
    let (out, stats) = pool.run_stats(40, |i| {
        if i == 0 {
            std::thread::sleep(Duration::from_millis(120));
        }
        i
    });
    assert!(out.iter().all(|r| r.is_ok()));
    assert!(
        stats.steals >= 1,
        "no steal happened despite a blocked worker: {stats:?}"
    );
    // Worker 0 cannot have run its whole seeded block: it was asleep.
    assert!(
        stats.per_worker_tasks[0] < 10,
        "worker 0 ran its whole block while blocked: {stats:?}"
    );
    // Everything still ran exactly once (sum over workers == tasks).
    assert_eq!(stats.per_worker_tasks.iter().sum::<u64>(), 40);
}

/// Park/unpark: a worker that runs dry while another worker's task is
/// still in flight parks instead of spinning, and wakes when the fleet
/// completes.
#[test]
fn dry_workers_park_until_completion() {
    let pool = Pool::new(2);
    // Two tasks, two workers: worker 1's single task sleeps, worker 0
    // finishes instantly, finds nothing to steal, and must park.
    let (out, stats) = pool.run_stats(2, |i| {
        if i == 1 {
            std::thread::sleep(Duration::from_millis(60));
        }
        i
    });
    assert!(out.iter().all(|r| r.is_ok()));
    assert!(
        stats.parks >= 1,
        "the dry worker never parked: {stats:?} (spinning would burn a host core)"
    );
}

/// Park-wakeup regression: with the epoch-guarded park protocol, a dry
/// worker waiting out a ~120ms straggler parks a small number of times
/// and is woken by the completion notification, never by the timeout
/// backstop. (The old fixed-1ms condvar bound re-woke the dry worker
/// ~120 times here, busy-burning the host while native-channel stages
/// block.)
#[test]
fn parked_workers_wake_by_notification_not_timeout() {
    let pool = Pool::new(2);
    let (out, stats) = pool.run_stats(2, |i| {
        if i == 1 {
            std::thread::sleep(Duration::from_millis(120));
        }
        i
    });
    assert!(out.iter().all(|r| r.is_ok()));
    assert!(
        stats.parks <= 4,
        "dry worker re-parked {} times over a 120ms straggler; \
         the park loop is still polling instead of blocking: {stats:?}",
        stats.parks
    );
    assert_eq!(
        stats.timeout_wakeups, 0,
        "a park wakeup came from the timeout backstop, not a \
         notification: {stats:?}"
    );
}

/// Nested fleets: a task running inside one fleet may spawn its own
/// fleet (the native backend does exactly this when a service request
/// executing on a pool worker runs pipeline stages on threads). The
/// inner fleet must not re-acquire the quiesce lock and deadlock.
#[test]
fn nested_fleet_inside_a_task_completes() {
    let outer = Pool::new(2);
    let out = outer.run(4, |i| {
        let inner = Pool::new(2);
        let inner_out = inner.run(3, move |j| i * 10 + j);
        inner_out
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<usize>>()
    });
    for (i, r) in out.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap(), &vec![i * 10, i * 10 + 1, i * 10 + 2]);
    }
}

/// Panic containment: a panicking task fills its own slot with
/// `Err(TaskPanic)` and nothing else.
#[test]
fn panics_are_contained_to_their_slot() {
    for workers in [1, 4] {
        let pool = Pool::new(workers);
        let out = pool.run(9, |i| {
            if i == 4 {
                panic!("injected fleet panic {i}");
            }
            i + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                let e: &TaskPanic = r.as_ref().unwrap_err();
                assert_eq!(e.index, 4);
                assert!(e.message.contains("injected fleet panic"), "{e}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i + 1));
            }
        }
    }
}

/// Zero tasks: no threads, no results, no hang.
#[test]
fn zero_tasks() {
    let pool = Pool::new(8);
    let out: Vec<Result<u64, _>> = pool.run(0, |_| unreachable!("no tasks"));
    assert!(out.is_empty());
    let (out, stats) = pool.run_stats(0, |i| i);
    assert!(out.is_empty());
    assert_eq!(stats.per_worker_tasks.iter().sum::<u64>(), 0);
}

/// One task: the fleet clamps to one worker and runs inline.
#[test]
fn one_task_runs_inline() {
    let caller = std::thread::current().id();
    let pool = Pool::new(8);
    let (out, stats) = pool.run_stats(1, |i| (i, std::thread::current().id()));
    assert_eq!(stats.workers, 1);
    let (i, tid) = out[0].as_ref().unwrap();
    assert_eq!(*i, 0);
    assert_eq!(*tid, caller, "a singleton fleet must not spawn threads");
}

/// `map` hands each task its index and item.
#[test]
fn map_passes_items_by_index() {
    let items: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
    let pool = Pool::new(3);
    let out = pool.map(&items, |i, s| format!("{i}:{s}"));
    for (i, r) in out.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap(), &format!("{i}:item-{i}"));
    }
}

/// Worker counts beyond the task count are clamped; beyond the host's
/// core count they still complete (oversubscription is legal).
#[test]
fn oversubscription_and_clamping() {
    let pool = Pool::new(64);
    let (out, stats) = pool.run_stats(5, |i| i * 3);
    assert_eq!(stats.workers, 5);
    for (i, r) in out.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap(), &(i * 3));
    }
}

/// A cancellable fleet whose token never fires behaves exactly like an
/// uncancellable one: every slot comes back `Some(Ok(..))`, nothing is
/// skipped.
#[test]
fn unfired_token_changes_nothing() {
    for workers in [1, 4] {
        let pool = Pool::new(workers);
        let token = CancelToken::new();
        let (out, stats) = pool.run_cancellable(23, &token, |i| i * 7);
        assert_eq!(stats.skipped, 0);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(
                r.as_ref().unwrap().as_ref().unwrap(),
                &(i * 7),
                "workers={workers}"
            );
        }
    }
}

/// Drain latency is bounded by the drain budget, not by queue depth:
/// cancelling a fleet with a deep backlog of sleepy tasks must return
/// in roughly (cancel delay + one task), never queue_depth × task cost.
/// This is the park-behavior satellite: queued tasks are skipped, and
/// parked workers are woken by the cancel itself rather than sleeping
/// out timeout loops.
#[test]
fn drain_latency_bounded_by_budget_not_queue_depth() {
    const TASKS: usize = 400; // serial cost: 400 × 5 ms = 2 s
    let pool = Pool::new(2);
    let token = CancelToken::new();
    let t2 = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        t2.cancel("drain test");
    });
    let start = Instant::now();
    let (out, stats) = pool.run_cancellable(TASKS, &token, |i| {
        std::thread::sleep(Duration::from_millis(5));
        i
    });
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    // Generous CI bound, still ~7x below the 2 s serial queue cost.
    assert!(
        elapsed < Duration::from_millis(300),
        "drain took {elapsed:?}: latency scaled with queue depth, not the budget"
    );
    assert!(stats.skipped > 0, "nothing was skipped: {stats:?}");
    let ran = out.iter().filter(|s| s.is_some()).count() as u64;
    assert_eq!(
        ran + stats.skipped,
        TASKS as u64,
        "every task must be exactly run-once or skipped: {stats:?}"
    );
    // Tasks that did run (before the cancel) completed normally.
    for (i, s) in out.iter().enumerate() {
        if let Some(r) = s {
            assert_eq!(r.as_ref().unwrap(), &i);
        }
    }
}

/// An expired deadline cancels the fleet with no explicit cancel call.
#[test]
fn deadline_expiry_skips_the_tail() {
    let pool = Pool::new(1); // serial path must honour deadlines too
    let token = CancelToken::with_deadline(Duration::from_millis(25));
    let start = Instant::now();
    let (out, stats) = pool.run_cancellable(200, &token, |i| {
        std::thread::sleep(Duration::from_millis(5));
        i
    });
    assert!(
        start.elapsed() < Duration::from_millis(300),
        "deadline did not stop a serial fleet"
    );
    assert!(stats.skipped > 0);
    assert!(out[0].is_some(), "the first task ran before the deadline");
    assert!(token.is_set());
    assert_eq!(token.reason(), "deadline exceeded");
}

/// A quiesced section excludes fleets but runs the closure.
#[test]
fn quiesced_runs_and_returns() {
    let v = phloem_pool::quiesced(|| 41 + 1);
    assert_eq!(v, 42);
    // Fleets still work afterwards (the write lock was released).
    let pool = Pool::new(2);
    assert_eq!(pool.run(4, |i| i).len(), 4);
}
