//! Optional core pinning (Linux `sched_setaffinity`).
//!
//! The workspace is otherwise 100% safe Rust with no external crates;
//! pinning needs exactly one foreign call, declared here directly (the
//! C library is always linked) and kept behind `PHLOEM_PIN=1`. On
//! non-Linux targets pinning is a no-op that reports `false`.

/// Pins the *calling thread* to `core`. Returns whether the kernel
/// accepted the mask. Purely a host-side placement hint: it cannot
/// affect task results or simulated cycles.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    // sched_setaffinity(2): pid 0 means the calling thread.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    const WORDS: usize = 16; // 1024-CPU mask, the kernel's default limit
    let mut mask = [0u64; WORDS];
    let c = core % (WORDS * 64);
    mask[c / 64] |= 1u64 << (c % 64);
    // SAFETY: the mask buffer outlives the call and its length matches
    // `cpusetsize`; the kernel only reads it.
    unsafe { sched_setaffinity(0, WORDS * 8, mask.as_ptr()) == 0 }
}

/// Non-Linux stub: pinning unsupported.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}
